"""NFactor — automatic synthesis of NF forwarding models by program analysis.

Reproduction of: Wu, Zhang, Banerjee, "Automatic Synthesis of NF Models by
Program Analysis", HotNets-XV, 2016.

The package is organised as a compiler-style pipeline:

- :mod:`repro.lang` — frontend for NFPy (the analyzable Python subset) and
  the statement-level IR every analysis operates on.
- :mod:`repro.cfg`, :mod:`repro.dataflow`, :mod:`repro.pdg` — control-flow
  graphs, dataflow analyses and program dependence graphs.
- :mod:`repro.slicing` — static (PDG-based) and dynamic (trace-based)
  program slicing.
- :mod:`repro.interp` — a concrete IR interpreter with execution tracing.
- :mod:`repro.symbolic` — a symbolic executor and constraint solver.
- :mod:`repro.statealyzer` — StateAlyzer-style variable classification.
- :mod:`repro.nfactor` — the NFactor algorithm itself (paper Algorithm 1)
  plus code-structure transforms and TCP unfolding.
- :mod:`repro.model` — the stateful match/action model, FSM view and an
  executable model simulator.
- :mod:`repro.net` — packets, flows, the TCP state machine and workload
  generators (the substrate replacing real NIC I/O).
- :mod:`repro.nfs` — the corpus of network functions under analysis.
- :mod:`repro.apps` — verification, composition and testing applications.
- :mod:`repro.equiv` — model/program equivalence checking.
"""

__version__ = "1.0.0"

# Re-export the headline API lazily so subpackages can be imported while
# the package is under construction and to keep import cost low.
def __getattr__(name):
    if name in ("NFactor", "synthesize_model"):
        from repro.nfactor import algorithm
        return getattr(algorithm, name)
    if name in ("NFModel", "TableEntry"):
        from repro.model import matchaction
        return getattr(matchaction, name)
    if name == "Packet":
        from repro.net.packet import Packet
        return Packet
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = ["NFactor", "synthesize_model", "NFModel", "TableEntry", "Packet"]
