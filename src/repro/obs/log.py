"""Structured JSON logging with automatic trace-context injection.

One JSON object per line, machine-first::

    {"ts": "2026-08-08T12:00:00.123Z", "level": "info",
     "logger": "repro.serve", "event": "request",
     "msg": "POST /v1/synthesize -> 200",
     "trace_id": "4bf92f35...", "request_id": "req-1a2b3c...",
     "op": "synthesize", "status": 200, "elapsed_ms": 2.1}

Built on stdlib :mod:`logging` so every existing ``logging.getLogger``
call site (e.g. the ``repro.cache`` corruption warnings) joins the
structured stream for free once :func:`configure` attaches the
formatter to the ``repro`` logger tree.  The trace/span/request ids
come from the ambient :mod:`repro.obs.context` at emit time, so worker
processes and server tasks tag their lines with the request they are
serving without any call-site changes.

Zero-configuration cost: until :func:`configure` runs, nothing is
attached and loggers behave exactly as before (stdlib defaults), so
library users who never serve pay nothing.
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time
from typing import Any, Dict, Optional, TextIO

from repro.obs import context as obs_context

__all__ = [
    "JsonLogFormatter",
    "configure",
    "is_configured",
    "get_logger",
    "log_event",
]

#: ``extra=`` key under which :func:`log_event` stashes structured
#: fields (a single namespaced key avoids colliding with the reserved
#: LogRecord attribute names).
FIELDS_ATTR = "repro_fields"
#: ``extra=`` key naming the machine-readable event type.
EVENT_ATTR = "repro_event"


def _iso_utc(created: float) -> str:
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(created))
    return f"{base}.{int((created % 1.0) * 1000):03d}Z"


class JsonLogFormatter(logging.Formatter):
    """Format records as one JSON object per line, trace ids injected."""

    def format(self, record: logging.LogRecord) -> str:
        event: Dict[str, Any] = {
            "ts": _iso_utc(record.created),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        name = getattr(record, EVENT_ATTR, None)
        if name:
            event["event"] = name
        ctx = obs_context.current()
        if ctx is not None:
            event["trace_id"] = ctx.trace_id
            event["span_id"] = ctx.span_id
            if ctx.request_id:
                event["request_id"] = ctx.request_id
        fields = getattr(record, FIELDS_ATTR, None)
        if fields:
            for key, value in fields.items():
                event.setdefault(key, value)
        if record.exc_info and record.exc_info[0] is not None:
            event["exc"] = self.formatException(record.exc_info)
        return json.dumps(event, sort_keys=True, default=str)


_lock = threading.Lock()
_handler: Optional[logging.Handler] = None


def configure(
    stream: Optional[TextIO] = None,
    level: int = logging.INFO,
    logger_name: str = "repro",
) -> logging.Handler:
    """Attach the JSON formatter to the ``repro`` logger tree.

    Idempotent: reconfiguring replaces the previous structured handler
    (tests re-point the stream) instead of stacking duplicates.  The
    tree stops propagating to the root logger so lines are emitted
    exactly once, as JSON.
    """
    global _handler
    root = logging.getLogger(logger_name)
    with _lock:
        if _handler is not None:
            root.removeHandler(_handler)
        _handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        _handler.setFormatter(JsonLogFormatter())
        root.addHandler(_handler)
        root.setLevel(level)
        root.propagate = False
    return _handler


def is_configured() -> bool:
    return _handler is not None


def get_logger(name: str) -> logging.Logger:
    """The named logger (structured once :func:`configure` has run)."""
    return logging.getLogger(name)


def log_event(
    logger: logging.Logger,
    level: int,
    event: str,
    msg: str,
    **fields: Any,
) -> None:
    """Emit one structured event: a machine name, a human message, fields.

    Falls back gracefully under plain (non-JSON) logging: the message
    still reads sensibly, and the fields ride along on the record for
    any formatter that wants them.
    """
    if logger.isEnabledFor(level):
        logger.log(level, msg, extra={EVENT_ATTR: event, FIELDS_ATTR: fields})
