"""Request-scoped trace context (W3C ``traceparent``-style).

A :class:`TraceContext` names one distributed request: a 128-bit
``trace_id`` shared by every process the request touches, the
``span_id`` of the caller's current span, and the human-facing
``request_id`` the serve tier mints at admission.  It crosses process
boundaries as the standard ``traceparent`` header::

    traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01

``repro.serve`` threads one context through the whole request path:
the client (:class:`repro.serve.client.ServeClient`) generates it, the
server parses it off the wire, attaches it to the queue entry, ships
it into the worker process, and the worker installs it as the
**ambient context** so pipeline spans, metrics and structured log
lines (:mod:`repro.obs.log`) all carry the request's identity.

The ambient context lives in a :class:`contextvars.ContextVar`, so it
is correct per-asyncio-task on the server and per-thread/-process in
the workers.  When no context is bound — every non-serve entry point —
:func:`current` returns None and everything downstream stays on its
zero-cost path.
"""

from __future__ import annotations

import os
import re
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "TraceContext",
    "TRACEPARENT_HEADER",
    "REQUEST_ID_HEADER",
    "new_context",
    "new_request_id",
    "parse_traceparent",
    "current",
    "install",
    "uninstall",
    "bound",
]

#: The W3C Trace Context request header (lowercased, as the serve
#: protocol normalizes header names).
TRACEPARENT_HEADER = "traceparent"
#: Response header carrying the server-minted request id.
REQUEST_ID_HEADER = "x-repro-request-id"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def _hex(n_bytes: int) -> str:
    return os.urandom(n_bytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """One request's distributed identity (immutable; derive with replace)."""

    trace_id: str  #: 32 lowercase hex chars, shared across processes
    span_id: str  #: 16 lowercase hex chars, the caller's current span
    sampled: bool = True
    request_id: Optional[str] = None  #: serve-tier request id, if minted

    def traceparent(self) -> str:
        """The ``traceparent`` header value for this context."""
        return f"00-{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    def child(self) -> "TraceContext":
        """Same trace, fresh span id (entering a new unit of work)."""
        return replace(self, span_id=_hex(8))

    def with_request_id(self, request_id: str) -> "TraceContext":
        return replace(self, request_id=request_id)

    def to_dict(self) -> Dict[str, Any]:
        """A picklable/JSON-able form (crosses the worker-pool boundary)."""
        return {
            "traceparent": self.traceparent(),
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, Any]]) -> Optional["TraceContext"]:
        if not payload:
            return None
        ctx = parse_traceparent(payload.get("traceparent"))
        if ctx is None:
            return None
        request_id = payload.get("request_id")
        return ctx.with_request_id(request_id) if request_id else ctx


def new_context(request_id: Optional[str] = None) -> TraceContext:
    """A fresh root context (new trace id, new span id)."""
    return TraceContext(
        trace_id=_hex(16), span_id=_hex(8), request_id=request_id
    )


def new_request_id() -> str:
    """A short serve-tier request id (``req-`` + 12 hex chars)."""
    return "req-" + _hex(6)


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """A :class:`TraceContext` from a ``traceparent`` value, or None.

    Tolerant by design: anything malformed (wrong field widths, an
    unknown version, all-zero ids) yields None and the caller starts a
    fresh trace — a bad client header must never fail a request.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    version, trace_id, span_id, flags = match.groups()
    if version == "ff":  # forbidden by the spec
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    try:
        sampled = bool(int(flags, 16) & 0x01)
    except ValueError:  # pragma: no cover - regex already guarantees hex
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id, sampled=sampled)


# ---------------------------------------------------------------------------
# Ambient context
# ---------------------------------------------------------------------------

_current: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current() -> Optional[TraceContext]:
    """The ambient trace context, or None outside a traced request."""
    return _current.get()


def install(ctx: Optional[TraceContext]):
    """Bind ``ctx`` as the ambient context; returns a reset token."""
    return _current.set(ctx)


def uninstall(token) -> None:
    """Restore the ambient context to what it was before :func:`install`."""
    _current.reset(token)


@contextmanager
def bound(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Ambient-context scope: ``with bound(ctx): ...``."""
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)
