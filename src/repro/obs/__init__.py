"""Observability for the synthesis pipeline: tracing, metrics, profiles,
request context, structured logs and a flight recorder.

Six layers, composable and individually usable:

- :mod:`repro.obs.trace` — hierarchical spans over a monotonic clock,
  with an in-memory collector and a JSONL event exporter;
- :mod:`repro.obs.metrics` — process-local counters, gauges and
  fixed-bucket histograms (labeled via :func:`~repro.obs.metrics.labeled`);
- :mod:`repro.obs.report` — folding both into per-phase profile tables
  and the Prometheus text exposition;
- :mod:`repro.obs.context` — W3C-``traceparent`` request contexts that
  cross process boundaries (the serve tier's request identity);
- :mod:`repro.obs.log` — structured JSON logging with trace/request
  ids injected from the ambient context;
- :mod:`repro.obs.recorder` — an always-on bounded flight recorder of
  served requests with stitched span trees (``/debugz``, ``repro trace``).

Everything is **off by default**: pipeline call sites route through
ambient module-level helpers (``trace.span(...)``,
``metrics.counter(...)``) that no-op until a tracer/registry is
installed, so the un-observed pipeline pays an attribute check per
event.  The :func:`observed` context manager is the one-liner opt-in::

    from repro import obs

    with obs.observed() as (tracer, registry):
        result = NFactor(source).synthesize()
    print(obs.render_profile(obs.collect_profile(tracer, registry)))
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs import context, log, metrics, recorder, trace
from repro.obs.context import TraceContext
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, labeled
from repro.obs.recorder import FlightRecorder, RequestRecord, to_chrome_trace
from repro.obs.report import (
    collect_profile,
    render_phase_timings,
    render_profile,
    render_prometheus,
)
from repro.obs.trace import JsonlWriter, Span, Tracer

__all__ = [
    "trace",
    "metrics",
    "context",
    "log",
    "recorder",
    "Tracer",
    "Span",
    "JsonlWriter",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "labeled",
    "TraceContext",
    "FlightRecorder",
    "RequestRecord",
    "to_chrome_trace",
    "collect_profile",
    "render_profile",
    "render_phase_timings",
    "render_prometheus",
    "observed",
]


@contextmanager
def observed(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Enable ambient tracing + metrics for the duration of the block.

    Fresh instances are created unless passed in; the previously
    installed tracer/registry (usually: none) are restored on exit, so
    nested observations compose.
    """
    tracer = tracer if tracer is not None else Tracer()
    registry = registry if registry is not None else MetricsRegistry()
    prev_tracer = trace.install(tracer)
    prev_registry = metrics.install(registry)
    try:
        yield tracer, registry
    finally:
        trace.uninstall(prev_tracer)
        metrics.uninstall(prev_registry)
