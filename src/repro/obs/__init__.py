"""Observability for the synthesis pipeline: tracing, metrics, profiles.

Three layers, composable and individually usable:

- :mod:`repro.obs.trace` — hierarchical spans over a monotonic clock,
  with an in-memory collector and a JSONL event exporter;
- :mod:`repro.obs.metrics` — process-local counters, gauges and
  fixed-bucket histograms;
- :mod:`repro.obs.report` — folding both into per-phase profile tables.

Everything is **off by default**: pipeline call sites route through
ambient module-level helpers (``trace.span(...)``,
``metrics.counter(...)``) that no-op until a tracer/registry is
installed, so the un-observed pipeline pays an attribute check per
event.  The :func:`observed` context manager is the one-liner opt-in::

    from repro import obs

    with obs.observed() as (tracer, registry):
        result = NFactor(source).synthesize()
    print(obs.render_profile(obs.collect_profile(tracer, registry)))
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs import metrics, trace
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    collect_profile,
    render_phase_timings,
    render_profile,
    render_prometheus,
)
from repro.obs.trace import JsonlWriter, Span, Tracer

__all__ = [
    "trace",
    "metrics",
    "Tracer",
    "Span",
    "JsonlWriter",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "collect_profile",
    "render_profile",
    "render_phase_timings",
    "render_prometheus",
    "observed",
]


@contextmanager
def observed(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Enable ambient tracing + metrics for the duration of the block.

    Fresh instances are created unless passed in; the previously
    installed tracer/registry (usually: none) are restored on exit, so
    nested observations compose.
    """
    tracer = tracer if tracer is not None else Tracer()
    registry = registry if registry is not None else MetricsRegistry()
    prev_tracer = trace.install(tracer)
    prev_registry = metrics.install(registry)
    try:
        yield tracer, registry
    finally:
        trace.uninstall(prev_tracer)
        metrics.uninstall(prev_registry)
