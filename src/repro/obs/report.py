"""Rendering collected traces and metrics into profiles.

:func:`collect_profile` folds a :class:`~repro.obs.trace.Tracer`'s span
collection and a :class:`~repro.obs.metrics.MetricsRegistry` snapshot
into one machine-readable dict; :func:`render_profile` turns that dict
into the human-readable per-phase table the CLI prints for
``--profile`` / ``python -m repro profile <nf>``.

The per-phase table groups spans named ``phase.<name>`` (the pipeline
phases opened by :class:`~repro.nfactor.algorithm.NFactor`); *self*
time is a span's duration minus its children's, so a phase that mostly
waits on sub-spans (e.g. ``symbolic`` on ``se.explore``) reads near
zero self time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import PHASE_PREFIX, Tracer

__all__ = [
    "collect_profile",
    "render_profile",
    "render_phase_timings",
    "render_prometheus",
]


def _span_aggregates(tracer: Tracer) -> List[Dict[str, Any]]:
    """Per-name aggregates (count/total/self), in first-start order."""
    spans = sorted(tracer.spans, key=lambda s: (s.start, s.span_id))
    child_time: Dict[int, float] = {}
    for s in spans:
        if s.parent_id is not None:
            child_time[s.parent_id] = child_time.get(s.parent_id, 0.0) + s.duration

    rows: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for s in spans:
        row = rows.get(s.name)
        if row is None:
            row = rows[s.name] = {"name": s.name, "count": 0, "total_s": 0.0, "self_s": 0.0}
            order.append(s.name)
        row["count"] += 1
        row["total_s"] += s.duration
        row["self_s"] += max(0.0, s.duration - child_time.get(s.span_id, 0.0))
    return [rows[name] for name in order]


def collect_profile(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    phase_timings: Optional[Mapping[str, float]] = None,
) -> Dict[str, Any]:
    """Fold trace + metrics into one machine-readable profile dict.

    Phases come from ``phase.*`` spans when a tracer is given, else from
    an explicit ``phase_timings`` mapping (``SynthesisStats``'s field).
    """
    spans = _span_aggregates(tracer) if tracer is not None else []
    phases = [
        {
            "name": row["name"][len(PHASE_PREFIX):],
            "count": row["count"],
            "total_s": row["total_s"],
            "self_s": row["self_s"],
        }
        for row in spans
        if row["name"].startswith(PHASE_PREFIX)
    ]
    if not phases and phase_timings:
        phases = [
            {"name": name, "count": 1, "total_s": t, "self_s": t}
            for name, t in phase_timings.items()
        ]
    return {
        "phases": phases,
        "spans": spans,
        "metrics": registry.snapshot() if registry is not None else {},
    }


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> List[str]:
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return lines


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.2f}"


def render_phase_timings(phase_timings: Mapping[str, float]) -> str:
    """The per-phase table straight from ``SynthesisStats.phase_timings``."""
    return render_profile(collect_profile(phase_timings=phase_timings))


def render_profile(profile: Mapping[str, Any]) -> str:
    """The human-readable profile: phase table, hot spans, metrics."""
    out: List[str] = []

    phases = profile.get("phases") or []
    total = sum(p["total_s"] for p in phases) or 1.0
    out.append("Per-phase profile")
    if phases:
        out.extend(
            _table(
                ["phase", "calls", "total ms", "self ms", "share"],
                [
                    [
                        p["name"],
                        p["count"],
                        _ms(p["total_s"]),
                        _ms(p["self_s"]),
                        f"{100.0 * p['total_s'] / total:5.1f}%",
                    ]
                    for p in phases
                ],
            )
        )
    else:
        out.append("  (no phase spans recorded)")

    inner = [s for s in profile.get("spans", []) if not s["name"].startswith(PHASE_PREFIX)]
    if inner:
        out.append("")
        out.append("Spans")
        out.extend(
            _table(
                ["span", "calls", "total ms", "self ms"],
                [
                    [s["name"], s["count"], _ms(s["total_s"]), _ms(s["self_s"])]
                    for s in inner
                ],
            )
        )

    metrics = profile.get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    if counters or gauges:
        out.append("")
        out.append("Counters / gauges")
        rows = [[name, value] for name, value in counters.items()]
        rows += [[name, value] for name, value in gauges.items()]
        out.extend(_table(["metric", "value"], rows))

    histograms = metrics.get("histograms") or {}
    if histograms:
        out.append("")
        out.append("Histograms")
        rows = []
        for name, h in histograms.items():
            # Latency histograms (named *_seconds) read best in ms;
            # size/count histograms keep their raw unit.
            if name.endswith("_seconds"):
                fmt, unit = (lambda v: _ms(v or 0.0)), " (ms)"
            else:
                fmt, unit = (lambda v: f"{(v or 0):g}"), ""
            rows.append(
                [
                    name + unit,
                    h["count"],
                    fmt(h["mean"]),
                    fmt(h["max"]),
                    fmt(h["sum"]),
                ]
            )
        out.extend(_table(["histogram", "count", "mean", "max", "total"], rows))

    return "\n".join(out)


# ---------------------------------------------------------------------------
# Prometheus exposition (the serve /metrics endpoint)
# ---------------------------------------------------------------------------

#: ``# HELP`` text per dotted metric family.  Families not listed here
#: get a generated fallback; add entries as metrics become load-bearing.
METRIC_HELP: Dict[str, str] = {
    "serve.requests_total": "HTTP requests received by the serve tier.",
    "serve.request_seconds": "End-to-end request latency (admission to response).",
    "serve.endpoint_seconds": "Per-endpoint request latency, labeled by endpoint and status.",
    "serve.queue_wait_seconds": "Time jobs spent waiting in the admission queue.",
    "serve.queue_depth": "Requests currently waiting in the admission queue.",
    "serve.inflight": "Requests currently executing in workers.",
    "serve.workers": "Worker processes in the pool.",
    "serve.rejected_queue_full": "Requests rejected with 429 (queue at capacity).",
    "serve.deadline_exceeded": "Requests killed by their deadline (504).",
    "serve.loop_lag_seconds": "Event-loop scheduling lag samples.",
    "serve.loop_lag_max_seconds": "Maximum observed event-loop scheduling lag.",
    "serve.traced_requests": "Requests recorded with a full stitched span tree.",
    "solver.check_seconds": "Wall time of individual solver feasibility checks.",
    "solver.cache_hits": "Constraint-cache hits.",
    "solver.cache_misses": "Constraint-cache misses.",
    "cache.disk.errors": "Artifact-store disk failures (store degraded to memory-only).",
}


def _prom_name(name: str) -> str:
    """Dotted metric family names → Prometheus-legal identifiers."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _split_labels(name: str) -> Tuple[str, str]:
    """``family{k="v",...}`` → ``(family, 'k="v",...')``; no-label → ``""``.

    The inverse of :func:`repro.obs.metrics.labeled`: registries store
    labeled instruments under flat composite names, and this peels the
    label set back off for proper Prometheus exposition.
    """
    if name.endswith("}"):
        brace = name.find("{")
        if brace > 0:
            return name[:brace], name[brace + 1:-1]
    return name, ""


def _prom_number(value: Any) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """A registry snapshot as Prometheus text exposition (version 0.0.4).

    Counters/gauges become single samples; histograms expand into
    cumulative ``_bucket{le=...}`` series plus ``_count`` and ``_sum``,
    matching the ``le`` semantics :class:`~repro.obs.metrics.Histogram`
    already uses.  Instruments named via
    :func:`repro.obs.metrics.labeled` (``family{k="v"}``) are exposed
    as one metric family with proper label sets; every family gets
    ``# HELP`` and ``# TYPE`` metadata exactly once.  Used by
    ``repro serve``'s ``/metrics`` endpoint.
    """
    lines: List[str] = []
    described: set = set()

    def meta(family: str, metric: str, kind: str) -> None:
        if metric in described:
            return
        described.add(metric)
        help_text = METRIC_HELP.get(family, f"repro {kind} {family}")
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")

    def sample(metric: str, labels: str, suffix: str, value: Any) -> None:
        label_part = f"{{{labels}}}" if labels else ""
        lines.append(f"{metric}{suffix}{label_part} {_prom_number(value)}")

    for name, value in (snapshot.get("counters") or {}).items():
        family, labels = _split_labels(name)
        metric = _prom_name(family)
        meta(family, metric, "counter")
        sample(metric, labels, "", value)
    for name, value in (snapshot.get("gauges") or {}).items():
        family, labels = _split_labels(name)
        metric = _prom_name(family)
        meta(family, metric, "gauge")
        sample(metric, labels, "", value)
    for name, hist in (snapshot.get("histograms") or {}).items():
        family, labels = _split_labels(name)
        metric = _prom_name(family)
        meta(family, metric, "histogram")
        for le, count in hist.get("buckets") or []:
            le_label = f'le="{_prom_number(le)}"'
            merged = f"{labels},{le_label}" if labels else le_label
            lines.append(f"{metric}_bucket{{{merged}}} {count}")
        sample(metric, labels, "_count", hist.get("count", 0))
        sample(metric, labels, "_sum", hist.get("sum", 0.0))
    return "\n".join(lines) + "\n"
