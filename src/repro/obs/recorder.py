"""An always-on, bounded flight recorder for served requests.

The serve tier records a :class:`RequestRecord` for **every** request —
successes, rejections, deadline kills — into three fixed-size stores:

- a ring of the most recent ``capacity`` requests (summaries + span
  trees while they stay in the ring);
- the ``keep_slow`` slowest requests seen so far (full span trees
  pinned beyond the ring, so yesterday's pathological request is still
  inspectable today);
- the last ``keep_errors`` erroring requests (status >= 400, except
  429 backpressure rejections, which are load signals, not faults).

Memory is bounded by construction: at most
``capacity + keep_slow + keep_errors`` records, each holding at most
``MAX_SPANS_PER_REQUEST`` span dicts, so the worst case is a few MiB
regardless of uptime (docs/internals.md §11).  All methods are
thread-safe and cheap enough to stay on even under load — recording is
one lock, one deque append and (rarely) one sorted insert.

``GET /debugz/requests|slow|errors`` and the ``repro trace`` CLI read
these stores; :func:`to_chrome_trace` converts one record's stitched
span tree into ``chrome://tracing`` / Perfetto JSON.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "RequestRecord",
    "FlightRecorder",
    "to_chrome_trace",
    "render_span_tree",
    "phases_from_spans",
    "MAX_SPANS_PER_REQUEST",
]

#: Hard cap on span dicts kept per request (the worker also truncates
#: its batch to this before shipping it home).
MAX_SPANS_PER_REQUEST = 512


@dataclass
class RequestRecord:
    """One served request, as the flight recorder remembers it.

    ``spans`` is the stitched tree as a flat list of span dicts —
    ``{"span", "parent", "name", "start", "dur", "attrs"}`` with
    ``start`` seconds relative to the request's admission — or None
    when tracing was off for the request.
    """

    request_id: str
    trace_id: str = ""
    op: str = ""
    status: int = 0
    where: Optional[str] = None  #: 504 provenance (queue/worker/parent)
    wall_time: float = field(default_factory=time.time)
    elapsed_ms: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)  #: name -> ms
    error: str = ""
    spans: Optional[List[Dict[str, Any]]] = None
    n_spans_dropped: int = 0

    def summary(self) -> Dict[str, Any]:
        """The list-view dict (no span tree)."""
        out: Dict[str, Any] = {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "op": self.op,
            "status": self.status,
            "wall_time": round(self.wall_time, 3),
            "elapsed_ms": round(self.elapsed_ms, 3),
            "phases_ms": {k: round(v, 3) for k, v in self.phases.items()},
            "n_spans": len(self.spans) if self.spans is not None else None,
        }
        if self.where:
            out["where"] = self.where
        if self.error:
            out["error"] = self.error
        return out

    def detail(self) -> Dict[str, Any]:
        """The single-request view: summary plus the full span tree."""
        out = self.summary()
        out["spans"] = self.spans
        if self.n_spans_dropped:
            out["n_spans_dropped"] = self.n_spans_dropped
        return out


class FlightRecorder:
    """Bounded always-on request history (see module docstring)."""

    def __init__(
        self,
        capacity: int = 128,
        keep_slow: int = 16,
        keep_errors: int = 16,
    ) -> None:
        if capacity < 1:
            raise ValueError("recorder capacity must be >= 1")
        self.capacity = capacity
        self.keep_slow = keep_slow
        self.keep_errors = keep_errors
        self._recent: Deque[RequestRecord] = deque(maxlen=capacity)
        self._slow: List[RequestRecord] = []  # ascending by elapsed_ms
        self._errors: Deque[RequestRecord] = deque(maxlen=keep_errors)
        self._recorded = 0
        self._lock = threading.Lock()

    # -- writing -------------------------------------------------------------

    def record(self, rec: RequestRecord) -> None:
        """Remember one finished request (thread-safe, O(log keep_slow))."""
        if rec.spans is not None and len(rec.spans) > MAX_SPANS_PER_REQUEST:
            rec.n_spans_dropped += len(rec.spans) - MAX_SPANS_PER_REQUEST
            rec.spans = rec.spans[:MAX_SPANS_PER_REQUEST]
        with self._lock:
            self._recorded += 1
            self._recent.append(rec)
            if self.keep_slow > 0:
                keys = [r.elapsed_ms for r in self._slow]
                if len(self._slow) < self.keep_slow:
                    self._slow.insert(bisect.bisect(keys, rec.elapsed_ms), rec)
                elif rec.elapsed_ms > self._slow[0].elapsed_ms:
                    self._slow.pop(0)
                    keys.pop(0)
                    self._slow.insert(bisect.bisect(keys, rec.elapsed_ms), rec)
            if self.keep_errors > 0 and rec.status >= 400 and rec.status != 429:
                self._errors.append(rec)

    # -- reading -------------------------------------------------------------

    def recent(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """Most-recent-first summaries of the last ``n`` requests."""
        with self._lock:
            records = list(self._recent)
        records.reverse()
        return [r.summary() for r in records[: n or len(records)]]

    def slow(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """Slowest-first details (span trees included)."""
        with self._lock:
            records = list(reversed(self._slow))
        return [r.detail() for r in records[: n or len(records)]]

    def errors(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """Most-recent-first erroring requests (span trees included)."""
        with self._lock:
            records = list(self._errors)
        records.reverse()
        return [r.detail() for r in records[: n or len(records)]]

    def get(self, request_id: str) -> Optional[RequestRecord]:
        """The record for one request id, wherever it is still held."""
        with self._lock:
            for store in (self._recent, self._errors, self._slow):
                for rec in store:
                    if rec.request_id == request_id:
                        return rec
        return None

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "recorded_total": self._recorded,
                "recent": len(self._recent),
                "slow": len(self._slow),
                "errors": len(self._errors),
                "capacity": self.capacity,
                "keep_slow": self.keep_slow,
                "keep_errors": self.keep_errors,
                "max_spans_per_request": MAX_SPANS_PER_REQUEST,
            }


# ---------------------------------------------------------------------------
# Exports / rendering (shared by the server and the `repro trace` CLI)
# ---------------------------------------------------------------------------


def phases_from_spans(spans: Optional[List[Dict[str, Any]]]) -> Dict[str, float]:
    """Per-phase wall time (ms) from a span batch's ``phase.*`` spans.

    This is the "how far did the request get" breakdown: on a deadline
    kill the batch holds only the phases that finished (plus the one
    that was interrupted, closed by the unwinding), so a 504 envelope
    can say *where* the budget went.
    """
    out: Dict[str, float] = {}
    for span in spans or []:
        name = span.get("name", "")
        if name.startswith("phase."):
            phase = name[len("phase."):]
            out[phase] = out.get(phase, 0.0) + float(span.get("dur", 0.0)) * 1000.0
    return out


def to_chrome_trace(record: Dict[str, Any]) -> Dict[str, Any]:
    """One request's detail dict as ``chrome://tracing`` JSON.

    Complete (``ph: "X"``) events on one pid/tid, microsecond
    timestamps relative to the request's admission — load the file in
    ``chrome://tracing`` or https://ui.perfetto.dev to see the stitched
    client → queue → worker → pipeline timeline.
    """
    events: List[Dict[str, Any]] = []
    for span in record.get("spans") or []:
        attrs = dict(span.get("attrs") or {})
        attrs["span"] = span.get("span")
        if span.get("parent") is not None:
            attrs["parent"] = span.get("parent")
        events.append(
            {
                "name": span.get("name", "?"),
                "ph": "X",
                "ts": round(float(span.get("start", 0.0)) * 1e6, 3),
                "dur": round(float(span.get("dur", 0.0)) * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "cat": "repro",
                "args": attrs,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "request_id": record.get("request_id"),
            "trace_id": record.get("trace_id"),
            "op": record.get("op"),
            "status": record.get("status"),
        },
    }


def render_span_tree(record: Dict[str, Any]) -> str:
    """ASCII rendering of a record's span tree (``repro trace show``)."""
    spans = record.get("spans") or []
    by_parent: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for span in spans:
        by_parent.setdefault(span.get("parent"), []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: (s.get("start", 0.0), s.get("span", 0)))

    lines: List[str] = []

    def walk(parent: Optional[int], depth: int) -> None:
        for span in by_parent.get(parent, []):
            start_ms = float(span.get("start", 0.0)) * 1000.0
            dur_ms = float(span.get("dur", 0.0)) * 1000.0
            attrs = span.get("attrs") or {}
            attr_text = (
                "  " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
                if attrs
                else ""
            )
            lines.append(
                f"{'  ' * depth}{span.get('name', '?')}  "
                f"[{start_ms:.2f}ms +{dur_ms:.2f}ms]{attr_text}"
            )
            walk(span.get("span"), depth + 1)

    walk(None, 0)
    if not lines:
        lines.append("(no spans recorded for this request)")
    return "\n".join(lines)
