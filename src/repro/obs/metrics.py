"""Process-local metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` owns named instruments; instruments are
created on first use and shared afterwards::

    registry = MetricsRegistry()
    registry.counter("se.paths_forked").inc()
    registry.histogram("solver.check_seconds").observe(0.0021)
    registry.snapshot()   # plain-dict view of everything

Pipeline code does not hold a registry reference: the module-level
:func:`counter` / :func:`gauge` / :func:`histogram` helpers route to the
*installed* registry (see :func:`install`).  The default registry is
disabled — its instruments are shared no-op singletons, so an
un-observed pipeline pays one attribute check per call site.

All instruments are thread-safe (per-instrument locks); histograms use
cumulative ``le`` (less-or-equal) bucket semantics, i.e. a value equal
to a bucket's upper bound lands **in** that bucket.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "labeled",
    "install",
    "uninstall",
    "active",
    "TIME_BUCKETS",
    "SIZE_BUCKETS",
]

#: Default bucket upper bounds (seconds) for latency histograms.
TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default bucket upper bounds for size/count histograms.
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

Number = Union[int, float]


def labeled(name: str, **labels: Any) -> str:
    """A dimensioned instrument name: ``name{key="value",...}``.

    The registry treats the result as an ordinary flat name (each label
    combination is its own instrument), while the Prometheus renderer
    (:func:`repro.obs.report.render_prometheus`) parses the suffix back
    into proper ``{key="value"}`` label sets grouped under one metric
    family.  Labels are sorted, so the same combination always maps to
    the same instrument::

        registry.histogram(labeled("serve.endpoint_seconds",
                                   endpoint="synthesize", status=200))
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: Number = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += n

    @property
    def value(self) -> Number:
        return self._value


class Gauge:
    """A value that can go up and down (sizes, current levels)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: Number = 1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: Number = 1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> Number:
        return self._value


class Histogram:
    """A fixed-bucket histogram with ``le`` (≤ upper bound) semantics.

    ``buckets`` are finite upper bounds in increasing order; an implicit
    overflow bucket (``+inf``) catches everything above the last bound.
    Also tracks count, sum, min and max, so means and rough percentiles
    are recoverable from a snapshot.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, buckets: Optional[Sequence[Number]] = None) -> None:
        bounds = tuple(sorted(buckets if buckets is not None else TIME_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow (+inf)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, total)``."""
        out: List[Tuple[float, int]] = []
        running = 0
        with self._lock:
            for bound, n in zip(self.bounds, self._counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        running = 0
        for bound, n in zip(self.bounds, self._counts):
            running += n
            if running >= target:
                return bound
        return self._max if self._max is not None else self.bounds[-1]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
            "buckets": [[le, n] for le, n in self.bucket_counts()],
        }

    def merge_dict(self, snapshot: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`as_dict` snapshot into this one.

        Used to merge per-child-process metrics into the parent registry
        (:meth:`MetricsRegistry.merge`).  Bucket bounds must match; the
        snapshot's cumulative bucket counts are de-cumulated back into
        per-bucket increments.
        """
        buckets = snapshot.get("buckets") or []
        if not buckets:
            return
        bounds = tuple(b[0] for b in buckets[:-1])
        if bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched buckets"
            )
        with self._lock:
            previous = 0
            for idx, (_, cumulative) in enumerate(buckets):
                self._counts[idx] += cumulative - previous
                previous = cumulative
            self._count += snapshot.get("count", 0)
            self._sum += snapshot.get("sum", 0.0)
            for bound_attr, pick in (("_min", min), ("_max", max)):
                other = snapshot.get(bound_attr.lstrip("_"))
                if other is None:
                    continue
                mine = getattr(self, bound_attr)
                setattr(self, bound_attr, other if mine is None else pick(mine, other))


class _NullCounter:
    __slots__ = ()
    name = "<disabled>"
    value = 0

    def inc(self, n: Number = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "<disabled>"
    value = 0

    def set(self, value: Number) -> None:
        pass

    def inc(self, n: Number = 1) -> None:
        pass

    def dec(self, n: Number = 1) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "<disabled>"
    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: Number) -> None:
        pass

    def bucket_counts(self) -> List[Tuple[float, int]]:
        return []

    def as_dict(self) -> Dict[str, Any]:
        return {"count": 0, "sum": 0.0, "mean": 0.0, "min": None, "max": None, "buckets": []}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """A named collection of instruments with a plain-dict snapshot."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument factories (create-or-get) -------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                self._check_free(name, self._counters)
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                self._check_free(name, self._gauges)
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(self, name: str, buckets: Optional[Sequence[Number]] = None) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                self._check_free(name, self._histograms)
                inst = self._histograms[name] = Histogram(name, buckets)
            return inst

    def _check_free(self, name: str, own: Dict[str, Any]) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and name in family:
                raise ValueError(f"metric {name!r} already registered with another type")

    # -- views ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything, as plain JSON-serialisable dicts."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {k: h.as_dict() for k, h in sorted(histograms.items())},
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh start for the next run)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters and histogram observations add; gauges (point-in-time
        levels) take the incoming value.  This is how parallel corpus
        synthesis (:mod:`repro.parallel`) folds each worker process's
        metrics back into the parent's ambient registry, so a batch run
        reports one coherent profile.
        """
        if not self.enabled:
            return
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, hist_dict in (snapshot.get("histograms") or {}).items():
            buckets = hist_dict.get("buckets") or []
            bounds = [b[0] for b in buckets[:-1]] or None
            self.histogram(name, bounds).merge_dict(hist_dict)


# ---------------------------------------------------------------------------
# Ambient registry (module-level helpers used by instrumented code)
# ---------------------------------------------------------------------------

_DISABLED = MetricsRegistry(enabled=False)
_active: MetricsRegistry = _DISABLED


def install(registry: MetricsRegistry) -> MetricsRegistry:
    """Make ``registry`` the ambient registry; returns the previous one."""
    global _active
    previous = _active
    _active = registry
    return previous


def uninstall(previous: Optional[MetricsRegistry] = None) -> None:
    """Restore the ambient registry (to ``previous``, default: disabled)."""
    global _active
    _active = previous if previous is not None else _DISABLED


def active() -> MetricsRegistry:
    """The ambient registry (the shared disabled one by default)."""
    return _active


def counter(name: str) -> Counter:
    return _active.counter(name)


def gauge(name: str) -> Gauge:
    return _active.gauge(name)


def histogram(name: str, buckets: Optional[Sequence[Number]] = None) -> Histogram:
    return _active.histogram(name, buckets)
