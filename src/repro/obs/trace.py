"""Hierarchical execution tracing for the synthesis pipeline.

A :class:`Tracer` records **spans** — named, attributed intervals on a
monotonic clock — nested by a per-thread context stack, so a span opened
while another is active becomes its child.  Spans double as context
managers::

    tracer = Tracer()
    with tracer.span("phase.slice", nf="nat"):
        with tracer.span("slice.backward", sid=7):
            ...

Finished spans land in the in-memory collector (``tracer.spans``) and,
when a *sink* is configured, are streamed as JSONL events — one event
per line, a start (``"ev": "B"``) when the span opens and an end
(``"ev": "E"``, carrying the duration and final attributes) when it
closes.  :class:`JsonlWriter` is the file sink; :func:`Tracer.dump_jsonl`
replays the collector after the fact.

Pipeline code does not hold a tracer reference: it calls the
module-level :func:`span` helper, which routes to the *installed*
tracer (see :func:`install`).  When no tracer is installed — the
default — :func:`span` returns a shared no-op span, so instrumentation
costs one attribute check per call site.
"""

from __future__ import annotations

import atexit
import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, IO, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "JsonlWriter",
    "span",
    "phase",
    "install",
    "uninstall",
    "active",
    "NULL_SPAN",
]

#: Span name prefix marking top-level pipeline phases (report.py groups
#: spans with this prefix into the per-phase profile table).
PHASE_PREFIX = "phase."


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One named interval; a context manager tied to its tracer."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "attrs", "start", "end")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end: Optional[float] = None

    @property
    def duration(self) -> float:
        """Seconds from open to close (live reading while still open)."""
        end = self.end if self.end is not None else self.tracer._now()
        return end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """A JSON/pickle-able form (ships across the worker boundary)."""
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": round(self.start, 9),
            "dur": round(self.duration, 9),
            "attrs": dict(self.attrs),
        }

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (merged into the span-end event)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._open(self)
        return self

    def __exit__(self, *exc: object) -> bool:
        self.tracer._close(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration * 1e3:.2f}ms"
        return f"<Span {self.span_id} {self.name!r} {state}>"


class Tracer:
    """Collects hierarchical spans; optionally streams JSONL events.

    Thread-safe: the parent/child context stack is thread-local (spans
    opened on different threads nest independently), while id
    allocation, the collector and the sink are lock-protected.
    """

    def __init__(
        self,
        enabled: bool = True,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.enabled = enabled
        self.sink = sink
        #: Distributed trace this tracer's spans belong to (set when the
        #: tracer serves one request; see :mod:`repro.obs.context`).
        self.trace_id = trace_id
        self.spans: List[Span] = []  #: finished spans, in completion order
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()

    # -- clock / context ----------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """A new span parented under this thread's innermost open span."""
        if not self.enabled:
            return NULL_SPAN
        parent = self.current()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(
            self,
            span_id,
            parent.span_id if parent is not None else None,
            name,
            dict(attrs),
        )

    def _open(self, span: Span) -> None:
        span.start = self._now()
        self._stack().append(span)
        self._emit(
            {
                "ev": "B",
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "ts": round(span.start, 9),
            }
        )

    def _close(self, span: Span) -> None:
        span.end = self._now()
        stack = self._stack()
        if span in stack:  # tolerate out-of-order exits
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        with self._lock:
            self.spans.append(span)
        self._emit(
            {
                "ev": "E",
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "ts": round(span.end, 9),
                "dur": round(span.end - span.start, 9),
                "attrs": span.attrs,
            }
        )

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.sink is not None:
            self.sink(event)

    # -- exporters ----------------------------------------------------------

    def export_spans(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Finished spans as plain dicts, in start order.

        ``limit`` caps the batch (earliest spans win — they are the
        pipeline's structure; the tail is repetition).  This is what a
        serve worker ships back to the server for request stitching.
        """
        with self._lock:
            spans = sorted(self.spans, key=lambda s: (s.start, s.span_id))
        if limit is not None and len(spans) > limit:
            spans = spans[:limit]
        return [s.to_dict() for s in spans]

    def dump_jsonl(self, fh: IO[str]) -> int:
        """Replay the collected spans as JSONL events; returns line count."""
        with self._lock:
            spans = sorted(self.spans, key=lambda s: s.start)
        events: List[Dict[str, Any]] = []
        for s in spans:
            events.append(
                {
                    "ev": "B",
                    "span": s.span_id,
                    "parent": s.parent_id,
                    "name": s.name,
                    "ts": round(s.start, 9),
                }
            )
            events.append(
                {
                    "ev": "E",
                    "span": s.span_id,
                    "parent": s.parent_id,
                    "name": s.name,
                    "ts": round(s.end if s.end is not None else s.start, 9),
                    "dur": round(s.duration, 9),
                    "attrs": s.attrs,
                }
            )
        events.sort(key=lambda e: e["ts"])
        for event in events:
            fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        return len(events)


class JsonlWriter:
    """A live JSONL event sink writing one event per line to a file.

    Failure policy mirrors :class:`repro.cache.store.ArtifactStore`'s
    unwritable-directory degrade: the first failed write (closed file,
    full disk, revoked permissions) logs **one** structured warning and
    disables the sink — tracing must never take down the traced run.
    Buffered events are flushed at interpreter exit, so a crash-adjacent
    trace file still holds everything up to the crash.
    """

    def __init__(self, path_or_fh: Any) -> None:
        if hasattr(path_or_fh, "write"):
            self._fh: IO[str] = path_or_fh
            self._owned = False
        else:
            self._fh = open(path_or_fh, "w", encoding="utf-8")
            self._owned = True
        self._lock = threading.Lock()
        self._broken = False
        self._closed = False
        atexit.register(self._atexit_flush)

    def __call__(self, event: Dict[str, Any]) -> None:
        if self._broken or self._closed:
            return
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            try:
                self._fh.write(line + "\n")
            except (OSError, ValueError) as exc:
                # ValueError = write to a closed file object.
                self._broken = True
                from repro.obs import log as obs_log

                obs_log.log_event(
                    obs_log.get_logger("repro.obs"),
                    30,  # logging.WARNING, without importing logging here
                    "trace.sink_broken",
                    f"trace sink failed ({exc}); span events are dropped "
                    "from here on",
                    error=str(exc),
                )

    def _atexit_flush(self) -> None:
        """Best-effort flush at interpreter exit (never raises)."""
        try:
            with self._lock:
                if not self._broken and not self._closed:
                    self._fh.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        atexit.unregister(self._atexit_flush)
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._broken:
                return
            try:
                self._fh.flush()
                if self._owned:
                    self._fh.close()
            except (OSError, ValueError):
                pass


# ---------------------------------------------------------------------------
# Ambient tracer (module-level helpers used by instrumented code)
# ---------------------------------------------------------------------------

_active: Optional[Tracer] = None


def install(tracer: Tracer) -> Optional[Tracer]:
    """Make ``tracer`` the ambient tracer; returns the previous one."""
    global _active
    previous = _active
    _active = tracer
    return previous


def uninstall(previous: Optional[Tracer] = None) -> None:
    """Restore the ambient tracer (to ``previous``, default: none)."""
    global _active
    _active = previous


def active() -> Optional[Tracer]:
    """The ambient tracer, or None when tracing is disabled."""
    return _active


def span(name: str, **attrs: Any):
    """Open a span on the ambient tracer (no-op span when disabled)."""
    tracer = _active
    if tracer is None or not tracer.enabled:
        return NULL_SPAN
    return tracer.span(name, **attrs)


@contextmanager
def phase(name: str, timings: Optional[Dict[str, float]] = None) -> Iterator[None]:
    """A pipeline-phase span that also accumulates wall time.

    ``timings`` (when given) gets ``timings[name] += duration`` whether
    or not tracing is enabled — this is how ``SynthesisStats``'s
    ``phase_timings`` stays populated at zero configuration.
    """
    s = span(PHASE_PREFIX + name)
    t0 = time.perf_counter()
    s.__enter__()
    try:
        yield
    finally:
        s.__exit__(None, None, None)
        if timings is not None:
            timings[name] = timings.get(name, 0.0) + (time.perf_counter() - t0)
