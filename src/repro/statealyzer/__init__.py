"""StateAlyzer-style variable classification (paper §2.1 and Table 1)."""

from repro.statealyzer.features import VariableFeatures, compute_features
from repro.statealyzer.classify import VarCategories, classify_variables

__all__ = [
    "VariableFeatures",
    "compute_features",
    "VarCategories",
    "classify_variables",
]
