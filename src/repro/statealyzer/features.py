"""Per-variable feature extraction (the StateAlyzer feature set, §2.1).

The four features the paper builds on:

* **persistent** — lifetime longer than the packet-processing loop:
  the variable is initialised at module level (or declared ``global``);
* **top-level** — actually used during packet processing: it appears in
  a statement of the per-packet entry code;
* **updateable** — assigned (appears on an LHS, weak updates included)
  during packet processing;
* **output-impacting** — appears in the backward slice from the packet
  output calls, i.e. its value can influence what is sent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.lang.ir import Stmt, iter_block, stmt_defs, stmt_uses
from repro.pdg.flatten import FlatView


@dataclass
class VariableFeatures:
    """Feature vectors for every variable of a flattened program."""

    persistent: Set[str] = field(default_factory=set)
    top_level: Set[str] = field(default_factory=set)
    updateable: Set[str] = field(default_factory=set)
    output_impacting: Set[str] = field(default_factory=set)
    packet_bound: Set[str] = field(default_factory=set)

    def feature_row(self, var: str) -> Dict[str, bool]:
        """The feature vector of one variable (for reports/tests)."""
        return {
            "persistent": var in self.persistent,
            "top_level": var in self.top_level,
            "updateable": var in self.updateable,
            "output_impacting": var in self.output_impacting,
        }


def compute_features(flat: FlatView, pkt_slice: Set[int]) -> VariableFeatures:
    """Compute the StateAlyzer features over a flat view.

    ``pkt_slice`` is the packet-processing slice (flat sids) from
    Algorithm 1 lines 1–4; output-impacting variables are those
    mentioned by any statement in it.
    """
    features = VariableFeatures()
    stmts = flat.stmts()

    entry_fn = flat.program.functions[flat.program.entry] if flat.program.entry else None

    for sid, stmt in stmts.items():
        if sid in flat.module_sids:
            features.persistent |= stmt_defs(stmt)
        else:
            features.top_level |= stmt_uses(stmt) | stmt_defs(stmt)
            features.updateable |= stmt_defs(stmt)
        if sid in pkt_slice:
            features.output_impacting |= stmt_uses(stmt) | stmt_defs(stmt)

    if entry_fn is not None:
        features.persistent |= entry_fn.global_names

    # Packet-bound names: entry parameters plus recv_packet() bindings.
    features.packet_bound |= set(flat.entry_params)
    for stmt in iter_block(flat.block):
        from repro.lang.ir import ECall, LName, SAssign

        if (
            isinstance(stmt, SAssign)
            and isinstance(stmt.value, ECall)
            and not stmt.value.method
            and stmt.value.func == "recv_packet"
        ):
            for target in stmt.targets:
                if isinstance(target, LName):
                    features.packet_bound.add(target.id)
    return features
