"""Variable categorisation (paper Table 1).

=========  =================================================  ==============
Category   Features                                           LB example
=========  =================================================  ==============
pktVar     packet I/O function parameter/return value         ``pkt``
cfgVar     persistent, top-level, **not** updateable          ``mode``
oisVar     persistent, top-level, updateable,                 ``f2b_nat``,
           output-impacting                                   ``rr_idx``
logVar     persistent, top-level, updateable,                 ``pass_stat``,
           **not** output-impacting                           ``drop_stat``
=========  =================================================  ==============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.pdg.flatten import FlatView
from repro.statealyzer.features import VariableFeatures, compute_features


@dataclass
class VarCategories:
    """The output of StateAlyzer-style classification (Algorithm 1 line 5)."""

    pkt_vars: Set[str] = field(default_factory=set)
    cfg_vars: Set[str] = field(default_factory=set)
    ois_vars: Set[str] = field(default_factory=set)
    log_vars: Set[str] = field(default_factory=set)
    features: VariableFeatures = field(default_factory=VariableFeatures)

    def category_of(self, var: str) -> str:
        """The category name of ``var`` (``"other"`` if uncategorised)."""
        if var in self.pkt_vars:
            return "pktVar"
        if var in self.cfg_vars:
            return "cfgVar"
        if var in self.ois_vars:
            return "oisVar"
        if var in self.log_vars:
            return "logVar"
        return "other"

    def as_table(self) -> Dict[str, Set[str]]:
        """Category → variables, for reports (paper Table 1 layout)."""
        return {
            "pktVar": set(self.pkt_vars),
            "cfgVar": set(self.cfg_vars),
            "oisVar": set(self.ois_vars),
            "logVar": set(self.log_vars),
        }


def classify_variables(flat: FlatView, pkt_slice: Set[int]) -> VarCategories:
    """Classify every variable of a flattened program (Table 1 rules).

    Differently from StateAlyzer — and exactly as the paper notes in
    §3.1 — the *output-impacting* feature is computed from the packet
    processing slice rather than the whole program, which both reduces
    the code to process and sharpens the oisVar/logVar split.
    """
    features = compute_features(flat, pkt_slice)
    categories = VarCategories(features=features)
    categories.pkt_vars = set(features.packet_bound)

    for var in features.persistent:
        if var in categories.pkt_vars or var not in features.top_level:
            continue
        if var not in features.updateable:
            categories.cfg_vars.add(var)
        elif var in features.output_impacting:
            categories.ois_vars.add(var)
        else:
            categories.log_vars.add(var)
    return categories
