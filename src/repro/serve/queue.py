"""Admission control: a bounded request queue with explicit backpressure.

``asyncio.Queue`` blocks producers when full; a serving system must do
the opposite — **reject immediately** so the client can back off (HTTP
429) instead of letting latency and memory grow without bound.  This
queue is that policy, plus the bookkeeping the server needs:

- :meth:`submit` is synchronous and never waits: it either enqueues or
  raises :class:`QueueFull` / :class:`QueueClosed`;
- :meth:`get` is awaited by the dispatcher tasks (one per pool worker);
- :meth:`task_done` / :meth:`join` give drain its "finish in-flight
  work" barrier;
- depth and in-flight counts are mirrored into the ambient metrics
  registry (``serve.queue_depth`` / ``serve.inflight`` gauges).

Single-event-loop discipline: every method is called from the server's
loop, so plain collections + one ``asyncio.Condition`` suffice.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional

from repro.obs import metrics as obs_metrics

#: Retry-After jitter bounds (seconds).  A fixed hint synchronizes every
#: backed-off client into retrying at the same instant — the thundering
#: herd re-fills the queue and earns itself another 429.
RETRY_AFTER_MIN_S = 0.5
RETRY_AFTER_MAX_S = 1.5


def retry_after_jitter() -> float:
    """A uniformly jittered retry hint in [0.5, 1.5] seconds.

    Goes into the 429/503 envelope as ``retry_after_s`` (the precise
    hint) and, rounded up, into the integer ``Retry-After`` header
    (RFC 7231 allows only whole seconds).
    """
    return random.uniform(RETRY_AFTER_MIN_S, RETRY_AFTER_MAX_S)


class QueueFull(Exception):
    """The bounded queue is at capacity; the request must be rejected."""


class QueueClosed(Exception):
    """The queue stopped accepting work (server is draining)."""


@dataclass
class Job:
    """One admitted request travelling queue → dispatcher → worker."""

    job_id: int
    op: str
    payload: Dict[str, Any]
    arrival: float
    deadline: Optional[float]  # absolute, on the same clock as arrival
    #: Serve-tier request id (minted at admission; stable across retries
    #: of nothing — one id per admitted request).
    request_id: str = ""
    #: The request's :class:`repro.obs.context.TraceContext` (None when
    #: tracing is disabled).
    ctx: Optional[Any] = None
    #: When a dispatcher picked the job up (same clock as ``arrival``);
    #: ``dispatched - arrival`` is the queue wait.
    dispatched: Optional[float] = None
    future: "asyncio.Future[Dict[str, Any]]" = field(repr=False, default=None)  # type: ignore[assignment]

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until the deadline (None = no deadline)."""
        if self.deadline is None:
            return None
        return self.deadline - (time.monotonic() if now is None else now)


class BoundedRequestQueue:
    """FIFO admission queue with reject-when-full semantics."""

    def __init__(self, maxsize: int, registry: Optional[Any] = None) -> None:
        if maxsize < 1:
            raise ValueError("queue maxsize must be >= 1")
        self.maxsize = maxsize
        self._registry = registry
        self._items: Deque[Job] = deque()
        self._closed = False
        self._inflight = 0
        self._unfinished = 0
        self._cond: Optional[asyncio.Condition] = None

    def _condition(self) -> asyncio.Condition:
        # Created lazily so the queue can be built before the loop runs.
        if self._cond is None:
            self._cond = asyncio.Condition()
        return self._cond

    # -- gauges --------------------------------------------------------------

    def _publish(self) -> None:
        registry = self._registry if self._registry is not None else obs_metrics.active()
        if registry.enabled:
            registry.gauge("serve.queue_depth").set(len(self._items))
            registry.gauge("serve.inflight").set(self._inflight)

    # -- producer side -------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Admit one job or raise; never blocks (that is the point)."""
        if self._closed:
            raise QueueClosed("queue is closed (draining)")
        if len(self._items) >= self.maxsize:
            raise QueueFull(
                f"request queue at capacity ({self.maxsize} pending)"
            )
        if job.future is None:
            job.future = asyncio.get_running_loop().create_future()
        self._items.append(job)
        self._unfinished += 1
        self._publish()
        cond = self._condition()
        # Wake one dispatcher.  notify() requires holding the lock; all
        # callers share the loop so a task is fine.
        asyncio.ensure_future(self._notify(cond))

    async def _notify(self, cond: asyncio.Condition) -> None:
        async with cond:
            cond.notify_all()

    # -- consumer side -------------------------------------------------------

    async def get(self) -> Optional[Job]:
        """Next job, or None once closed and empty (dispatcher exits)."""
        cond = self._condition()
        async with cond:
            while not self._items and not self._closed:
                await cond.wait()
            if not self._items:
                return None
            job = self._items.popleft()
        self._inflight += 1
        job.dispatched = time.monotonic()
        registry = self._registry if self._registry is not None else obs_metrics.active()
        if registry.enabled:
            registry.histogram("serve.queue_wait_seconds").observe(
                max(0.0, job.dispatched - job.arrival)
            )
        self._publish()
        return job

    def task_done(self) -> None:
        self._inflight -= 1
        self._unfinished -= 1
        self._publish()
        cond = self._condition()
        asyncio.ensure_future(self._notify(cond))

    # -- drain ---------------------------------------------------------------

    def close(self) -> None:
        """Stop admissions; queued jobs still run (drain semantics)."""
        self._closed = True
        cond = self._condition()
        asyncio.ensure_future(self._notify(cond))

    async def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until every admitted job finished; False on timeout."""
        cond = self._condition()
        deadline = None if timeout is None else time.monotonic() + timeout

        async with cond:
            while self._unfinished > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                try:
                    await asyncio.wait_for(cond.wait(), remaining)
                except asyncio.TimeoutError:
                    return False
        return True

    # -- introspection -------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def unfinished(self) -> int:
        return self._unfinished

    @property
    def closed(self) -> bool:
        return self._closed
