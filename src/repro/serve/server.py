"""The asyncio synthesis & model-query server (``repro serve``).

Request path::

    client ──HTTP──▶ connection handler (event loop)
                        │  admission: BoundedRequestQueue.submit
                        │    full    → 429 immediately (backpressure)
                        │    draining→ 503
                        ▼
                     dispatcher task (one per pool worker)
                        │  expired in queue → 504 without running
                        ▼
                     ProcessPoolExecutor worker
                        │  repro.serve.jobs.run_job under SIGALRM
                        ▼
                     response + metrics snapshot → folded into the
                     server registry → envelope back over the wire

The event loop only ever parses bytes and shuffles futures — all
CPU-bound synthesis happens in worker processes, and a background
**loop-lag probe** records how true that is
(``serve.loop_lag_seconds``; the bench asserts max lag < 100 ms).

Graceful drain (SIGTERM/SIGINT or :meth:`Server.request_drain`): stop
accepting connections, reject new requests on kept-alive connections
with 503, finish every admitted job, flush the persistent constraint
cache, shut the pool down, exit.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import MetricsRegistry, render_prometheus
from repro.obs import context as obs_context
from repro.obs import log as obs_log
from repro.obs.metrics import labeled
from repro.obs.recorder import FlightRecorder, RequestRecord, phases_from_spans
from repro.serve import protocol
from repro.serve.jobs import OPS, run_job
from repro.serve.registry import ModelRegistry
from repro.serve.queue import (
    BoundedRequestQueue,
    Job,
    QueueClosed,
    QueueFull,
    retry_after_jitter,
)


def _version() -> str:
    import repro

    return repro.__version__


def _pool_ready() -> None:
    """No-op pool task (see Server.prepare_pool)."""


def _worker_warmup(
    peers: Tuple[Tuple[str, int], ...] = (),
    cache_dir: Optional[str] = None,
) -> None:
    """Pool initializer: pre-import the pipeline in each worker.

    The first job in a fresh worker otherwise pays ~100 ms of lazy
    imports — visible as a p95 outlier on an otherwise ~2 ms warm
    ``synthesize``.  Runs once per worker process at pool start.

    ``peers``/``cache_dir`` carry the shard's cluster identity into the
    worker process explicitly (not via the parent's environment, which
    in-process multi-shard harnesses share): ``cache_dir`` pins this
    shard's private artifact directory, ``peers`` arms the store's
    remote tier so a local miss peer-fills before paying a cold
    synthesis.
    """
    import repro.apps.testing  # noqa: F401
    import repro.apps.verify  # noqa: F401
    import repro.equiv.differential  # noqa: F401
    import repro.nfactor.algorithm  # noqa: F401
    import repro.parallel  # noqa: F401

    if cache_dir is not None or peers:
        from repro import cache as artifact_cache

        if cache_dir is not None:
            artifact_cache.configure(
                directory=cache_dir, enabled=True, peers=peers
            )
        else:
            artifact_cache.configure(peers=peers)


@dataclass
class ServeConfig:
    """Server tunables (the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 8000
    #: Worker processes; 0 = one per CPU.
    workers: int = 0
    #: Bounded queue capacity — pending requests beyond the in-flight
    #: ones; the explicit backpressure limit.
    queue_size: int = 64
    #: Default per-request deadline when the client sends none.
    default_timeout_s: float = 60.0
    #: Upper bound on client-requested deadlines.
    max_timeout_s: float = 600.0
    #: How long drain waits for in-flight work before giving up.
    drain_timeout_s: float = 60.0
    #: Parent-side backstop beyond the worker's own alarm.  Wide on
    #: purpose: the worker's SIGALRM is the precise cancel; the parent
    #: only abandons the slot when the alarm truly failed, so racing it
    #: under CPU pressure just misattributes the 504.
    grace_s: float = 4.0
    #: Event-loop lag probe period (0 disables the probe).
    lag_probe_interval_s: float = 0.05
    #: Request tracing: parse/mint trace contexts, collect worker span
    #: batches and stitch them into the flight recorder.  Off = request
    #: ids + metrics only (the overhead benchmark's baseline).
    tracing: bool = True
    #: Serve simulate requests from the model compiler
    #: (:mod:`repro.model.compile`); ``--no-compile`` forces the
    #: interpreted ``ModelSimulator`` (the escape hatch).
    compile_sims: bool = True
    #: Flight-recorder ring size (recent requests, span trees included).
    recorder_capacity: int = 128
    #: Slowest requests pinned beyond the ring.
    recorder_keep_slow: int = 16
    #: Erroring requests pinned beyond the ring.
    recorder_keep_errors: int = 16
    #: Cluster cache peers as ``(host, port)`` pairs (``--join``): armed
    #: in every worker's artifact store (miss → peer-fill → recompute)
    #: and used for replica warm-up at startup.
    peers: Tuple[Tuple[str, int], ...] = ()
    #: Private artifact-cache directory for this shard (cluster mode
    #: gives every shard its own; None = the ambient store config).
    cache_dir: Optional[str] = None
    #: Pre-populate this shard from a peer's model registry on start.
    warmup: bool = True
    #: Identity reported in /healthz and cluster views (default
    #: ``host:port`` once the listener is bound).
    shard_name: Optional[str] = None

    def effective_workers(self) -> int:
        return self.workers if self.workers > 0 else (os.cpu_count() or 1)


class Server:
    """One serving instance: listener + queue + dispatchers + pool."""

    def __init__(
        self, config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry or MetricsRegistry()
        # Pre-register the simulator counters so /metrics and the
        # flight-recorder breakdowns show them from the first scrape —
        # the workers' snapshots merge into these by name.
        self.registry.counter("sim.packets")
        self.registry.counter("sim.guard_evals")
        self.registry.counter("sim.compiled_dispatches")
        self.registry.counter("sim.compiled")
        self.registry.histogram("sim.compile_seconds")
        # Graph-verification counters (repro.netverify): scrapable from
        # the first request, merged from worker snapshots by name.
        self.registry.counter("verify.edges")
        self.registry.counter("verify.cache.hits")
        self.registry.counter("verify.cache.misses")
        self.registry.counter("verify.dirty_edges")
        # Hot-swap (docs/internals.md §15): registered targets and the
        # reload counter, scrapable before the first reload lands.
        self.models = ModelRegistry()
        self.registry.counter("serve.reloads")
        self.queue = BoundedRequestQueue(
            self.config.queue_size, registry=self.registry
        )
        self.recorder = FlightRecorder(
            capacity=self.config.recorder_capacity,
            keep_slow=self.config.recorder_keep_slow,
            keep_errors=self.config.recorder_keep_errors,
        )
        self._log = obs_log.get_logger("repro.serve")
        self.draining = False
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._dispatchers: list = []
        self._lag_task: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Event] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._started_at = time.monotonic()
        self._job_ids = iter(range(1, 1 << 62))
        self._abandoned = 0
        self._cas_store: Optional[Any] = None
        self._warmup_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def prepare_pool(self) -> None:
        """Create the worker pool and fork every worker *now*.

        Must run before any listener binds in this process.  A forked
        worker inherits copies of every open FD, including listening
        sockets; as long as any process holds a listener FD the kernel
        keeps accepting connections into a backlog nobody drains, so a
        crashed shard's port would black-hole new connects instead of
        refusing them and the router could not fail over promptly.
        ``ClusterHandle`` calls this for every shard before starting
        any of them, since shards share one parent process there.
        """
        if self._pool is not None:
            return
        workers = self.config.effective_workers()
        self._pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_warmup,
            initargs=(self.config.peers, self.config.cache_dir),
        )
        spawn = getattr(self._pool, "_adjust_process_count", None)
        if spawn is not None:  # eager fork; idle workers park on the queue
            for _ in range(workers):
                spawn()
        # One throwaway submit starts the executor's manager thread.
        # Without it, a pool that never runs a job has nobody to send
        # exit sentinels to the pre-forked workers at shutdown, and
        # they would outlive the process's exit joins.
        self._pool.submit(_pool_ready)

    async def start(self) -> None:
        """Bind, spin up the pool, dispatchers and the lag probe."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        workers = self.config.effective_workers()
        self.prepare_pool()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._dispatchers = [
            self._loop.create_task(self._dispatch_loop()) for _ in range(workers)
        ]
        if self.config.lag_probe_interval_s > 0:
            self._lag_task = self._loop.create_task(self._lag_probe())
        self.registry.gauge("serve.workers").set(workers)
        if self.config.peers and self.config.warmup:
            # Replica warm-up: copy a peer's recent artifacts into this
            # shard's store on a daemon thread (serving starts now).
            from repro.serve import peers as serve_peers

            counter = self.registry.counter("serve.warmup.artifacts")
            self._warmup_thread = serve_peers.start_warmup_thread(
                self.cas_store(), self.config.peers, on_done=counter.inc
            )

    def install_signal_handlers(self) -> bool:
        """SIGTERM/SIGINT → graceful drain.  Best effort (main thread only)."""
        assert self._loop is not None
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self.request_drain)
            return True
        except (NotImplementedError, RuntimeError, ValueError):
            return False

    async def serve_forever(self) -> None:
        """Until a drain completes."""
        assert self._stopped is not None
        await self._stopped.wait()

    def request_drain(self) -> None:
        """Begin graceful drain (idempotent; safe from signal handlers)."""
        if self._loop is None or self._drain_task is not None:
            return
        self._drain_task = self._loop.create_task(self.drain())

    async def drain(self) -> None:
        """Stop accepting, finish in-flight, flush caches, stop."""
        if self.draining:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self.draining = True
        self.registry.counter("serve.drains").inc()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.queue.close()
        drained = await self.queue.join(self.config.drain_timeout_s)
        if not drained:
            self.registry.counter("serve.drain_timeouts").inc()
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        if self._lag_task is not None:
            self._lag_task.cancel()
        if self._pool is not None:
            # Abandoned jobs may still occupy a worker whose alarm could
            # not fire; don't hang shutdown on them.
            self._pool.shutdown(wait=self._abandoned == 0, cancel_futures=True)
        from repro.symbolic.solver import global_cache

        global_cache().flush()
        if self._stopped is not None:
            self._stopped.set()

    # -- shard identity / CAS store ------------------------------------------

    @property
    def shard_name(self) -> str:
        if self.config.shard_name:
            return self.config.shard_name
        return f"{self.config.host}:{self.port or self.config.port}"

    def cas_store(self):
        """The artifact store behind this shard's ``/cas`` endpoints.

        Always **peer-less**: a shard serves only what it holds locally,
        so two shards missing the same key can never chase each other in
        a fetch loop.  With ``cache_dir`` set (cluster mode) it is a
        dedicated store over the shard's private directory; otherwise a
        peer-stripped twin of the ambient store.
        """
        if self._cas_store is None:
            from repro.cache.store import ArtifactStore
            from repro import cache as artifact_cache

            if self.config.cache_dir:
                self._cas_store = ArtifactStore(self.config.cache_dir)
            else:
                base = artifact_cache.get_store()
                self._cas_store = ArtifactStore(
                    str(base.directory) if base.directory else None,
                    enabled=base.enabled,
                )
        return self._cas_store

    # -- event-loop health ---------------------------------------------------

    async def _lag_probe(self) -> None:
        """Measure event-loop scheduling lag (blocked-loop detector)."""
        interval = self.config.lag_probe_interval_s
        hist = self.registry.histogram("serve.loop_lag_seconds")
        gauge = self.registry.gauge("serve.loop_lag_max_seconds")
        max_lag = 0.0
        assert self._loop is not None
        while True:
            t0 = self._loop.time()
            await asyncio.sleep(interval)
            lag = max(0.0, self._loop.time() - t0 - interval)
            hist.observe(lag)
            if lag > max_lag:
                max_lag = lag
                gauge.set(max_lag)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        # One increment per TCP connection, however many requests ride
        # it — the client keep-alive test reads reuse off this counter.
        self.registry.counter("serve.connections").inc()
        try:
            while True:
                try:
                    request = await protocol.read_request(reader)
                except protocol.ProtocolError as exc:
                    writer.write(
                        protocol.json_response(
                            exc.status,
                            protocol.error_envelope(exc.status, exc.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                status, envelope, headers = await self._route(request)
                keep_alive = request.keep_alive and not self.draining
                if isinstance(envelope, _RawBytes):
                    payload = protocol.render_response(
                        status,
                        envelope.body,
                        content_type=envelope.content_type,
                        keep_alive=keep_alive,
                        extra_headers=headers,
                    )
                elif isinstance(envelope, _RawText):
                    payload = protocol.render_response(
                        status,
                        envelope.text.encode("utf-8"),
                        content_type=envelope.content_type,
                        keep_alive=keep_alive,
                        extra_headers=headers,
                    )
                else:
                    payload = protocol.json_response(
                        status, envelope, keep_alive=keep_alive,
                        extra_headers=headers,
                    )
                writer.write(payload)
                await writer.drain()
                self.registry.counter(f"serve.status.{status}").inc()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown while parked on a keep-alive read — routine
            # since clients hold connections open between requests.
            pass
        finally:
            # No wait_closed(): at loop shutdown the handler task may
            # already be cancelled, and close() alone is sufficient.
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, request: protocol.HttpRequest
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        self.registry.counter("serve.requests_total").inc()
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            if request.method != "GET":
                return 405, protocol.error_envelope(405, "use GET"), None
            return 200, protocol.ok_envelope(self._health()), None
        if path == "/metrics":
            if request.method != "GET":
                return 405, protocol.error_envelope(405, "use GET"), None
            snapshot = self.registry.snapshot()
            if request.query.get("format") == "json":
                return 200, protocol.ok_envelope(snapshot), None
            return 200, _RawText(render_prometheus(snapshot)), None
        if path == "/debugz" or path.startswith("/debugz/"):
            if request.method != "GET":
                return 405, protocol.error_envelope(405, "use GET"), None
            return self._debugz(path, request.query)
        if path.startswith("/cas/"):
            return self._cas(request, path)
        if path == "/registry":
            if request.method != "GET":
                return 405, protocol.error_envelope(405, "use GET"), None
            return self._registry(request.query)
        if path == "/v1/reload":
            if request.method != "POST":
                return 405, protocol.error_envelope(405, "use POST"), None
            try:
                body = request.json()
            except protocol.ProtocolError as exc:
                return exc.status, protocol.error_envelope(
                    exc.status, exc.message
                ), None
            return self._reload(body)
        if path.startswith("/v1/"):
            op = path[len("/v1/"):]
            if op not in OPS:
                return 404, protocol.error_envelope(
                    404, f"unknown endpoint {path!r}"
                ), None
            if request.method != "POST":
                return 405, protocol.error_envelope(405, "use POST"), None
            try:
                body = request.json()
            except protocol.ProtocolError as exc:
                return exc.status, protocol.error_envelope(
                    exc.status, exc.message
                ), None
            return await self._submit(op, body, request)
        return 404, protocol.error_envelope(404, f"unknown path {path!r}"), None

    def _debugz(
        self, path: str, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        """The flight-recorder views (``/debugz/requests|slow|errors``).

        ``?id=<request-id>`` on any view returns that one request's
        detail (summary + stitched span tree); otherwise ``?n=`` caps
        the list length (default 32).
        """
        kind = path[len("/debugz"):].strip("/") or "requests"
        if kind not in ("requests", "slow", "errors"):
            return 404, protocol.error_envelope(
                404, f"unknown debugz view {kind!r} (have: requests, slow, errors)"
            ), None
        request_id = query.get("id")
        if request_id:
            rec = self.recorder.get(request_id)
            if rec is None:
                return 404, protocol.error_envelope(
                    404, f"no record for request {request_id!r} "
                    "(evicted from the flight recorder?)"
                ), None
            return 200, protocol.ok_envelope(rec.detail()), None
        try:
            n = int(query.get("n", "32"))
        except ValueError:
            return 400, protocol.error_envelope(
                400, f"bad n: {query.get('n')!r}"
            ), None
        if kind == "requests":
            data = self.recorder.recent(n)
        elif kind == "slow":
            data = self.recorder.slow(n)
        else:
            data = self.recorder.errors(n)
        return 200, protocol.ok_envelope(
            {"requests": data, "stats": self.recorder.stats()}
        ), None

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "version": _version(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": self.config.effective_workers(),
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.maxsize,
            "inflight": self.queue.inflight,
            "models": self.models.versions(),
        }

    def _reload(
        self, body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        """``POST /v1/reload`` — register/flip a hot-swappable target.

        Handled inline on the event loop (registry state lives in the
        parent, key derivation is sub-millisecond): the version flip is
        atomic relative to admission, so in-flight jobs drain on the
        version they were admitted with.
        """
        name = body.get("name") or body.get("nf")
        source = body.get("source")
        entry = body.get("entry")
        note = body.get("note") or ""
        if not isinstance(name, str) or not name:
            return 400, protocol.error_envelope(400, "'name' is required"), None
        if not isinstance(source, str) or not source:
            return 400, protocol.error_envelope(400, "'source' is required"), None
        if entry is not None and not isinstance(entry, str):
            return 400, protocol.error_envelope(400, f"bad entry: {entry!r}"), None
        mv, updated = self.models.load(name, source, entry, note=str(note))
        if updated:
            self.registry.counter("serve.reloads").inc()
            self.registry.gauge(
                labeled("serve.model_version", nf=name)
            ).set(mv.version)
            obs_log.log_event(
                self._log, logging.INFO, "serve.reload",
                f"reload {name} -> v{mv.version}",
                nf=name, version=mv.version, model_key=mv.model_key,
            )
        return 200, protocol.ok_envelope(
            {
                "name": name,
                "version": mv.version,
                "updated": updated,
                "model_key": mv.model_key,
                "fingerprint": mv.fingerprint,
            }
        ), None

    # -- cluster CAS exchange ------------------------------------------------

    def _cas(
        self, request: protocol.HttpRequest, path: str
    ) -> Tuple[int, Any, Optional[Dict[str, str]]]:
        """``GET/PUT /cas/<kind>/<key>`` — raw framed artifact exchange.

        GET streams the on-disk framed bytes **unverified** (one read,
        no decompress); the fetching peer runs the checksum, so damage
        anywhere on the path is its logged miss, not our crash.  PUT is
        the inverse: the body is verified *here* before it is stored.
        """
        from repro.serve.peers import valid_cas_path

        parts = path.split("/")  # ['', 'cas', kind, key]
        if len(parts) != 4 or not valid_cas_path(parts[2], parts[3]):
            return 404, protocol.error_envelope(
                404, f"bad CAS path {path!r} (want /cas/<kind>/<hexkey>)"
            ), None
        kind, key = parts[2], parts[3]
        if request.method == "GET":
            raw = self.cas_store().get_raw(kind, key)
            if raw is None:
                self.registry.counter("serve.cas.misses").inc()
                return 404, protocol.error_envelope(
                    404, f"no {kind}/{key} on this shard"
                ), None
            self.registry.counter("serve.cas.reads").inc()
            self.registry.counter("serve.cas.bytes_read").inc(len(raw))
            return 200, _RawBytes(raw), None
        if request.method == "PUT":
            if self.cas_store().put_raw(kind, key, request.body):
                self.registry.counter("serve.cas.writes").inc()
                return 200, protocol.ok_envelope({"stored": True}), None
            return 400, protocol.error_envelope(
                400, f"rejected {kind}/{key}: bad frame or checksum"
            ), None
        return 405, protocol.error_envelope(405, "use GET or PUT"), None

    def _registry(
        self, query: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        """``GET /registry`` — the shard's recent artifacts, for warm-up."""
        from repro.serve.peers import WARMUP_KINDS, WARMUP_LIMIT

        kinds_text = query.get("kinds", "")
        kinds = tuple(
            k for k in (part.strip() for part in kinds_text.split(",")) if k
        ) or WARMUP_KINDS
        try:
            limit = max(0, int(query.get("limit", str(WARMUP_LIMIT))))
        except ValueError:
            return 400, protocol.error_envelope(
                400, f"bad limit: {query.get('limit')!r}"
            ), None
        artifacts = self.cas_store().list_objects(kinds=kinds, limit=limit)
        return 200, protocol.ok_envelope(
            {"shard": self.shard_name, "artifacts": artifacts}
        ), None

    # -- job submission ------------------------------------------------------

    def _backoff(
        self, envelope: Dict[str, Any], headers: Dict[str, str]
    ) -> Dict[str, Any]:
        """Stamp a jittered retry hint on a 429/503 rejection."""
        import math

        retry_s = retry_after_jitter()
        headers["Retry-After"] = str(max(1, math.ceil(retry_s)))
        envelope["retry_after_s"] = round(retry_s, 3)
        return envelope

    def _timeout_for(self, body: Dict[str, Any]) -> float:
        raw = body.get("timeout_s", self.config.default_timeout_s)
        try:
            timeout = float(raw)
        except (TypeError, ValueError):
            raise protocol.ProtocolError(400, f"bad timeout_s: {raw!r}")
        if timeout <= 0:
            raise protocol.ProtocolError(400, "timeout_s must be positive")
        return min(timeout, self.config.max_timeout_s)

    async def _submit(
        self, op: str, body: Dict[str, Any],
        request: Optional[protocol.HttpRequest] = None,
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        request_id = obs_context.new_request_id()
        # Hot-swap resolution happens here, at admission on the event
        # loop: the job snapshots the registered source/version it was
        # admitted with, so a concurrent reload never changes a request
        # mid-flight (in-flight jobs drain on the old version).
        body = self.models.resolve(op, body)
        if op == "simulate" and not self.config.compile_sims:
            body = dict(body)
            body["compile"] = False
        ctx: Optional[obs_context.TraceContext] = None
        if self.config.tracing:
            # Continue the client's trace when it sent a (valid)
            # traceparent; mint a fresh one otherwise.
            parent = None
            if request is not None:
                parent = obs_context.parse_traceparent(
                    request.headers.get(obs_context.TRACEPARENT_HEADER)
                )
            ctx = (parent or obs_context.new_context()).with_request_id(request_id)
        headers = {"X-Repro-Request-Id": request_id}
        t_admit = time.monotonic()

        if self.draining:
            self.registry.counter("serve.draining_rejected").inc()
            return self._finish(
                op, 503, request_id, ctx, t_admit,
                self._backoff(
                    protocol.error_envelope(503, "server is draining"), headers
                ),
                headers, error="server is draining",
            )
        try:
            timeout_s = self._timeout_for(body)
        except protocol.ProtocolError as exc:
            return self._finish(
                op, exc.status, request_id, ctx, t_admit,
                protocol.error_envelope(exc.status, exc.message),
                headers, error=exc.message,
            )
        job = Job(
            job_id=next(self._job_ids),
            op=op,
            payload=body,
            arrival=t_admit,
            deadline=t_admit + timeout_s,
            request_id=request_id,
            ctx=ctx,
        )
        try:
            self.queue.submit(job)
        except QueueFull as exc:
            self.registry.counter("serve.rejected_queue_full").inc()
            return self._finish(
                op, 429, request_id, ctx, t_admit,
                self._backoff(protocol.error_envelope(429, str(exc)), headers),
                headers, error=str(exc),
            )
        except QueueClosed:
            self.registry.counter("serve.draining_rejected").inc()
            return self._finish(
                op, 503, request_id, ctx, t_admit,
                self._backoff(
                    protocol.error_envelope(503, "server is draining"), headers
                ),
                headers, error="server is draining",
            )
        self.registry.counter(f"serve.op.{op}").inc()
        # The dispatcher always resolves the future (worker alarm, then
        # parent backstop); the extra slack here only guards against a
        # dispatcher bug turning into a hung connection.
        outcome = await asyncio.wait_for(
            job.future, timeout_s + 2 * self.config.grace_s + 5.0
        )
        elapsed_s = time.monotonic() - job.arrival
        elapsed_ms = elapsed_s * 1000.0
        self.registry.histogram("serve.request_seconds").observe(elapsed_s)
        status = outcome.get("status", 500)
        worker_spans = outcome.pop("spans", None)
        phases = outcome.pop("phases", None) or phases_from_spans(worker_spans)
        spans = None
        if worker_spans is not None and ctx is not None:
            spans = self._stitch(job, worker_spans, outcome, elapsed_s)
        if status == 200:
            envelope = protocol.ok_envelope(
                outcome.get("result"), elapsed_ms=round(elapsed_ms, 3)
            )
        else:
            if status == 504:
                self.registry.counter("serve.deadline_exceeded").inc()
            envelope = protocol.error_envelope(
                status,
                str(outcome.get("error", "job failed")),
                where=outcome.get("where"),
            )
            envelope["elapsed_ms"] = round(elapsed_ms, 3)
            if status == 504 and phases:
                # Where the budget went before the deadline fired.
                envelope["phases_ms"] = {
                    k: round(v, 3) for k, v in phases.items()
                }
        return self._finish(
            op, status, request_id, ctx, t_admit, envelope, headers,
            where=outcome.get("where"), spans=spans, phases=phases,
            error="" if status == 200 else str(outcome.get("error", ""))[:200],
        )

    def _finish(
        self,
        op: str,
        status: int,
        request_id: str,
        ctx: Optional[obs_context.TraceContext],
        t_admit: float,
        envelope: Dict[str, Any],
        headers: Dict[str, str],
        *,
        where: Optional[str] = None,
        spans: Optional[List[Dict[str, Any]]] = None,
        phases: Optional[Dict[str, float]] = None,
        error: str = "",
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        """Every request's exit ramp: histogram, flight record, access log.

        Early rejections (429/503/bad timeout) come through here too, so
        the flight recorder sees *every* admission decision, not just
        jobs that reached a worker.
        """
        elapsed_ms = (time.monotonic() - t_admit) * 1000.0
        trace_id = ctx.trace_id if ctx is not None else ""
        self.registry.histogram(
            labeled("serve.endpoint_seconds", endpoint=op, status=status)
        ).observe(elapsed_ms / 1000.0)
        if spans:
            self.registry.counter("serve.traced_requests").inc()
        self.recorder.record(
            RequestRecord(
                request_id=request_id,
                trace_id=trace_id,
                op=op,
                status=status,
                where=where,
                elapsed_ms=elapsed_ms,
                phases=dict(phases or {}),
                error=error,
                spans=spans,
            )
        )
        envelope["request_id"] = request_id
        if trace_id:
            envelope["trace_id"] = trace_id
        fields: Dict[str, Any] = {
            "op": op,
            "status": status,
            "elapsed_ms": round(elapsed_ms, 3),
            "request_id": request_id,
        }
        if trace_id:
            fields["trace_id"] = trace_id
        if where:
            fields["where"] = where
        obs_log.log_event(
            self._log,
            logging.INFO if status < 500 else logging.ERROR,
            "serve.request",
            f"{op} -> {status} in {elapsed_ms:.1f}ms",
            **fields,
        )
        return status, envelope, headers

    def _stitch(
        self,
        job: Job,
        worker_spans: List[Dict[str, Any]],
        outcome: Dict[str, Any],
        elapsed_s: float,
    ) -> List[Dict[str, Any]]:
        """One request tree: request root → queue.wait / worker → pipeline.

        Three synthetic server-side spans (ids 1–3) frame the request on
        the server's timeline; the worker's span batch is appended with
        ids shifted past them and ``start`` rebased from the worker's
        clock onto seconds-since-admission (worker t0 ≈ dispatch time,
        so the rebase offset is the queue wait).
        """
        dispatched = job.dispatched if job.dispatched is not None else job.arrival
        queue_wait = max(0.0, dispatched - job.arrival)
        worker_elapsed = float(outcome.get("elapsed_s") or 0.0)
        spans: List[Dict[str, Any]] = [
            {
                "span": 1, "parent": None, "name": f"request.{job.op}",
                "start": 0.0, "dur": round(elapsed_s, 9),
                "attrs": {"op": job.op, "request_id": job.request_id},
            },
            {
                "span": 2, "parent": 1, "name": "queue.wait",
                "start": 0.0, "dur": round(queue_wait, 9), "attrs": {},
            },
            {
                "span": 3, "parent": 1, "name": "worker",
                "start": round(queue_wait, 9), "dur": round(worker_elapsed, 9),
                "attrs": {},
            },
        ]
        for s in worker_spans:
            parent = s.get("parent")
            spans.append(
                {
                    "span": int(s.get("span", 0)) + 3,
                    "parent": int(parent) + 3 if parent is not None else 3,
                    "name": s.get("name", "?"),
                    "start": round(queue_wait + float(s.get("start", 0.0)), 9),
                    "dur": s.get("dur", 0.0),
                    "attrs": s.get("attrs") or {},
                }
            )
        return spans

    # -- dispatchers ---------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._loop is not None
        while True:
            job = await self.queue.get()
            if job is None:
                return
            try:
                outcome = await self._run_job(job)
                metrics = outcome.pop("metrics", None)
                if metrics:
                    self.registry.merge(metrics)
                if not job.future.done():
                    job.future.set_result(outcome)
            except Exception as exc:  # dispatcher must never die
                if not job.future.done():
                    job.future.set_result(
                        {"status": 500, "error": f"dispatch failed: {exc!r}"}
                    )
            finally:
                self.queue.task_done()

    async def _run_job(self, job: Job) -> Dict[str, Any]:
        remaining = job.remaining()
        if remaining is not None and remaining <= 0:
            # Died waiting in the queue; never reached a worker.
            return {
                "status": 504,
                "error": "deadline exceeded while queued",
                "where": "queue",
            }
        assert self._pool is not None and self._loop is not None
        trace = job.ctx.to_dict() if job.ctx is not None else None
        # Absolute deadline (CLOCK_MONOTONIC is system-wide, so the
        # forked worker can read it): the worker arms its alarm for the
        # time actually left, so a job that starts late under CPU
        # pressure still cancels in-worker instead of handing the 504
        # to the parent backstop.
        deadline = None if remaining is None else time.monotonic() + remaining
        fut = self._loop.run_in_executor(
            self._pool, run_job, (job.op, job.payload, remaining, trace, deadline)
        )
        backstop = None if remaining is None else remaining + self.config.grace_s
        try:
            return await asyncio.wait_for(fut, backstop)
        except asyncio.TimeoutError:
            # The worker alarm failed to fire (non-POSIX / blocked in C
            # code); abandon the future and surrender the worker slot.
            self._abandoned += 1
            self.registry.counter("serve.abandoned_jobs").inc()
            return {
                "status": 504,
                "error": "deadline exceeded (worker did not cancel in time)",
                "where": "parent",
            }


class _RawText:
    """A non-JSON response body (the Prometheus exposition)."""

    __slots__ = ("text", "content_type")

    def __init__(
        self, text: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        self.text = text
        self.content_type = content_type


class _RawBytes:
    """A binary response body (framed CAS blobs on ``GET /cas/...``)."""

    __slots__ = ("body", "content_type")

    def __init__(
        self, body: bytes, content_type: str = "application/octet-stream"
    ) -> None:
        self.body = body
        self.content_type = content_type


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_server(config: Optional[ServeConfig] = None, *, ready=None) -> int:
    """Blocking entry point (the ``repro serve`` CLI): run until drained."""
    obs_log.configure()
    log = obs_log.get_logger("repro.serve")

    async def main() -> None:
        server = Server(config)
        await server.start()
        server.install_signal_handlers()
        obs_log.log_event(
            log, logging.INFO, "serve.start",
            f"listening on {server.config.host}:{server.port} "
            f"({server.config.effective_workers()} workers, "
            f"queue {server.config.queue_size})",
            host=server.config.host,
            port=server.port,
            workers=server.config.effective_workers(),
            queue_size=server.config.queue_size,
            tracing=server.config.tracing,
        )
        if ready is not None:
            ready(server)
        await server.serve_forever()
        obs_log.log_event(log, logging.INFO, "serve.drained", "drained, bye")

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


class ServerHandle:
    """A server running on a background thread (tests, benchmarks).

    ::

        handle = ServerHandle(ServeConfig(port=0, workers=2))
        handle.start()
        ...ServeClient("127.0.0.1", handle.port)...
        handle.stop()
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig(port=0)
        self.server: Optional[Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    @property
    def registry(self) -> MetricsRegistry:
        assert self.server is not None
        return self.server.registry

    def prepare(self) -> "ServerHandle":
        """Fork the worker pool before any listener binds.

        Optional for a lone server (``start()`` forks before its own
        bind anyway); required across shards sharing a process — see
        :meth:`Server.prepare_pool`.
        """
        if self.server is None:
            self.server = Server(self.config)
        self.server.prepare_pool()
        return self

    def start(self, timeout: float = 30.0) -> "ServerHandle":
        def runner() -> None:
            async def main() -> None:
                if self.server is None:
                    self.server = Server(self.config)
                await self.server.start()
                self._loop = asyncio.get_running_loop()
                self._ready.set()
                await self.server.serve_forever()

            try:
                asyncio.run(main())
            except BaseException as exc:  # surface startup failures
                self._error = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error!r}")
        return self

    def drain(self) -> None:
        """Trigger graceful drain from any thread (what SIGTERM does)."""
        assert self.server is not None and self._loop is not None
        self._loop.call_soon_threadsafe(self.server.request_drain)

    def stop(self, timeout: float = 60.0) -> None:
        """Drain and join the server thread."""
        if self._thread is None:
            # prepare()d but never started: only the pool exists.
            if self.server is not None and self.server._pool is not None:
                self.server._pool.shutdown(wait=False, cancel_futures=True)
            return
        if self.server is not None and self._loop is not None:
            try:
                self.drain()
            except RuntimeError:
                pass
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not stop in time")

    def kill(self, timeout: float = 10.0) -> None:
        """Stop abruptly — no drain, in-flight work abandoned.

        The failover tests' stand-in for a crashed shard: the listener
        closes, every task is cancelled, the pool is torn down.  Clients
        see connection resets, exactly like ``kill -9``.

        Worker processes are killed outright, not just asked to exit:
        forked workers inherit a copy of the listening socket, and as
        long as any process holds that FD the kernel keeps accepting
        connections into a backlog nobody drains — new connects would
        hang instead of being refused, and the router could not fail
        over promptly.
        """
        if self._thread is None or not self._thread.is_alive():
            return
        server, loop = self.server, self._loop

        def slam() -> None:
            assert server is not None
            server.draining = True
            if server._server is not None:
                server._server.close()
            for task in asyncio.all_tasks():
                task.cancel()
            if server._stopped is not None:
                server._stopped.set()

        if loop is not None:
            try:
                loop.call_soon_threadsafe(slam)
            except RuntimeError:
                pass
        if server is not None and server._pool is not None:
            pool = server._pool
            workers = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in workers:
                try:
                    proc.kill()
                except (OSError, ValueError):
                    pass
            for proc in workers:
                proc.join(timeout)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
