"""The asyncio synthesis & model-query server (``repro serve``).

Request path::

    client ──HTTP──▶ connection handler (event loop)
                        │  admission: BoundedRequestQueue.submit
                        │    full    → 429 immediately (backpressure)
                        │    draining→ 503
                        ▼
                     dispatcher task (one per pool worker)
                        │  expired in queue → 504 without running
                        ▼
                     ProcessPoolExecutor worker
                        │  repro.serve.jobs.run_job under SIGALRM
                        ▼
                     response + metrics snapshot → folded into the
                     server registry → envelope back over the wire

The event loop only ever parses bytes and shuffles futures — all
CPU-bound synthesis happens in worker processes, and a background
**loop-lag probe** records how true that is
(``serve.loop_lag_seconds``; the bench asserts max lag < 100 ms).

Graceful drain (SIGTERM/SIGINT or :meth:`Server.request_drain`): stop
accepting connections, reject new requests on kept-alive connections
with 503, finish every admitted job, flush the persistent constraint
cache, shut the pool down, exit.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.obs import MetricsRegistry, render_prometheus
from repro.serve import protocol
from repro.serve.jobs import OPS, run_job
from repro.serve.queue import BoundedRequestQueue, Job, QueueClosed, QueueFull


def _version() -> str:
    import repro

    return repro.__version__


def _worker_warmup() -> None:
    """Pool initializer: pre-import the pipeline in each worker.

    The first job in a fresh worker otherwise pays ~100 ms of lazy
    imports — visible as a p95 outlier on an otherwise ~2 ms warm
    ``synthesize``.  Runs once per worker process at pool start.
    """
    import repro.apps.testing  # noqa: F401
    import repro.apps.verify  # noqa: F401
    import repro.equiv.differential  # noqa: F401
    import repro.nfactor.algorithm  # noqa: F401
    import repro.parallel  # noqa: F401


@dataclass
class ServeConfig:
    """Server tunables (the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 8000
    #: Worker processes; 0 = one per CPU.
    workers: int = 0
    #: Bounded queue capacity — pending requests beyond the in-flight
    #: ones; the explicit backpressure limit.
    queue_size: int = 64
    #: Default per-request deadline when the client sends none.
    default_timeout_s: float = 60.0
    #: Upper bound on client-requested deadlines.
    max_timeout_s: float = 600.0
    #: How long drain waits for in-flight work before giving up.
    drain_timeout_s: float = 60.0
    #: Parent-side backstop beyond the worker's own alarm.
    grace_s: float = 2.0
    #: Event-loop lag probe period (0 disables the probe).
    lag_probe_interval_s: float = 0.05

    def effective_workers(self) -> int:
        return self.workers if self.workers > 0 else (os.cpu_count() or 1)


class Server:
    """One serving instance: listener + queue + dispatchers + pool."""

    def __init__(
        self, config: Optional[ServeConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry or MetricsRegistry()
        self.queue = BoundedRequestQueue(
            self.config.queue_size, registry=self.registry
        )
        self.draining = False
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._dispatchers: list = []
        self._lag_task: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Event] = None
        self._drain_task: Optional[asyncio.Task] = None
        self._started_at = time.monotonic()
        self._job_ids = iter(range(1, 1 << 62))
        self._abandoned = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind, spin up the pool, dispatchers and the lag probe."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        workers = self.config.effective_workers()
        self._pool = ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_warmup
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._dispatchers = [
            self._loop.create_task(self._dispatch_loop()) for _ in range(workers)
        ]
        if self.config.lag_probe_interval_s > 0:
            self._lag_task = self._loop.create_task(self._lag_probe())
        self.registry.gauge("serve.workers").set(workers)

    def install_signal_handlers(self) -> bool:
        """SIGTERM/SIGINT → graceful drain.  Best effort (main thread only)."""
        assert self._loop is not None
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self.request_drain)
            return True
        except (NotImplementedError, RuntimeError, ValueError):
            return False

    async def serve_forever(self) -> None:
        """Until a drain completes."""
        assert self._stopped is not None
        await self._stopped.wait()

    def request_drain(self) -> None:
        """Begin graceful drain (idempotent; safe from signal handlers)."""
        if self._loop is None or self._drain_task is not None:
            return
        self._drain_task = self._loop.create_task(self.drain())

    async def drain(self) -> None:
        """Stop accepting, finish in-flight, flush caches, stop."""
        if self.draining:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self.draining = True
        self.registry.counter("serve.drains").inc()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.queue.close()
        drained = await self.queue.join(self.config.drain_timeout_s)
        if not drained:
            self.registry.counter("serve.drain_timeouts").inc()
        await asyncio.gather(*self._dispatchers, return_exceptions=True)
        if self._lag_task is not None:
            self._lag_task.cancel()
        if self._pool is not None:
            # Abandoned jobs may still occupy a worker whose alarm could
            # not fire; don't hang shutdown on them.
            self._pool.shutdown(wait=self._abandoned == 0, cancel_futures=True)
        from repro.symbolic.solver import global_cache

        global_cache().flush()
        if self._stopped is not None:
            self._stopped.set()

    # -- event-loop health ---------------------------------------------------

    async def _lag_probe(self) -> None:
        """Measure event-loop scheduling lag (blocked-loop detector)."""
        interval = self.config.lag_probe_interval_s
        hist = self.registry.histogram("serve.loop_lag_seconds")
        gauge = self.registry.gauge("serve.loop_lag_max_seconds")
        max_lag = 0.0
        assert self._loop is not None
        while True:
            t0 = self._loop.time()
            await asyncio.sleep(interval)
            lag = max(0.0, self._loop.time() - t0 - interval)
            hist.observe(lag)
            if lag > max_lag:
                max_lag = lag
                gauge.set(max_lag)

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await protocol.read_request(reader)
                except protocol.ProtocolError as exc:
                    writer.write(
                        protocol.json_response(
                            exc.status,
                            protocol.error_envelope(exc.status, exc.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                status, envelope, headers = await self._route(request)
                keep_alive = request.keep_alive and not self.draining
                if isinstance(envelope, _RawText):
                    payload = protocol.render_response(
                        status,
                        envelope.text.encode("utf-8"),
                        content_type=envelope.content_type,
                        keep_alive=keep_alive,
                        extra_headers=headers,
                    )
                else:
                    payload = protocol.json_response(
                        status, envelope, keep_alive=keep_alive,
                        extra_headers=headers,
                    )
                writer.write(payload)
                await writer.drain()
                self.registry.counter(f"serve.status.{status}").inc()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            # No wait_closed(): at loop shutdown the handler task may
            # already be cancelled, and close() alone is sufficient.
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, request: protocol.HttpRequest
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        self.registry.counter("serve.requests_total").inc()
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            if request.method != "GET":
                return 405, protocol.error_envelope(405, "use GET"), None
            return 200, protocol.ok_envelope(self._health()), None
        if path == "/metrics":
            if request.method != "GET":
                return 405, protocol.error_envelope(405, "use GET"), None
            snapshot = self.registry.snapshot()
            if request.query.get("format") == "json":
                return 200, protocol.ok_envelope(snapshot), None
            return 200, _RawText(render_prometheus(snapshot)), None
        if path.startswith("/v1/"):
            op = path[len("/v1/"):]
            if op not in OPS:
                return 404, protocol.error_envelope(
                    404, f"unknown endpoint {path!r}"
                ), None
            if request.method != "POST":
                return 405, protocol.error_envelope(405, "use POST"), None
            try:
                body = request.json()
            except protocol.ProtocolError as exc:
                return exc.status, protocol.error_envelope(
                    exc.status, exc.message
                ), None
            return await self._submit(op, body)
        return 404, protocol.error_envelope(404, f"unknown path {path!r}"), None

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.draining else "ok",
            "version": _version(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": self.config.effective_workers(),
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.maxsize,
            "inflight": self.queue.inflight,
        }

    # -- job submission ------------------------------------------------------

    def _timeout_for(self, body: Dict[str, Any]) -> float:
        raw = body.get("timeout_s", self.config.default_timeout_s)
        try:
            timeout = float(raw)
        except (TypeError, ValueError):
            raise protocol.ProtocolError(400, f"bad timeout_s: {raw!r}")
        if timeout <= 0:
            raise protocol.ProtocolError(400, "timeout_s must be positive")
        return min(timeout, self.config.max_timeout_s)

    async def _submit(
        self, op: str, body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        if self.draining:
            self.registry.counter("serve.draining_rejected").inc()
            return 503, protocol.error_envelope(
                503, "server is draining"
            ), {"Retry-After": "1"}
        try:
            timeout_s = self._timeout_for(body)
        except protocol.ProtocolError as exc:
            return exc.status, protocol.error_envelope(exc.status, exc.message), None
        now = time.monotonic()
        job = Job(
            job_id=next(self._job_ids),
            op=op,
            payload=body,
            arrival=now,
            deadline=now + timeout_s,
        )
        try:
            self.queue.submit(job)
        except QueueFull as exc:
            self.registry.counter("serve.rejected_queue_full").inc()
            return 429, protocol.error_envelope(429, str(exc)), {"Retry-After": "1"}
        except QueueClosed:
            self.registry.counter("serve.draining_rejected").inc()
            return 503, protocol.error_envelope(
                503, "server is draining"
            ), {"Retry-After": "1"}
        self.registry.counter(f"serve.op.{op}").inc()
        # The dispatcher always resolves the future (worker alarm, then
        # parent backstop); the extra slack here only guards against a
        # dispatcher bug turning into a hung connection.
        outcome = await asyncio.wait_for(
            job.future, timeout_s + 2 * self.config.grace_s + 5.0
        )
        elapsed_ms = (time.monotonic() - job.arrival) * 1000.0
        self.registry.histogram("serve.request_seconds").observe(
            elapsed_ms / 1000.0
        )
        status = outcome.get("status", 500)
        if status == 200:
            envelope = protocol.ok_envelope(
                outcome.get("result"), elapsed_ms=round(elapsed_ms, 3)
            )
        else:
            if status == 504:
                self.registry.counter("serve.deadline_exceeded").inc()
            envelope = protocol.error_envelope(
                status,
                str(outcome.get("error", "job failed")),
                where=outcome.get("where"),
            )
            envelope["elapsed_ms"] = round(elapsed_ms, 3)
        return status, envelope, None

    # -- dispatchers ---------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._loop is not None
        while True:
            job = await self.queue.get()
            if job is None:
                return
            try:
                outcome = await self._run_job(job)
                metrics = outcome.pop("metrics", None)
                if metrics:
                    self.registry.merge(metrics)
                if not job.future.done():
                    job.future.set_result(outcome)
            except Exception as exc:  # dispatcher must never die
                if not job.future.done():
                    job.future.set_result(
                        {"status": 500, "error": f"dispatch failed: {exc!r}"}
                    )
            finally:
                self.queue.task_done()

    async def _run_job(self, job: Job) -> Dict[str, Any]:
        remaining = job.remaining()
        if remaining is not None and remaining <= 0:
            # Died waiting in the queue; never reached a worker.
            return {
                "status": 504,
                "error": "deadline exceeded while queued",
                "where": "queue",
            }
        assert self._pool is not None and self._loop is not None
        fut = self._loop.run_in_executor(
            self._pool, run_job, (job.op, job.payload, remaining)
        )
        backstop = None if remaining is None else remaining + self.config.grace_s
        try:
            return await asyncio.wait_for(fut, backstop)
        except asyncio.TimeoutError:
            # The worker alarm failed to fire (non-POSIX / blocked in C
            # code); abandon the future and surrender the worker slot.
            self._abandoned += 1
            self.registry.counter("serve.abandoned_jobs").inc()
            return {
                "status": 504,
                "error": "deadline exceeded (worker did not cancel in time)",
                "where": "parent",
            }


class _RawText:
    """A non-JSON response body (the Prometheus exposition)."""

    __slots__ = ("text", "content_type")

    def __init__(
        self, text: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        self.text = text
        self.content_type = content_type


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_server(config: Optional[ServeConfig] = None, *, ready=None) -> int:
    """Blocking entry point (the ``repro serve`` CLI): run until drained."""

    async def main() -> None:
        server = Server(config)
        await server.start()
        server.install_signal_handlers()
        print(
            f"repro serve: listening on {server.config.host}:{server.port} "
            f"({server.config.effective_workers()} workers, "
            f"queue {server.config.queue_size})",
            flush=True,
        )
        if ready is not None:
            ready(server)
        await server.serve_forever()
        print("repro serve: drained, bye", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


class ServerHandle:
    """A server running on a background thread (tests, benchmarks).

    ::

        handle = ServerHandle(ServeConfig(port=0, workers=2))
        handle.start()
        ...ServeClient("127.0.0.1", handle.port)...
        handle.stop()
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig(port=0)
        self.server: Optional[Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    @property
    def registry(self) -> MetricsRegistry:
        assert self.server is not None
        return self.server.registry

    def start(self, timeout: float = 30.0) -> "ServerHandle":
        def runner() -> None:
            async def main() -> None:
                self.server = Server(self.config)
                await self.server.start()
                self._loop = asyncio.get_running_loop()
                self._ready.set()
                await self.server.serve_forever()

            try:
                asyncio.run(main())
            except BaseException as exc:  # surface startup failures
                self._error = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=runner, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self._error is not None:
            raise RuntimeError(f"server failed to start: {self._error!r}")
        return self

    def drain(self) -> None:
        """Trigger graceful drain from any thread (what SIGTERM does)."""
        assert self.server is not None and self._loop is not None
        self._loop.call_soon_threadsafe(self.server.request_drain)

    def stop(self, timeout: float = 60.0) -> None:
        """Drain and join the server thread."""
        if self._thread is None:
            return
        if self.server is not None and self._loop is not None:
            try:
                self.drain()
            except RuntimeError:
                pass
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server thread did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
