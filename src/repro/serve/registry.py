"""Versioned model registry — the hot-swap half of ``repro watch``.

One per :class:`repro.serve.server.Server`.  ``POST /v1/reload``
registers a (name, source, entry) target here; from then on any
``{"nf": name}`` request body is rewritten *at admission* — on the
single-threaded event loop, before the job enters the queue — to carry
the registered source and version.  The flip is therefore atomic per
request: a job admitted before a reload keeps the body (and version) it
was admitted with and drains naturally on the old model, a job admitted
after carries the new one, and no request can observe a half-applied
swap.  Workers stay stateless: they synthesize whatever source the body
names, served from the artifact cache the watch daemon peer-filled
before asking for the flip.

Registered names shadow the static corpus (``repro.nfs``) for resolved
ops; unknown names still fall through to the worker-side corpus lookup.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro import cache as artifact_cache

#: Ops whose bodies name a synthesis target the registry may rewrite.
RESOLVED_OPS = frozenset({"synthesize", "simulate", "testgen"})


@dataclass(frozen=True)
class ModelVersion:
    """One registered (immutable) version of one target."""

    name: str
    version: int
    source: str
    entry: Optional[str]
    #: Model-tier key the default config derives for this source — what
    #: the watch daemon peer-fills, and what operators compare across
    #: shards to confirm a swap landed everywhere.
    model_key: str
    #: Fingerprint of the frontend key material (function-level units).
    fingerprint: str
    loaded_at: float
    note: str = ""

    def summary(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "entry": self.entry,
            "model_key": self.model_key,
            "fingerprint": self.fingerprint,
            "loaded_at": round(self.loaded_at, 3),
            "note": self.note,
        }


class ModelRegistry:
    """Thread-safe name → version history map with atomic current-flips."""

    def __init__(self, history: int = 8) -> None:
        self._lock = threading.Lock()
        self._history = max(1, history)
        self._targets: Dict[str, List[ModelVersion]] = {}

    def load(
        self,
        name: str,
        source: str,
        entry: Optional[str] = None,
        note: str = "",
    ) -> Tuple[ModelVersion, bool]:
        """Register a version; returns ``(version, updated)``.

        Re-registering the current source verbatim is idempotent — the
        existing version is returned and nothing flips — so a restarted
        watch daemon's baseline push never churns version numbers.
        """
        from repro.nfactor.algorithm import NFactorConfig, _model_key

        material = artifact_cache.frontend_key_material(source, name, entry)
        fingerprint = artifact_cache.stable_fingerprint(material)
        with self._lock:
            versions = self._targets.setdefault(name, [])
            if versions and versions[-1].fingerprint == fingerprint:
                return versions[-1], False
            mv = ModelVersion(
                name=name,
                version=versions[-1].version + 1 if versions else 1,
                source=source,
                entry=entry,
                model_key=_model_key(source, name, entry, NFactorConfig()),
                fingerprint=fingerprint,
                loaded_at=time.time(),
                note=note,
            )
            versions.append(mv)
            del versions[: -self._history]
            return mv, True

    def current(self, name: str) -> Optional[ModelVersion]:
        with self._lock:
            versions = self._targets.get(name)
            return versions[-1] if versions else None

    def resolve(self, op: str, body: Dict[str, Any]) -> Dict[str, Any]:
        """Rewrite a ``{"nf": name}`` body to the registered source.

        Bodies carrying explicit ``source`` and ops without a synthesis
        target pass through untouched.  The returned body is always a
        fresh dict when rewritten (the caller may have aliased it).
        """
        if op not in RESOLVED_OPS or body.get("source") is not None:
            return body
        target = body.get("nf")
        if not isinstance(target, str):
            return body
        mv = self.current(target)
        if mv is None:
            return body
        body = dict(body)
        body.pop("nf", None)
        body["source"] = mv.source
        body["name"] = target
        body["entry"] = mv.entry
        body["model_version"] = mv.version
        return body

    def versions(self) -> Dict[str, Dict[str, Any]]:
        """Current version summaries by name (the ``/healthz`` view)."""
        with self._lock:
            return {
                name: versions[-1].summary()
                for name, versions in self._targets.items()
                if versions
            }

    def history(self, name: str) -> List[Dict[str, Any]]:
        with self._lock:
            return [mv.summary() for mv in self._targets.get(name, [])]
