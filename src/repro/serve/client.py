"""Blocking client library for :mod:`repro.serve`.

Used by the ``repro query`` CLI subcommand, the lifecycle tests and
``benchmarks/bench_serve.py``.  Connections are **kept alive and
reused** across sequential requests — per *thread*, so N loadgen
threads can still share one :class:`ServeClient` (each gets its own
socket).  A request that trips over a stale socket (server idled it
out, draining server closed it) transparently reconnects and retries
once; every op is a deterministic cached computation, so the retry can
never double-run side effects.

>>> client = ServeClient("127.0.0.1", 8000)          # doctest: +SKIP
>>> client.synthesize("nat").result["name"]          # doctest: +SKIP
'nat'
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import context as obs_context
from repro.serve.protocol import parse_client_response


class ServeError(Exception):
    """A transport-level failure (connection refused, timeout, ...)."""


@dataclass
class ServeResponse:
    """One decoded response envelope plus its HTTP status."""

    status: int
    ok: bool
    payload: Dict[str, Any] = field(default_factory=dict)
    #: Server-minted request id (``X-Repro-Request-Id`` / envelope).
    request_id: Optional[str] = None
    #: The distributed trace id this request ran under (the one the
    #: client sent, echoed back in the envelope when tracing is on).
    trace_id: Optional[str] = None
    #: Which shard served this request (``X-Repro-Shard``, stamped by
    #: the cluster router; None when talking to a shard directly).
    shard: Optional[str] = None

    @property
    def result(self) -> Any:
        return self.payload.get("result")

    @property
    def error_code(self) -> Optional[str]:
        error = self.payload.get("error") or {}
        return error.get("code")

    @property
    def error_message(self) -> Optional[str]:
        error = self.payload.get("error") or {}
        return error.get("message")

    @property
    def elapsed_ms(self) -> Optional[float]:
        return self.payload.get("elapsed_ms")

    @property
    def retry_after_s(self) -> Optional[float]:
        """The jittered backoff hint on 429/503 rejections."""
        return self.payload.get("retry_after_s")

    def raise_for_status(self) -> "ServeResponse":
        if not self.ok:
            raise ServeError(
                f"HTTP {self.status} [{self.error_code}]: {self.error_message}"
            )
        return self


class ServeClient:
    """A minimal JSON-over-HTTP client for the serve endpoints.

    Every request carries a W3C ``traceparent`` header (unless
    ``tracing=False``): a child of the ambient
    :class:`repro.obs.context.TraceContext` when one is bound — so a
    traced caller's requests join its trace — else a fresh root
    context.  The server echoes the trace/request ids back in the
    envelope (:attr:`ServeResponse.trace_id` /
    :attr:`ServeResponse.request_id`), which is all ``repro trace show``
    needs to pull the stitched span tree from ``/debugz``.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8000,
        timeout: float = 120.0, tracing: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.tracing = tracing
        self._local = threading.local()

    # -- transport -----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        """This thread's kept-alive connection (created on first use)."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            try:
                conn.close()
            except (OSError, http.client.HTTPException):
                pass

    def close(self) -> None:
        """Close the calling thread's kept-alive connection (idempotent)."""
        self._drop_connection()

    def request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None,
        ctx: Optional[obs_context.TraceContext] = None,
    ) -> ServeResponse:
        if ctx is None and self.tracing:
            ambient = obs_context.current()
            ctx = ambient.child() if ambient is not None else obs_context.new_context()
        payload = None
        headers: Dict[str, str] = {}
        if ctx is not None:
            headers[obs_context.TRACEPARENT_HEADER] = ctx.traceparent()
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # Attempt 0 rides the kept-alive socket; if that socket went
        # stale (idled out, server drained), reconnect and retry once on
        # a fresh one.  Deterministic idempotent ops make this safe.
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                status = response.status
                request_id = response.getheader("X-Repro-Request-Id")
                shard = response.getheader("X-Repro-Shard")
                if response.will_close:
                    self._drop_connection()
                break
            except (OSError, http.client.HTTPException) as exc:
                self._drop_connection()
                if attempt == 1:
                    raise ServeError(f"{method} {path} failed: {exc}") from exc
        ok, decoded = parse_client_response(status, raw)
        return ServeResponse(
            status=status,
            ok=ok and status == 200,
            payload=decoded,
            request_id=decoded.get("request_id") or request_id,
            trace_id=decoded.get("trace_id")
            or (ctx.trace_id if ctx is not None else None),
            shard=shard,
        )

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> ServeResponse:
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """The metrics snapshot (counters/gauges/histograms dicts)."""
        response = self.request("GET", "/metrics?format=json").raise_for_status()
        return response.result or {}

    def metrics_text(self) -> str:
        """The Prometheus text exposition."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            if response.status != 200:
                raise ServeError(f"GET /metrics -> HTTP {response.status}")
            return response.read().decode("utf-8")
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(f"GET /metrics failed: {exc}") from exc
        finally:
            conn.close()

    def debugz(
        self,
        kind: str = "requests",
        n: Optional[int] = None,
        request_id: Optional[str] = None,
    ) -> ServeResponse:
        """One flight-recorder view (``requests`` / ``slow`` / ``errors``).

        With ``request_id``, returns that request's detail — summary
        plus the stitched span tree — regardless of ``kind``.
        """
        params = []
        if request_id:
            params.append(f"id={request_id}")
        if n is not None:
            params.append(f"n={n}")
        path = f"/debugz/{kind}" + ("?" + "&".join(params) if params else "")
        return self.request("GET", path)

    def trace_detail(self, request_id: str) -> Dict[str, Any]:
        """The stitched record for one request id (raises if evicted)."""
        return self.debugz(request_id=request_id).raise_for_status().result or {}

    def _op(self, op: str, body: Dict[str, Any]) -> ServeResponse:
        return self.request("POST", f"/v1/{op}", body)

    def synthesize(
        self,
        nf: Optional[str] = None,
        source: Optional[str] = None,
        name: Optional[str] = None,
        entry: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> ServeResponse:
        body: Dict[str, Any] = {}
        if nf is not None:
            body["nf"] = nf
        if source is not None:
            body["source"] = source
        if name is not None:
            body["name"] = name
        if entry is not None:
            body["entry"] = entry
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._op("synthesize", body)

    def simulate(
        self,
        nf: Optional[str] = None,
        packets: Optional[List[Dict[str, int]]] = None,
        source: Optional[str] = None,
        name: Optional[str] = None,
        entry: Optional[str] = None,
        timeout_s: Optional[float] = None,
        compile: Optional[bool] = None,
    ) -> ServeResponse:
        body: Dict[str, Any] = {"packets": packets or []}
        if compile is not None:
            body["compile"] = compile
        if nf is not None:
            body["nf"] = nf
        if source is not None:
            body["source"] = source
        if name is not None:
            body["name"] = name
        if entry is not None:
            body["entry"] = entry
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._op("simulate", body)

    def verify(
        self, chain: List[str], timeout_s: Optional[float] = None
    ) -> ServeResponse:
        body: Dict[str, Any] = {"chain": chain}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._op("verify", body)

    def verify_graph(
        self,
        nodes: Optional[List[Tuple[str, str]]] = None,
        edges: Optional[List[Tuple[str, str]]] = None,
        generate: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> ServeResponse:
        """Verify a DAG service graph (``POST /v1/verify_graph``).

        Either pass ``nodes`` ([(name, corpus_nf), ...]) + ``edges``
        ([(src, dst), ...]), or ``generate`` ({"n": ..., "seed": ...})
        for a seeded topology built server-side.
        """
        body: Dict[str, Any] = {}
        if nodes is not None:
            body["nodes"] = [list(pair) for pair in nodes]
            body["edges"] = [list(pair) for pair in edges or []]
        if generate is not None:
            body["generate"] = generate
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._op("verify_graph", body)

    def compose(
        self,
        chain_a: List[str],
        chain_b: List[str],
        timeout_s: Optional[float] = None,
    ) -> ServeResponse:
        body: Dict[str, Any] = {"chain_a": chain_a, "chain_b": chain_b}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._op("compose", body)

    def testgen(
        self, nf: str, timeout_s: Optional[float] = None
    ) -> ServeResponse:
        body: Dict[str, Any] = {"nf": nf}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._op("testgen", body)

    def reload(
        self,
        name: str,
        source: str,
        entry: Optional[str] = None,
        note: Optional[str] = None,
    ) -> ServeResponse:
        """Hot-swap ``name`` to ``source`` (``POST /v1/reload``).

        The result carries the registered version number and model key;
        ``updated`` is False when the source was already current.
        """
        body: Dict[str, Any] = {"name": name, "source": source}
        if entry is not None:
            body["entry"] = entry
        if note is not None:
            body["note"] = note
        return self.request("POST", "/v1/reload", body)

    def models(self) -> Dict[str, Any]:
        """The shard's loaded model-registry versions (from ``/healthz``).

        ``{name: {"version": ..., "model_key": ..., ...}}`` — comparing
        this across shards confirms a hot-swap landed everywhere.
        """
        response = self.healthz().raise_for_status()
        return (response.result or {}).get("models", {})

    # -- convenience ---------------------------------------------------------

    def wait_until_up(self, timeout: float = 30.0, interval: float = 0.1) -> bool:
        """Poll ``/healthz`` until the server answers (startup races)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if self.healthz().status == 200:
                    return True
            except ServeError:
                pass
            time.sleep(interval)
        return False
