"""Blocking client library for :mod:`repro.serve`.

Used by the ``repro query`` CLI subcommand, the lifecycle tests and
``benchmarks/bench_serve.py``.  Thread-safe by construction: every call
opens its own :class:`http.client.HTTPConnection`, so N loadgen threads
can share one :class:`ServeClient`.

>>> client = ServeClient("127.0.0.1", 8000)          # doctest: +SKIP
>>> client.synthesize("nat").result["name"]          # doctest: +SKIP
'nat'
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.serve.protocol import parse_client_response


class ServeError(Exception):
    """A transport-level failure (connection refused, timeout, ...)."""


@dataclass
class ServeResponse:
    """One decoded response envelope plus its HTTP status."""

    status: int
    ok: bool
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def result(self) -> Any:
        return self.payload.get("result")

    @property
    def error_code(self) -> Optional[str]:
        error = self.payload.get("error") or {}
        return error.get("code")

    @property
    def error_message(self) -> Optional[str]:
        error = self.payload.get("error") or {}
        return error.get("message")

    @property
    def elapsed_ms(self) -> Optional[float]:
        return self.payload.get("elapsed_ms")

    def raise_for_status(self) -> "ServeResponse":
        if not self.ok:
            raise ServeError(
                f"HTTP {self.status} [{self.error_code}]: {self.error_message}"
            )
        return self


class ServeClient:
    """A minimal JSON-over-HTTP client for the serve endpoints."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8000,
        timeout: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> ServeResponse:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            status = response.status
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(f"{method} {path} failed: {exc}") from exc
        finally:
            conn.close()
        ok, decoded = parse_client_response(status, raw)
        return ServeResponse(status=status, ok=ok and status == 200, payload=decoded)

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> ServeResponse:
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """The metrics snapshot (counters/gauges/histograms dicts)."""
        response = self.request("GET", "/metrics?format=json").raise_for_status()
        return response.result or {}

    def metrics_text(self) -> str:
        """The Prometheus text exposition."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            if response.status != 200:
                raise ServeError(f"GET /metrics -> HTTP {response.status}")
            return response.read().decode("utf-8")
        except (OSError, http.client.HTTPException) as exc:
            raise ServeError(f"GET /metrics failed: {exc}") from exc
        finally:
            conn.close()

    def _op(self, op: str, body: Dict[str, Any]) -> ServeResponse:
        return self.request("POST", f"/v1/{op}", body)

    def synthesize(
        self,
        nf: Optional[str] = None,
        source: Optional[str] = None,
        name: Optional[str] = None,
        entry: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> ServeResponse:
        body: Dict[str, Any] = {}
        if nf is not None:
            body["nf"] = nf
        if source is not None:
            body["source"] = source
        if name is not None:
            body["name"] = name
        if entry is not None:
            body["entry"] = entry
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._op("synthesize", body)

    def simulate(
        self,
        nf: Optional[str] = None,
        packets: Optional[List[Dict[str, int]]] = None,
        source: Optional[str] = None,
        name: Optional[str] = None,
        entry: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> ServeResponse:
        body: Dict[str, Any] = {"packets": packets or []}
        if nf is not None:
            body["nf"] = nf
        if source is not None:
            body["source"] = source
        if name is not None:
            body["name"] = name
        if entry is not None:
            body["entry"] = entry
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._op("simulate", body)

    def verify(
        self, chain: List[str], timeout_s: Optional[float] = None
    ) -> ServeResponse:
        body: Dict[str, Any] = {"chain": chain}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._op("verify", body)

    def compose(
        self,
        chain_a: List[str],
        chain_b: List[str],
        timeout_s: Optional[float] = None,
    ) -> ServeResponse:
        body: Dict[str, Any] = {"chain_a": chain_a, "chain_b": chain_b}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._op("compose", body)

    def testgen(
        self, nf: str, timeout_s: Optional[float] = None
    ) -> ServeResponse:
        body: Dict[str, Any] = {"nf": nf}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._op("testgen", body)

    # -- convenience ---------------------------------------------------------

    def wait_until_up(self, timeout: float = 30.0, interval: float = 0.1) -> bool:
        """Poll ``/healthz`` until the server answers (startup races)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if self.healthz().status == 200:
                    return True
            except ServeError:
                pass
            time.sleep(interval)
        return False
