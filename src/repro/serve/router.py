"""The cluster router: consistent-hash request routing with failover.

One asyncio process in front of N shard servers.  Each request is
routed by its **artifact key material** — the same ``(nf, source,
entry)`` / chain material the cache keys hash — so every request for a
given model always lands on the same shard, keeping that shard's
constraint cache, artifact tiers and compiled-model memo hot (the
entire point of sharding a cache-heavy workload; docs/internals.md
§13).

The router is deliberately thin:

- it never parses result payloads — a shard's response bytes are
  relayed verbatim (envelopes are byte-identical to single-node,
  which the cluster bench asserts);
- it holds no synthesis state, so it needs no drain beyond closing its
  listener;
- every proxy hop opens a fresh upstream connection
  (``Connection: close``) — boring, allocation-cheap at serve scale,
  and immune to stale-socket states.

Failover: shards are health-checked in the background
(``GET /healthz``); a shard that fails :attr:`RouterConfig.down_after`
consecutive probes is marked down and taken out of the ring-walk.  On
a *connection-level* failure mid-request the router retries the next
shard in the key's preference list (safe: every op is a deterministic,
idempotent computation) and counts ``serve.cluster.failover``.  A dead
shard therefore spills its key range to the next ring node — degraded
(cold caches), never a hung request.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.keys import stable_fingerprint
from repro.obs import MetricsRegistry, render_prometheus
from repro.obs import log as obs_log
from repro.serve import protocol
from repro.serve.ring import DEFAULT_VNODES, HashRing


def _version() -> str:
    import repro

    return repro.__version__


def routing_key(op: str, body: Dict[str, Any]) -> str:
    """The consistent-hash key for one request.

    Mirrors the cache-key material of :mod:`repro.serve.jobs`: two
    requests that would share cached artifacts hash to the same shard.
    Op-independent on purpose — a ``synthesize`` and a ``simulate`` of
    the same NF share the model tier, so they belong together.
    """
    if op == "verify_graph":
        # Route on topology + model bindings: repeated verifications of
        # one graph land on the shard whose edge-summary cache is hot.
        material: Any = (
            "graph",
            body.get("nodes"),
            body.get("edges"),
            body.get("generate"),
        )
    elif op in ("verify", "compose"):
        material = (
            "chain",
            body.get("chain"),
            body.get("chain_a"),
            body.get("chain_b"),
        )
    else:
        material = (
            "target",
            body.get("nf") or body.get("name"),
            body.get("source"),
            body.get("entry"),
        )
    try:
        return stable_fingerprint(material)
    except (TypeError, ValueError):
        # Un-encodable bodies (bad request shapes) still need *a* shard
        # to produce the 400; route on the op name.
        return stable_fingerprint(("op", op))


@dataclass
class ShardState:
    """One shard as the router sees it."""

    host: str
    port: int
    #: Consecutive failed health probes.
    failures: int = 0
    healthy: bool = True
    #: Last /healthz status string ("ok", "draining", "down").
    status: str = "ok"

    @property
    def name(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass
class RouterConfig:
    host: str = "127.0.0.1"
    port: int = 8100
    #: ``(host, port)`` of every shard.
    shards: Tuple[Tuple[str, int], ...] = ()
    vnodes: int = DEFAULT_VNODES
    #: Health-probe period (0 disables probing — tests drive health
    #: transitions through connection failures instead).
    health_interval_s: float = 1.0
    #: Consecutive probe failures before a shard is marked down.
    down_after: int = 2
    #: Per-hop upstream timeouts.
    connect_timeout_s: float = 2.0
    #: Response wait: generous — the shard owns request deadlines.
    response_timeout_s: float = 630.0
    #: How many preference-list nodes to try per request.
    attempts: int = 3


class Router:
    """The routing proxy (one per cluster)."""

    def __init__(
        self,
        config: RouterConfig,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not config.shards:
            raise ValueError("router needs at least one shard")
        self.config = config
        self.registry = registry or MetricsRegistry()
        self.shards: Dict[str, ShardState] = {
            f"{host}:{port}": ShardState(host, port)
            for host, port in config.shards
        }
        self.ring = HashRing(self.shards.keys(), vnodes=config.vnodes)
        self._log = obs_log.get_logger("repro.serve.router")
        self.port: Optional[int] = None
        self.draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._health_task: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Event] = None
        self._started_at = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self.registry.gauge("serve.cluster.shards").set(len(self.shards))
        self.registry.gauge("serve.cluster.healthy_shards").set(len(self.shards))
        if self.config.health_interval_s > 0:
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop()
            )

    async def serve_forever(self) -> None:
        assert self._stopped is not None
        await self._stopped.wait()

    async def stop(self) -> None:
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._health_task is not None:
            self._health_task.cancel()
        if self._stopped is not None:
            self._stopped.set()

    # -- health checking -----------------------------------------------------

    async def _probe(self, shard: ShardState) -> bool:
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(shard.host, shard.port),
                self.config.connect_timeout_s,
            )
        except (OSError, asyncio.TimeoutError):
            return False
        try:
            writer.write(protocol.render_request("GET", "/healthz"))
            await writer.drain()
            response = await asyncio.wait_for(
                protocol.read_response(reader), self.config.connect_timeout_s
            )
        except (
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            protocol.ProtocolError,
        ):
            return False
        finally:
            writer.close()
        if response is None or response.status != 200:
            return False
        # Draining shards answer 200 but advertise it; stop routing new
        # work there while the drain finishes its in-flight jobs.
        if b'"draining"' in response.body:
            shard.status = "draining"
            return False
        shard.status = "ok"
        return True

    def _mark(self, shard: ShardState, up: bool) -> None:
        if up:
            shard.failures = 0
            if not shard.healthy:
                shard.healthy = True
                self.registry.counter("serve.cluster.shard_up").inc()
                obs_log.log_event(
                    self._log, logging.INFO, "serve.cluster.shard_up",
                    f"shard {shard.name} back in the ring", shard=shard.name,
                )
            return
        shard.failures += 1
        if shard.healthy and shard.failures >= self.config.down_after:
            shard.healthy = False
            if shard.status != "draining":
                shard.status = "down"
            self.registry.counter("serve.cluster.shard_down").inc()
            obs_log.log_event(
                self._log, logging.WARNING, "serve.cluster.shard_down",
                f"shard {shard.name} marked down "
                f"({shard.failures} consecutive probe failures)",
                shard=shard.name,
            )
        self._publish_health()

    def _publish_health(self) -> None:
        self.registry.gauge("serve.cluster.healthy_shards").set(
            sum(1 for s in self.shards.values() if s.healthy)
        )

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            results = await asyncio.gather(
                *(self._probe(s) for s in self.shards.values()),
                return_exceptions=True,
            )
            for shard, up in zip(self.shards.values(), results):
                self._mark(shard, up is True)
            self._publish_health()

    # -- request handling ----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self.registry.counter("serve.connections").inc()
        try:
            while True:
                try:
                    request = await protocol.read_request(reader)
                except protocol.ProtocolError as exc:
                    writer.write(
                        protocol.json_response(
                            exc.status,
                            protocol.error_envelope(exc.status, exc.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload = await self._route(request)
                writer.write(payload)
                await writer.drain()
                self.registry.counter(f"serve.status.{status}").inc()
                if not request.keep_alive or self.draining:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown while parked on a keep-alive read — routine
            # since clients hold connections open between requests.
            pass
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, request: protocol.HttpRequest
    ) -> Tuple[int, bytes]:
        """(status, fully rendered response bytes) for one request."""
        self.registry.counter("serve.requests_total").inc()
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            return self._json(200, protocol.ok_envelope(self._health()))
        if path == "/metrics":
            snapshot = self.registry.snapshot()
            if request.query.get("format") == "json":
                return self._json(200, protocol.ok_envelope(snapshot))
            body = render_prometheus(snapshot).encode("utf-8")
            return 200, protocol.render_response(
                200, body,
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/ringz":
            return self._json(200, protocol.ok_envelope(self._ringz()))
        if path.startswith("/v1/"):
            op = path[len("/v1/"):]
            try:
                body = request.json()
            except protocol.ProtocolError as exc:
                return self._json(
                    exc.status, protocol.error_envelope(exc.status, exc.message)
                )
            return await self._proxy(op, request, routing_key(op, body))
        return self._json(
            404, protocol.error_envelope(404, f"unknown path {path!r}")
        )

    def _json(
        self, status: int, envelope: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes]:
        return status, protocol.json_response(
            status, envelope, extra_headers=headers
        )

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "router",
            "version": _version(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "shards": {
                name: {"healthy": s.healthy, "status": s.status}
                for name, s in self.shards.items()
            },
        }

    def _ringz(self) -> Dict[str, Any]:
        return {
            "vnodes": self.config.vnodes,
            "share": self.ring.share(),
            "healthy": [n for n, s in self.shards.items() if s.healthy],
        }

    def _preference(self, key: str) -> List[ShardState]:
        """Healthy shards to try, in ring order; down shards spill over."""
        names = self.ring.preference(key, n=len(self.shards))
        ordered = [self.shards[n] for n in names]
        healthy = [s for s in ordered if s.healthy]
        # Unhealthy shards go to the back rather than vanishing: when
        # *everything* is marked down (a probe blackout), trying the
        # nominal owner beats refusing outright.
        return (healthy + [s for s in ordered if not s.healthy])[
            : max(1, self.config.attempts)
        ]

    async def _proxy(
        self, op: str, request: protocol.HttpRequest, key: str
    ) -> Tuple[int, bytes]:
        candidates = self._preference(key)
        upstream = protocol.render_request(
            request.method, request.path, request.body,
            headers={
                name: value
                for name, value in request.headers.items()
                if name in ("traceparent", "content-type")
            },
        )
        last_error = "no shard available"
        for attempt, shard in enumerate(candidates):
            if attempt > 0:
                self.registry.counter("serve.cluster.failover").inc()
                obs_log.log_event(
                    self._log, logging.WARNING, "serve.cluster.failover",
                    f"{op}: failing over to {shard.name} ({last_error})",
                    op=op, shard=shard.name, attempt=attempt,
                )
            try:
                response = await self._forward(shard, upstream)
            except _UpstreamDown as exc:
                # Connection-level failure: the shard never produced a
                # response, so retrying elsewhere cannot double-run
                # side effects (there are none — ops are deterministic
                # cached computations).  Nudge health state so the ring
                # reacts faster than the next probe tick.
                last_error = str(exc)
                self._mark(shard, False)
                continue
            except protocol.ProtocolError as exc:
                return self._json(
                    exc.status,
                    protocol.error_envelope(
                        exc.status, f"shard {shard.name}: {exc.message}"
                    ),
                )
            self._mark(shard, True)
            self.registry.counter(
                f"serve.cluster.routed.{shard.name}"
            ).inc()
            headers = {"X-Repro-Shard": shard.name}
            if attempt > 0:
                headers["X-Repro-Failover"] = str(attempt)
            # Relay the shard's body verbatim: byte-identical envelopes.
            return response.status, protocol.render_response(
                response.status,
                response.body,
                content_type=response.headers.get(
                    "content-type", "application/json"
                ),
                keep_alive=True,
                extra_headers=headers,
            )
        self.registry.counter("serve.cluster.unrouted").inc()
        return self._json(
            503,
            protocol.error_envelope(
                503, f"no healthy shard for this key ({last_error})"
            ),
        )

    async def _forward(
        self, shard: ShardState, payload: bytes
    ) -> protocol.HttpResponse:
        """One proxy hop; raises :class:`_UpstreamDown` on transport failure."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(shard.host, shard.port),
                self.config.connect_timeout_s,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise _UpstreamDown(f"{shard.name}: connect failed ({exc!r})")
        try:
            writer.write(payload)
            await writer.drain()
            response = await asyncio.wait_for(
                protocol.read_response(reader), self.config.response_timeout_s
            )
        except (OSError, ConnectionError) as exc:
            raise _UpstreamDown(f"{shard.name}: connection lost ({exc!r})")
        except asyncio.TimeoutError:
            raise _UpstreamDown(f"{shard.name}: response timeout")
        except asyncio.IncompleteReadError:
            raise _UpstreamDown(f"{shard.name}: truncated response")
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        if response is None:
            raise _UpstreamDown(f"{shard.name}: closed before responding")
        return response


class _UpstreamDown(Exception):
    """A transport-level shard failure; the request may fail over."""


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_router(config: RouterConfig, *, ready=None) -> int:
    """Blocking entry point (the ``repro route`` CLI)."""
    obs_log.configure()
    log = obs_log.get_logger("repro.serve.router")

    async def main() -> None:
        router = Router(config)
        await router.start()
        loop = asyncio.get_running_loop()
        try:
            import signal

            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(router.stop())
                )
        except (NotImplementedError, RuntimeError, ValueError):
            pass
        obs_log.log_event(
            log, logging.INFO, "serve.router.start",
            f"routing on {router.config.host}:{router.port} for "
            f"{len(router.shards)} shards",
            port=router.port, shards=sorted(router.shards),
        )
        if ready is not None:
            ready(router)
        await router.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0


class RouterHandle:
    """A router on a background thread (tests, benchmarks)."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.router: Optional[Router] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.router is not None and self.router.port is not None
        return self.router.port

    @property
    def registry(self) -> MetricsRegistry:
        assert self.router is not None
        return self.router.registry

    def start(self, timeout: float = 30.0) -> "RouterHandle":
        def runner() -> None:
            async def main() -> None:
                self.router = Router(self.config)
                await self.router.start()
                self._loop = asyncio.get_running_loop()
                self._ready.set()
                await self.router.serve_forever()

            try:
                asyncio.run(main())
            except BaseException as exc:
                self._error = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=runner, name="repro-serve-router", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("router did not start in time")
        if self._error is not None:
            raise RuntimeError(f"router failed to start: {self._error!r}")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self.router is not None and self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(
                    lambda: asyncio.ensure_future(self.router.stop())
                )
            except RuntimeError:
                pass
        self._thread.join(timeout)

    def __enter__(self) -> "RouterHandle":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
