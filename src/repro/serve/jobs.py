"""Worker-side request handlers for :mod:`repro.serve`.

Everything here runs inside a ``ProcessPoolExecutor`` worker process
(:func:`run_job` is the single pool entry point, so it must stay
module-level and picklable).  Each job:

1. arms a **deadline alarm** (``signal.setitimer``/``SIGALRM``) for its
   remaining time budget — CPython delivers signals between bytecodes,
   so a CPU-bound synthesis is genuinely interrupted *mid-run* and the
   worker is free for the next request (real cancellation, not
   abandonment);
2. runs observed (:func:`repro.parallel.observed_call`) and ships its
   metrics snapshot home for the server to fold into its registry;
3. never raises: failures come back as structured ``{"status": ...}``
   dicts (the same errors-are-data discipline as
   :func:`repro.parallel.synthesize_many`).

The synthesize hot path goes through the artifact cache's model tier
(:func:`repro.nfactor.algorithm.synthesize_model_cached`); simulate
adds its own ``sim`` artifact kind — ``(model, module_env, pkt_param)``
— so a warm simulate skips the pipeline entirely.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import cache as artifact_cache

#: Env var gating the test-only ops (``sleep``) used by the lifecycle
#: tests to occupy workers deterministically.  Off in production.
TEST_OPS_ENV = "REPRO_SERVE_TEST_OPS"


class JobTimeout(BaseException):
    """Raised inside the worker when the request deadline fires.

    Deliberately a ``BaseException``: the pipeline's errors-are-data
    layers (engine frontier loops, cache tiers, batch outcomes) wrap
    work in ``except Exception`` — a deadline that happens to fire
    inside one of those blocks must cancel the job, not be folded into
    a partial result and kept running.  Only :func:`run_job` catches
    it.
    """


#: Retry cadence for the deadline timer (see :class:`_deadline_alarm`).
ALARM_RETRY_INTERVAL_S = 0.05

# True only between __enter__ and __exit__ of the active alarm; a tick
# that lands after disarm (the flag was already tripped when setitimer
# cleared) must be a no-op, not a JobTimeout escaping run_job's handler.
# Workers are single-threaded, so a plain module flag is enough.
_alarm_active = False


def _alarm_handler(signum, frame):  # pragma: no cover - signal plumbing
    if _alarm_active:
        raise JobTimeout()


class _deadline_alarm:
    """Arm SIGALRM for ``budget_s`` seconds (no-op when unusable).

    Usable only on the main thread of a POSIX process — exactly what a
    ``ProcessPoolExecutor`` worker is.  Previous handler and timer are
    restored on exit so nested/looped jobs compose.

    The timer repeats every :data:`ALARM_RETRY_INTERVAL_S` after the
    budget expires.  A one-shot alarm is lossy: if the tick happens to
    land while the interpreter is running a weakref callback or
    ``__del__`` (GC housekeeping — surprisingly common mid-synthesis),
    the raised :class:`JobTimeout` is *unraisable* — CPython swallows
    it and the job keeps running.  With an interval timer the next tick
    simply tries again until one lands in ordinary code and propagates.
    """

    def __init__(self, budget_s: Optional[float]) -> None:
        self.budget_s = budget_s
        self.armed = False
        self._previous: Any = None

    def __enter__(self) -> "_deadline_alarm":
        usable = (
            self.budget_s is not None
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if usable:
            if self.budget_s <= 0:
                raise JobTimeout()
            global _alarm_active
            self._previous = signal.signal(signal.SIGALRM, _alarm_handler)
            _alarm_active = True
            signal.setitimer(
                signal.ITIMER_REAL, self.budget_s, ALARM_RETRY_INTERVAL_S
            )
            self.armed = True
        return self

    def __exit__(self, *exc) -> None:
        if self.armed:
            global _alarm_active
            _alarm_active = False
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
        return None


# -- target resolution -------------------------------------------------------


def _resolve_target(body: Dict[str, Any]) -> Tuple[str, str, Optional[str]]:
    """(name, source, entry) from ``{"nf": ...}`` or ``{"source": ...}``."""
    source = body.get("source")
    name = body.get("nf") or body.get("name")
    entry = body.get("entry")
    if source is not None:
        if not isinstance(source, str):
            raise ValueError("'source' must be a string of NFPy code")
        return str(name or "<request>"), source, entry
    if not name:
        raise ValueError("request needs 'nf' (corpus name) or 'source'")
    from repro.nfs import get_nf, nf_names

    try:
        spec = get_nf(str(name))
    except KeyError:
        raise ValueError(
            f"unknown NF {name!r} (corpus: {', '.join(nf_names())})"
        )
    return spec.name, spec.source, entry or spec.entry


def _stats_dict(stats: Any) -> Dict[str, Any]:
    return {
        "n_paths": stats.n_paths,
        "n_entries": stats.n_entries,
        "source_loc": stats.source_loc,
        "slice_loc": stats.slice_loc,
        "solver_checks": stats.solver_checks,
        "solver_cache_hits": stats.solver_cache_hits,
        "states_explored": stats.states_explored,
    }


# -- op handlers -------------------------------------------------------------


def _op_synthesize(body: Dict[str, Any]) -> Dict[str, Any]:
    from repro.nfactor.algorithm import synthesize_model_cached

    name, source, entry = _resolve_target(body)
    ms = synthesize_model_cached(source, name=name, entry=entry)
    out = {
        "name": name,
        "model": json.loads(ms.model_json),
        "cached": ms.cached,
        "stats": _stats_dict(ms.stats),
    }
    if "model_version" in body:
        # Stamped at admission by the hot-swap registry; echoing it
        # back lets callers observe the exact old->new flip boundary.
        out["model_version"] = body["model_version"]
    return out


def _sim_bundle(
    body: Dict[str, Any],
) -> Tuple[Optional[str], Tuple[Any, Dict[str, Any], str]]:
    """(cache key, (model, module_env, pkt_param)) from the ``sim`` tier.

    Key = the model-tier key, so source/config/schema-version changes
    invalidate both tiers together.  The key also identifies the
    in-process compiled-model memo (compiled guards hold live function
    objects, so they can never go to the pickle-based disk tier).
    """
    from repro.nfactor.algorithm import (
        NFactor,
        NFactorConfig,
        _model_key,
    )

    name, source, entry = _resolve_target(body)
    config = NFactorConfig()
    store = artifact_cache.get_store()
    key = None
    if config.artifact_cache:
        key = artifact_cache.artifact_key(
            "sim", (_model_key(source, name, entry, config),)
        )
        hit = store.get_object("sim", key)
        if hit is not None:
            return key, hit
    result = NFactor(source, name=name, entry=entry, config=config).synthesize()
    bundle = (result.model, result.module_env, result.pkt_param)
    if key is not None:
        store.put_object("sim", key, bundle)
    return key, bundle


class _LruMemo:
    """A small LRU memo for per-worker compiled models.

    Replaces the earlier FIFO eviction: under FIFO, a hot model that a
    shard serves on every request was evicted by arrival order the
    moment eight one-off models passed through, forcing a recompile of
    the *busiest* model.  Here :meth:`get` refreshes recency, so steady
    traffic pins its model and eviction lands on the coldest entry.
    """

    __slots__ = ("capacity", "_items")

    def __init__(self, capacity: int) -> None:
        from collections import OrderedDict

        self.capacity = max(1, capacity)
        self._items: "OrderedDict[str, Any]" = OrderedDict()

    def get(self, key: str) -> Optional[Any]:
        try:
            self._items.move_to_end(key)
        except KeyError:
            return None
        return self._items[key]

    def put(self, key: str, value: Any) -> None:
        if key in self._items:
            self._items.move_to_end(key)
        elif len(self._items) >= self.capacity:
            self._items.popitem(last=False)
        self._items[key] = value

    def clear(self) -> None:
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items


#: Per-worker memo of compiled models, keyed on the sim-tier key.
#: Bounded: a worker serves a handful of distinct models at a time.
_COMPILED_MEMO_MAX = 8
_COMPILED_MEMO = _LruMemo(_COMPILED_MEMO_MAX)


def _compiled_for(key: Optional[str], model: Any, module_env: Dict[str, Any],
                  pkt_param: str) -> Any:
    """The compiled form of ``model``, memoized per worker process."""
    from repro.model.compile import compile_model
    from repro.obs import metrics as obs_metrics

    if key is not None:
        hit = _COMPILED_MEMO.get(key)
        if hit is not None:
            return hit
    compiled = compile_model(model, module_env, pkt_param=pkt_param)
    obs_metrics.histogram("sim.compile_seconds").observe(
        compiled.compile_seconds
    )
    if key is not None:
        _COMPILED_MEMO.put(key, compiled)
    return compiled


def _op_simulate(body: Dict[str, Any]) -> Dict[str, Any]:
    from repro.interp.values import deep_copy
    from repro.model.simulator import ModelSimulator
    from repro.net.packet import Packet
    from repro.obs import metrics as obs_metrics

    raw_packets = body.get("packets")
    if not isinstance(raw_packets, list) or not raw_packets:
        raise ValueError("'packets' must be a non-empty list of field objects")
    if len(raw_packets) > 10_000:
        raise ValueError("at most 10000 packets per simulate request")
    packets: List[Packet] = []
    for i, fields in enumerate(raw_packets):
        if not isinstance(fields, dict):
            raise ValueError(f"packet #{i} is not a field object")
        try:
            packets.append(Packet.from_dict(fields))
        except (AttributeError, TypeError, ValueError) as exc:
            raise ValueError(f"packet #{i}: {exc}")

    use_compiled = bool(body.get("compile", True))
    key, (model, module_env, pkt_param) = _sim_bundle(body)
    if use_compiled:
        compiled = _compiled_for(key, model, module_env, pkt_param)
        sim = compiled.simulator(deep_copy(module_env))
        sent_lists = sim.process_many(packets)
        obs_metrics.counter("sim.compiled").inc()
    else:
        sim = ModelSimulator(model, deep_copy(module_env), pkt_param=pkt_param)
        sent_lists = [sim.process(pkt) for pkt in packets]
    outputs = [
        {
            "forwarded": bool(sent),
            "sent": [
                {"packet": out.to_dict(), "port": port} for out, port in sent
            ],
        }
        for sent in sent_lists
    ]
    stats = sim.stats
    obs_metrics.counter("sim.packets").inc(stats.packets)
    obs_metrics.counter("sim.guard_evals").inc(stats.guard_evals)
    obs_metrics.counter("sim.compiled_dispatches").inc(
        stats.compiled_dispatches
    )
    out = {
        "name": model.name,
        "compiled": use_compiled,
        "outputs": outputs,
        "stats": {
            "packets": stats.packets,
            "forwarded": stats.forwarded,
            "dropped_default": stats.dropped_default,
            "dropped_entry": stats.dropped_entry,
            "guard_evals": stats.guard_evals,
            "compiled_dispatches": stats.compiled_dispatches,
        },
    }
    if "model_version" in body:
        out["model_version"] = body["model_version"]
    return out


def _chain_models(names: Any, what: str) -> List[Tuple[str, Any]]:
    from repro.nfactor.algorithm import synthesize_model_cached

    if not isinstance(names, list) or not names:
        raise ValueError(f"{what!r} must be a non-empty list of NF names")
    chain = []
    for name in names:
        nf_name, source, entry = _resolve_target({"nf": name})
        ms = synthesize_model_cached(source, name=nf_name, entry=entry)
        chain.append((nf_name, ms.model))
    return chain


def _op_verify(body: Dict[str, Any]) -> Dict[str, Any]:
    from repro.apps.verify import NetworkVerifier

    chain = _chain_models(body.get("chain"), "chain")
    verifier = NetworkVerifier(chain)
    spaces = verifier.reachable()
    max_traces = int(body.get("max_traces", 10))
    return {
        "chain": [name for name, _ in chain],
        "can_reach": bool(spaces),
        "n_spaces": len(spaces),
        "traces": [
            [[name, entry_id] for name, entry_id in space.trace]
            for space in spaces[:max_traces]
        ],
    }


def _graph_from_body(body: Dict[str, Any]) -> Any:
    """A :class:`~repro.netverify.graph.ServiceGraph` from request JSON.

    Two shapes: explicit ``{"nodes": [[name, nf], ...], "edges":
    [[src, dst], ...]}``, or ``{"generate": {"n": N, "seed": S,
    "width": W}}`` for the seeded benchmark topology.  Graph-shape
    errors (unknown NF, dangling edge, cycle) surface as 400s.
    """
    from repro.netverify import build_graph, generate_graph

    gen = body.get("generate")
    if gen is not None:
        if not isinstance(gen, dict):
            raise ValueError("'generate' must be an object")
        n = int(gen.get("n", 12))
        if not 1 <= n <= 200:
            raise ValueError("'generate.n' must be in [1, 200]")
        return generate_graph(
            n, seed=int(gen.get("seed", 7)), width=int(gen.get("width", 5))
        )
    nodes = body.get("nodes")
    edges = body.get("edges", [])
    if not isinstance(nodes, list) or not nodes:
        raise ValueError(
            "request needs 'nodes' ([[name, nf], ...]) or 'generate'"
        )
    if not isinstance(edges, list):
        raise ValueError("'edges' must be a list of [src, dst] pairs")
    try:
        node_pairs = [(str(n), str(nf)) for n, nf in nodes]
        edge_pairs = [(str(a), str(b)) for a, b in edges]
    except (TypeError, ValueError):
        raise ValueError("'nodes'/'edges' entries must be 2-element pairs")
    return build_graph(node_pairs, edge_pairs)


def _op_verify_graph(body: Dict[str, Any]) -> Dict[str, Any]:
    from repro.netverify import GraphVerifier, GraphVerifyConfig

    graph = _graph_from_body(body)
    # jobs pinned to 1: this already runs inside a pool worker, and
    # daemonic pool processes cannot fork grandchildren.  The serve
    # tier's parallelism is across requests/shards, not within one.
    config = GraphVerifyConfig(use_cache=bool(body.get("cache", True)), jobs=1)
    try:
        verdict = GraphVerifier(graph, config=config).verify()
    except ValueError as exc:
        raise ValueError(str(exc))
    max_traces = int(body.get("max_traces", 10))
    max_witnesses = int(body.get("max_witnesses", 8))
    stats = verdict.stats
    return {
        "graph": verdict.graph_fingerprint,
        "n_nodes": graph.n_nodes,
        "n_edges": graph.n_edges,
        "sinks": sorted(verdict.reachable),
        "can_reach": verdict.can_reach,
        "n_spaces": verdict.n_spaces,
        "traces": [
            [[name, entry_id] for name, entry_id in trace]
            for trace in verdict.traces(limit=max_traces)
        ],
        "witnesses": verdict.witnesses[:max_witnesses],
        "cache": {
            "edges": stats.edges,
            "hits": stats.cache_hits,
            "misses": stats.cache_misses,
            "dirty_edges": stats.dirty_edges,
        },
    }


def _op_compose(body: Dict[str, Any]) -> Dict[str, Any]:
    from repro.apps.compose import compose_chains

    chain_a = _chain_models(body.get("chain_a"), "chain_a")
    chain_b = _chain_models(body.get("chain_b"), "chain_b")
    ranked = compose_chains(chain_a, chain_b)
    return {
        "recommended": list(ranked[0].order),
        "orders": [
            {
                "order": list(an.order),
                "n_conflicts": an.n_conflicts,
                "conflicts": [
                    {"upstream": a, "downstream": b, "fields": sorted(fields)}
                    for a, b, fields in an.conflicts
                ],
            }
            for an in ranked
        ],
    }


def _op_testgen(body: Dict[str, Any]) -> Dict[str, Any]:
    from repro.apps.testing import generate_tests, validate_suite
    from repro.nfactor.algorithm import NFactor

    name, source, entry = _resolve_target(body)
    result = NFactor(source, name=name, entry=entry).synthesize()
    suite = generate_tests(result)
    report = validate_suite(suite, result)
    return {
        "name": name,
        "summary": suite.summary(),
        "n_cases": len(suite.cases),
        "n_packets": suite.n_packets,
        "uncovered_entries": suite.uncovered_entries,
        "cases": [
            {
                "name": case.name,
                "target_entry": case.target_entry,
                "packets": [pkt.to_dict() for pkt in case.packets],
                "expectations": case.expectations,
            }
            for case in suite.cases
        ],
        "validation": {
            "summary": report.summary(),
            "all_passed": report.all_passed,
            "n_cases": report.n_cases,
            "n_passed": report.n_passed,
        },
    }


def _op_sleep(body: Dict[str, Any]) -> Dict[str, Any]:
    """Test-only: hold a worker for ``seconds`` (deadline-interruptible)."""
    if os.environ.get(TEST_OPS_ENV, "") != "1":
        raise ValueError("unknown op 'sleep'")
    seconds = float(body.get("seconds", 0.1))
    deadline = time.monotonic() + min(seconds, 60.0)
    while time.monotonic() < deadline:
        time.sleep(0.005)
    return {"slept_s": seconds}


OPS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "synthesize": _op_synthesize,
    "simulate": _op_simulate,
    "verify": _op_verify,
    "verify_graph": _op_verify_graph,
    "compose": _op_compose,
    "testgen": _op_testgen,
    "sleep": _op_sleep,
}


def run_job(
    payload: Tuple[str, Dict[str, Any], Optional[float], Optional[Dict[str, Any]]],
) -> Dict[str, Any]:
    """Pool entry point: run one op under a deadline, observed.

    Returns ``{"status", "result"|"error", "metrics", "spans",
    "elapsed_s"}``; status mirrors the HTTP code the server will send
    (200/400/500/504).  ``where: "worker"`` on a 504 records that the
    alarm interrupted the job *inside* the worker (vs. the server's
    backstop timeout).

    The payload may carry a 5th element: the absolute
    ``time.monotonic()`` deadline stamped by the server at dispatch.
    CLOCK_MONOTONIC is system-wide, so it is meaningful in a forked
    worker — the alarm is armed for the time *actually left*, not the
    budget as of dispatch.  A job that spent its whole budget queued
    behind a busy CPU then times out immediately here (``where:
    "worker"``) instead of arming a stale full-length alarm and losing
    the race to the parent's backstop.

    ``trace`` (the 4th payload element) is the request's serialized
    :class:`~repro.obs.context.TraceContext` — installed as the worker's
    ambient context so every pipeline span and log line lands under the
    request's trace — or None when tracing is off, in which case span
    collection is skipped entirely and only metrics ship home.  On
    failure the partial span batch is recovered from the collector, so
    a 504 still reports the phases that ran before the alarm fired.
    """
    from repro.obs.context import TraceContext
    from repro.obs.recorder import MAX_SPANS_PER_REQUEST, phases_from_spans
    from repro.parallel import observed_call

    op, body, budget_s, trace = payload[:4]
    deadline = payload[4] if len(payload) > 4 else None
    if deadline is not None and budget_s is not None:
        budget_s = deadline - time.monotonic()
    tracing = trace is not None
    ctx = TraceContext.from_dict(trace) if tracing else None
    handler = OPS.get(op)
    collector: Dict[str, Any] = {}
    t0 = time.perf_counter()
    if handler is None:
        return {
            "status": 404,
            "error": f"unknown op {op!r}",
            "metrics": {},
            "spans": None,
            "elapsed_s": 0.0,
        }

    def _partial_spans():
        spans = collector.get("spans") or []
        return spans if tracing else None

    try:
        with _deadline_alarm(budget_s):
            result, snapshot, spans = observed_call(
                handler,
                body,
                trace_context=ctx,
                collector=collector,
                span_limit=MAX_SPANS_PER_REQUEST if tracing else 0,
            )
        return {
            "status": 200,
            "result": result,
            "metrics": snapshot,
            "spans": spans if tracing else None,
            "elapsed_s": time.perf_counter() - t0,
        }
    except JobTimeout:
        spans = _partial_spans()
        return {
            "status": 504,
            "error": f"deadline exceeded after {max(budget_s, 0.0):.3f}s",
            "where": "worker",
            "metrics": collector.get("metrics") or {},
            "spans": spans,
            "phases": phases_from_spans(spans),
            "elapsed_s": time.perf_counter() - t0,
        }
    except ValueError as exc:
        return {
            "status": 400,
            "error": str(exc),
            "metrics": collector.get("metrics") or {},
            "spans": _partial_spans(),
            "elapsed_s": time.perf_counter() - t0,
        }
    except Exception:
        return {
            "status": 500,
            "error": traceback.format_exc(limit=8),
            "metrics": collector.get("metrics") or {},
            "spans": _partial_spans(),
            "elapsed_s": time.perf_counter() - t0,
        }
