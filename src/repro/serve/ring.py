"""Consistent-hash ring for the sharded serve cluster.

The router places every shard on a hash ring at ``vnodes`` points
(virtual nodes smooth the key distribution), and routes each request by
walking clockwise from the hash of its **routing key** to the first
shard.  Two properties make this the right structure for a cache-heavy
cluster (docs/internals.md §13):

- **stickiness** — a given artifact key always lands on the same shard,
  so that shard's constraint cache, artifact tiers and compiled-model
  memo stay hot for it;
- **minimal disruption** — removing a shard only moves the keys it
  owned (to the next shard clockwise); every other shard's working set
  is untouched, so a failover does not flush the cluster's caches.

Hashing is BLAKE2b over UTF-8 — stable across processes, platforms and
Python releases (``hash()`` is salted per process and useless here).

>>> ring = HashRing(["a:1", "b:2", "c:3"])
>>> ring.node_for("some-artifact-key") in {"a:1", "b:2", "c:3"}
True
>>> pref = ring.preference("some-artifact-key")
>>> sorted(pref) == ["a:1", "b:2", "c:3"]  # every node, primary first
True
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Virtual nodes per shard.  64 keeps the max/min key-share ratio under
#: ~1.6 for small clusters, at negligible memory cost.
DEFAULT_VNODES = 64


def _point(text: str) -> int:
    """A stable 64-bit ring position for ``text``."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over named nodes (shard addresses)."""

    def __init__(
        self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: Dict[str, Tuple[int, ...]] = {}
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------------

    def add(self, node: str) -> None:
        """Place ``node`` on the ring (idempotent)."""
        if node in self._nodes:
            return
        points = tuple(
            _point(f"{node}#{i}") for i in range(self.vnodes)
        )
        self._nodes[node] = points
        for point in points:
            idx = bisect.bisect(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove(self, node: str) -> None:
        """Take ``node`` off the ring; its keys move to their successors."""
        if node not in self._nodes:
            return
        del self._nodes[node]
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- lookup --------------------------------------------------------------

    def node_for(self, key: str) -> Optional[str]:
        """The shard owning ``key`` (None on an empty ring)."""
        if not self._points:
            return None
        idx = bisect.bisect(self._points, _point(key)) % len(self._points)
        return self._owners[idx]

    def preference(self, key: str, n: Optional[int] = None) -> List[str]:
        """Up to ``n`` distinct shards for ``key`` in ring order.

        The first entry is the owner; the rest are the failover chain —
        the shards a dead owner's keys spill to, in the order they
        absorb them.  ``n=None`` returns every node.
        """
        if not self._points:
            return []
        want = len(self._nodes) if n is None else min(n, len(self._nodes))
        out: List[str] = []
        start = bisect.bisect(self._points, _point(key))
        total = len(self._points)
        for step in range(total):
            owner = self._owners[(start + step) % total]
            if owner not in out:
                out.append(owner)
                if len(out) >= want:
                    break
        return out

    # -- introspection -------------------------------------------------------

    def share(self, samples: int = 4096) -> Dict[str, float]:
        """Approximate fraction of the key space each node owns."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for i in range(samples):
            owner = self.node_for(f"sample-{i}")
            if owner is not None:
                counts[owner] += 1
        return {
            node: count / samples for node, count in sorted(counts.items())
        }
