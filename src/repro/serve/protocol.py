"""JSON-over-HTTP wire protocol for :mod:`repro.serve`.

A deliberately small HTTP/1.1 subset — request line, headers,
``Content-Length``-framed bodies, keep-alive — parsed directly off
asyncio streams.  Enough for curl, :mod:`http.client` and load
generators; no chunked encoding, no TLS, no multipart.

Every response body is a JSON envelope::

    {"ok": true,  "result": {...}, "elapsed_ms": 12.3}
    {"ok": false, "error": {"code": "queue_full", "message": "..."}}

Status codes carry the service semantics (docs/internals.md §10):

=====  ==================  =============================================
 200    ok                  request served
 400    bad_request         malformed JSON / unknown NF / bad params
 404    not_found           unknown endpoint
 405    method_not_allowed  wrong verb for the endpoint
 413    payload_too_large   body above ``MAX_BODY_BYTES``
 429    queue_full          admission queue at capacity (backpressure)
 500    internal            job raised; traceback in the error detail
 503    draining            server is draining (SIGTERM received)
 504    deadline_exceeded   per-request deadline hit (job cancelled)
=====  ==================  =============================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

#: Hard cap on request bodies (a full NF source is ~10 KiB; 8 MiB is
#: generous for packet batches and keeps one client from ballooning
#: server memory).
MAX_BODY_BYTES = 8 << 20
#: Cap on a single header line / the request line.
MAX_LINE_BYTES = 16 << 10
MAX_HEADERS = 100

STATUS_REASONS: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: status → machine-readable error code used in envelopes.
ERROR_CODES: Dict[int, str] = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    408: "request_timeout",
    413: "payload_too_large",
    429: "queue_full",
    500: "internal",
    502: "bad_upstream",
    503: "draining",
    504: "deadline_exceeded",
}


class ProtocolError(Exception):
    """A malformed or oversized request; carries the HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        # HTTP/1.1 default is keep-alive unless the client opts out.
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Dict[str, Any]:
        """The body as a JSON object (empty body → empty dict)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        return payload


async def read_request(reader) -> Optional[HttpRequest]:
    """Parse one request off the stream; None on a clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, ValueError):
        return None
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(400, "request line too long")
    try:
        method, target, _version = line.decode("latin-1").strip().split(" ", 2)
    except ValueError:
        raise ProtocolError(400, f"malformed request line: {line[:80]!r}")

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(raw) > MAX_LINE_BYTES:
            raise ProtocolError(400, "header line too long")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header: {raw[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError(400, "too many headers")

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(400, f"bad Content-Length: {length_text!r}")
    if length < 0:
        raise ProtocolError(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except Exception:
            return None

    split = urlsplit(target)
    query = {
        key: values[-1] for key, values in parse_qs(split.query).items()
    }
    return HttpRequest(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


@dataclass
class HttpResponse:
    """One parsed response (the router's upstream side of a proxy hop)."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_response(reader) -> Optional[HttpResponse]:
    """Parse one HTTP response off a stream; None on a clean EOF.

    The consuming side of :func:`render_response` — what the cluster
    router reads back from a shard when proxying.  Malformed upstream
    bytes raise :class:`ProtocolError` with status 502 so the router
    can relay a ``bad_upstream`` envelope instead of hanging.
    """
    try:
        line = await reader.readline()
    except (ConnectionError, ValueError):
        return None
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(502, "upstream status line too long")
    parts = line.decode("latin-1").strip().split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise ProtocolError(502, f"malformed upstream status line: {line[:80]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise ProtocolError(502, f"bad upstream status: {parts[1]!r}")

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(raw) > MAX_LINE_BYTES:
            raise ProtocolError(502, "upstream header line too long")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(502, f"malformed upstream header: {raw[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError(502, "too many upstream headers")

    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(502, f"bad upstream Content-Length: {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(502, f"bad upstream body size {length}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except Exception:
            raise ProtocolError(502, "upstream body truncated")
    return HttpResponse(status=status, headers=headers, body=body)


def render_request(
    method: str,
    path: str,
    body: bytes = b"",
    *,
    headers: Optional[Dict[str, str]] = None,
    content_type: str = "application/json",
) -> bytes:
    """Serialize one HTTP request (the router's proxy hop to a shard)."""
    lines = [
        f"{method} {path} HTTP/1.1",
        "Host: shard",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    if body:
        lines.append(f"Content-Type: {content_type}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one HTTP response (headers + body) to bytes."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def ok_envelope(result: Any, **extra: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {"ok": True, "result": result}
    out.update(extra)
    return out


def error_envelope(status: int, message: str, **extra: Any) -> Dict[str, Any]:
    error: Dict[str, Any] = {
        "code": ERROR_CODES.get(status, "error"),
        "message": message,
    }
    error.update(extra)
    return {"ok": False, "error": error}


def json_response(
    status: int,
    envelope: Dict[str, Any],
    *,
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    body = (json.dumps(envelope) + "\n").encode("utf-8")
    return render_response(
        status, body, keep_alive=keep_alive, extra_headers=extra_headers
    )


def parse_client_response(status: int, body: bytes) -> Tuple[bool, Dict[str, Any]]:
    """Client-side envelope decode; tolerates non-JSON error bodies."""
    try:
        payload = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError):
        payload = {"ok": False, "error": {"code": "bad_response",
                                          "message": body[:200].decode("latin-1")}}
    if not isinstance(payload, dict):
        payload = {"ok": False, "error": {"code": "bad_response",
                                          "message": repr(payload)[:200]}}
    ok = bool(payload.get("ok", status == 200))
    return ok, payload
