"""Cache peer-fill and replica warm-up (the cluster's CAS exchange).

Shards exchange **raw framed CAS bytes** — the exact
``MAGIC + blake2b + zlib(pickle)`` file framing of
:mod:`repro.cache.store` — over three endpoints the serve tier exposes
(docs/internals.md §13):

=====================  ====================================================
``GET /cas/K/KEY``      one artifact's framed bytes (404 when absent)
``PUT /cas/K/KEY``      push one artifact (receiver checksum-verifies)
``GET /registry``       the shard's recent ``(kind, key)`` artifact list
=====================  ====================================================

The serving side never inspects the bytes (one ``read()`` per fill);
the **receiving** side always runs the checksum, so corruption anywhere
on the path — a truncated read, a bit-flip in transit, a damaged peer
disk — is rejected exactly like local disk damage: a logged miss
(``cache.peer.corrupt``) followed by a local recompute with an
identical result.  That keeps the determinism invariant of
docs/internals.md §8 intact across the cluster: peers change *when*
work happens, never *what* is computed.

Everything here is synchronous :mod:`http.client` by design: the
callers are worker processes (the artifact store's remote tier), the
warm-up background thread and the CLI — never the event loop.
"""

from __future__ import annotations

import http.client
import json
import logging
import re
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cache.store import DEFAULT_PEER_TIMEOUT_S
from repro.obs import log as obs_log

log = obs_log.get_logger("repro.serve.peers")

#: Path-segment validation for CAS requests (both sides): kinds are
#: short identifiers, keys are BLAKE2 hex digests.  Anything else is
#: rejected before it can touch a filesystem path.
KIND_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")
KEY_RE = re.compile(r"^[0-9a-f]{8,128}$")

#: Artifact kinds replica warm-up pulls, hottest first: the model and
#: sim tiers are the serving hot path; the upstream tiers make a
#: source-edit resynthesis incremental on the new shard too.
WARMUP_KINDS: Tuple[str, ...] = ("model", "sim", "slices", "prep", "frontend")

#: Default cap on artifacts copied per warm-up.
WARMUP_LIMIT = 512


class PeerError(Exception):
    """A transport-level peer failure (refused, timed out, bad status)."""


def valid_cas_path(kind: str, key: str) -> bool:
    return bool(KIND_RE.match(kind)) and bool(KEY_RE.match(key))


def _request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    timeout: float = DEFAULT_PEER_TIMEOUT_S,
) -> Tuple[int, bytes]:
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/octet-stream"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    except (OSError, http.client.HTTPException) as exc:
        raise PeerError(f"{method} {host}:{port}{path}: {exc}") from exc
    finally:
        conn.close()


def fetch_cas_raw(
    host: str,
    port: int,
    kind: str,
    key: str,
    timeout: float = DEFAULT_PEER_TIMEOUT_S,
) -> Optional[bytes]:
    """One artifact's framed bytes from a peer; None when it lacks the key.

    Raises :class:`PeerError` on transport trouble or unexpected
    statuses — the caller (:meth:`ArtifactStore._peer_read`) turns that
    into a counted, logged miss.  The returned bytes are **unverified**:
    checksum verification is the caller's job.
    """
    if not valid_cas_path(kind, key):
        return None
    status, payload = _request(
        host, port, "GET", f"/cas/{kind}/{key}", timeout=timeout
    )
    if status == 200:
        return payload
    if status == 404:
        return None
    raise PeerError(f"GET /cas/{kind}/{key} -> HTTP {status}")


def push_cas_raw(
    host: str,
    port: int,
    kind: str,
    key: str,
    framed: bytes,
    timeout: float = DEFAULT_PEER_TIMEOUT_S,
) -> bool:
    """Push one framed artifact to a peer (it verifies before storing)."""
    if not valid_cas_path(kind, key):
        return False
    status, _payload = _request(
        host, port, "PUT", f"/cas/{kind}/{key}", body=framed, timeout=timeout
    )
    return status == 200


def fetch_registry(
    host: str,
    port: int,
    kinds: Sequence[str] = WARMUP_KINDS,
    limit: int = WARMUP_LIMIT,
    timeout: float = DEFAULT_PEER_TIMEOUT_S,
) -> List[Tuple[str, str]]:
    """A peer's recent ``(kind, key)`` artifact list (``GET /registry``)."""
    path = f"/registry?kinds={','.join(kinds)}&limit={int(limit)}"
    status, payload = _request(host, port, "GET", path, timeout=timeout)
    if status != 200:
        raise PeerError(f"GET /registry -> HTTP {status}")
    try:
        decoded = json.loads(payload.decode("utf-8"))
        entries = decoded["result"]["artifacts"]
    except (UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
        raise PeerError(f"GET /registry -> undecodable body ({exc})")
    out: List[Tuple[str, str]] = []
    for entry in entries:
        if (
            isinstance(entry, (list, tuple))
            and len(entry) == 2
            and valid_cas_path(str(entry[0]), str(entry[1]))
        ):
            out.append((str(entry[0]), str(entry[1])))
    return out


def warm_from_peers(
    store: Any,
    peers: Sequence[Tuple[str, int]],
    kinds: Sequence[str] = WARMUP_KINDS,
    limit: int = WARMUP_LIMIT,
    timeout: float = DEFAULT_PEER_TIMEOUT_S,
) -> int:
    """Pre-populate ``store`` from the first reachable peer's registry.

    The replica warm-up a joining shard runs in the background: list a
    peer's artifacts, fetch each blob it doesn't already hold, verify,
    store.  Every failure is skipped — a partially warmed shard is
    simply a colder shard, never a broken one.  Returns the number of
    artifacts copied.
    """
    kinds = tuple(kinds)
    for host, port in peers:
        try:
            entries = fetch_registry(
                host, port, kinds=kinds, limit=limit, timeout=timeout
            )
        except PeerError as exc:
            obs_log.log_event(
                log, logging.INFO, "serve.warmup.peer_down",
                f"warm-up: registry of {host}:{port} unavailable ({exc})",
                peer=f"{host}:{port}",
            )
            continue
        copied = 0
        for kind, key in entries:
            if store.get_raw(kind, key) is not None:
                continue
            try:
                raw = fetch_cas_raw(host, port, kind, key, timeout=timeout)
            except PeerError:
                continue
            if raw is not None and store.put_raw(kind, key, raw):
                copied += 1
        obs_log.log_event(
            log, logging.INFO, "serve.warmup.done",
            f"warm-up: copied {copied} artifacts from {host}:{port}",
            peer=f"{host}:{port}", copied=copied, listed=len(entries),
        )
        return copied
    return 0


def start_warmup_thread(
    store: Any,
    peers: Sequence[Tuple[str, int]],
    *,
    on_done: Optional[Any] = None,
    delay_s: float = 0.0,
    limit: int = WARMUP_LIMIT,
) -> threading.Thread:
    """Run :func:`warm_from_peers` on a daemon thread (non-blocking join).

    The shard starts serving immediately; warm-up races it harmlessly —
    both sides write content-addressed artifacts atomically, so the
    worst case is one redundant fetch.
    """

    def runner() -> None:
        if delay_s > 0:
            time.sleep(delay_s)
        copied = warm_from_peers(store, peers, limit=limit)
        if on_done is not None:
            on_done(copied)

    thread = threading.Thread(
        target=runner, name="repro-serve-warmup", daemon=True
    )
    thread.start()
    return thread
