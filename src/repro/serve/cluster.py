"""In-process cluster harness: N shards + a router, one call.

The ``repro serve --cluster N`` entry point and what the cluster tests
and benchmarks drive.  Each shard is a full :class:`~repro.serve.server.
Server` on its own background thread with its **own worker pool and
private artifact-cache directory** (so per-shard cache hit rates are
real, not an artifact of a shared filesystem), wired to every other
shard as a cache peer.  A :class:`~repro.serve.router.RouterHandle`
fronts them.

Shard ports are pre-allocated (bind port 0, read the assignment, close)
before any server starts, because every shard needs the *full* peer
list at pool-creation time — worker processes learn their peers through
pool ``initargs``, which are fixed when the pool spawns.  The classic
bind-race caveat does not bite here: allocation and rebind happen
within milliseconds on a loopback interface.

For real deployments the same topology runs as separate OS processes:
``repro serve --port P --join ...`` per shard plus ``repro route
--shards ...`` — which is exactly what the CI cluster-smoke job does so
it can ``kill -9`` a shard.
"""

from __future__ import annotations

import socket
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.serve.router import RouterConfig, RouterHandle
from repro.serve.server import ServeConfig, ServerHandle


def allocate_ports(n: int, host: str = "127.0.0.1") -> List[int]:
    """``n`` distinct ephemeral ports, all held open until assigned."""
    sockets = []
    try:
        for _ in range(n):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class ClusterHandle:
    """N shard servers + router, each on a background thread.

    ::

        with ClusterHandle(shards=2, workers_per_shard=1) as cluster:
            client = ServeClient("127.0.0.1", cluster.router_port)
            ...

    ``cache_root=None`` gives every shard a private temp directory
    (cleaned up on stop); pass a path to persist/warm across runs.
    """

    def __init__(
        self,
        shards: int = 2,
        workers_per_shard: int = 1,
        host: str = "127.0.0.1",
        cache_root: Optional[str] = None,
        warmup: bool = False,
        queue_size: int = 64,
        health_interval_s: float = 0.2,
        router_port: int = 0,
        base_config: Optional[ServeConfig] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("cluster needs at least one shard")
        self.n_shards = shards
        self._router_port = router_port
        self.workers_per_shard = workers_per_shard
        self.host = host
        self.warmup = warmup
        self.queue_size = queue_size
        self.health_interval_s = health_interval_s
        self.base_config = base_config
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        self.cache_root = cache_root
        self.shard_handles: List[ServerHandle] = []
        self.router_handle: Optional[RouterHandle] = None
        self.shard_ports: List[int] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ClusterHandle":
        if self.cache_root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            root = Path(self._tmp.name)
        else:
            root = Path(self.cache_root)
            root.mkdir(parents=True, exist_ok=True)
        self.shard_ports = allocate_ports(self.n_shards, self.host)
        endpoints: List[Tuple[str, int]] = [
            (self.host, port) for port in self.shard_ports
        ]
        try:
            for i, port in enumerate(self.shard_ports):
                peers = tuple(
                    endpoint for j, endpoint in enumerate(endpoints) if j != i
                )
                config = self._shard_config(i, port, peers, root)
                self.shard_handles.append(ServerHandle(config))
            # Fork every shard's worker pool before any listener binds:
            # forked workers inherit open FDs, and a worker holding a
            # *sibling* shard's listener would keep that port accepting
            # after the sibling dies (see Server.prepare_pool).
            for handle in self.shard_handles:
                handle.prepare()
            for handle in self.shard_handles:
                handle.start()
            self.router_handle = RouterHandle(
                RouterConfig(
                    host=self.host,
                    port=self._router_port,
                    shards=tuple(endpoints),
                    health_interval_s=self.health_interval_s,
                )
            ).start()
        except BaseException:
            self.stop()
            raise
        return self

    def _shard_config(
        self,
        index: int,
        port: int,
        peers: Tuple[Tuple[str, int], ...],
        root: Path,
    ) -> ServeConfig:
        if self.base_config is not None:
            import dataclasses

            config = dataclasses.replace(self.base_config)
        else:
            config = ServeConfig()
        config.host = self.host
        config.port = port
        config.workers = self.workers_per_shard
        config.queue_size = self.queue_size
        config.peers = peers
        config.cache_dir = str(root / f"shard-{index}")
        config.warmup = self.warmup
        config.shard_name = f"{self.host}:{port}"
        return config

    def stop(self, timeout: float = 60.0) -> None:
        if self.router_handle is not None:
            self.router_handle.stop()
            self.router_handle = None
        for handle in self.shard_handles:
            try:
                handle.stop(timeout)
            except RuntimeError:
                handle.kill()
        self.shard_handles = []
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def kill_shard(self, index: int) -> None:
        """Crash one shard abruptly (the failover tests' chaos lever)."""
        self.shard_handles[index].kill()

    # -- introspection -------------------------------------------------------

    @property
    def router_port(self) -> int:
        assert self.router_handle is not None
        return self.router_handle.port

    def shard_registries(self) -> List:
        return [handle.registry for handle in self.shard_handles]

    def __enter__(self) -> "ClusterHandle":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def parse_endpoints(text: str) -> Tuple[Tuple[str, int], ...]:
    """``"host:port,host:port"`` → endpoint tuples (the CLI flag format)."""
    from repro.cache.store import parse_peers

    return parse_peers(text)
