"""``repro.serve`` — the online synthesis & model-query service.

The batch pipeline (slice → classify → explore → refactor) answers one
CLI invocation at a time; this package turns it into a long-lived
service the way NFV controllers consume NF models online: a stdlib-only
asyncio JSON-over-HTTP server whose hot path is the persistent artifact
cache (:mod:`repro.cache`), so a warm ``synthesize`` is one cache
lookup away from the wire.

Production shape (docs/internals.md §10):

- a **bounded request queue** with explicit backpressure — a full
  queue rejects immediately with HTTP 429, it never buffers unbounded;
- **per-request deadlines** with real cancellation — an expired job is
  interrupted *inside* the worker process (``SIGALRM``), freeing the
  worker for the next request instead of abandoning it;
- a **process worker pool** (reusing :mod:`repro.parallel` idioms) so
  CPU-bound synthesis never blocks the event loop; each job ships its
  metrics snapshot home and the server folds it into its registry;
- **graceful drain** on SIGTERM — stop accepting, finish in-flight
  requests, flush the persistent constraint cache, exit 0;
- **end-to-end request tracing** (docs/internals.md §11) — every
  request carries a W3C ``traceparent`` context from the client through
  the queue into the worker, whose span batch is stitched into one tree
  and kept in an always-on flight recorder (``GET /debugz/requests``,
  ``repro trace``), with structured JSON logs tagged by request id.

Cluster mode (docs/internals.md §13): ``repro serve --cluster N``
shards the service behind a **consistent-hash router** — each request
routes by its artifact-key material so a given model's traffic always
lands on the shard whose caches are hot for it; shards **peer-fill**
artifact-cache misses from each other over ``GET /cas/...`` (checksum
verified on read — corruption is a logged miss and a local recompute,
never a wrong answer); a joining shard **warms up** from a peer's
``/registry``; a dead shard's key range spills to the next ring node
(``serve.cluster.failover``), degraded but never hung.

Modules: :mod:`~repro.serve.protocol` (HTTP/JSON framing),
:mod:`~repro.serve.queue` (admission control),
:mod:`~repro.serve.jobs` (worker-side request handlers),
:mod:`~repro.serve.server` (the asyncio shard server),
:mod:`~repro.serve.ring` (consistent hashing),
:mod:`~repro.serve.router` (the cluster routing proxy),
:mod:`~repro.serve.peers` (cache peer-fill + replica warm-up),
:mod:`~repro.serve.cluster` (the N-shards-plus-router harness),
:mod:`~repro.serve.client` (blocking client library used by
``repro query`` and the benchmarks).
"""

from __future__ import annotations

from repro.serve.client import ServeClient, ServeError, ServeResponse
from repro.serve.cluster import ClusterHandle
from repro.serve.protocol import ProtocolError
from repro.serve.queue import BoundedRequestQueue, QueueClosed, QueueFull
from repro.serve.ring import HashRing
from repro.serve.router import Router, RouterConfig, RouterHandle, run_router
from repro.serve.server import Server, ServeConfig, ServerHandle, run_server

__all__ = [
    "BoundedRequestQueue",
    "ClusterHandle",
    "HashRing",
    "ProtocolError",
    "QueueClosed",
    "QueueFull",
    "Router",
    "RouterConfig",
    "RouterHandle",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeResponse",
    "Server",
    "ServerHandle",
    "run_router",
    "run_server",
]
