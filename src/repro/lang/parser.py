"""Parsing NFPy source into a :class:`~repro.lang.ir.Program`."""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from repro.lang.errors import NFPyError, NFPyRecursionError
from repro.lang.ir import (
    Block,
    Function,
    Program,
    SExpr,
    Stmt,
    assign_sids,
    iter_block,
    stmt_calls,
)
from repro.lang.lower import Lowerer, is_main_guard


def parse_program(
    source: str,
    name: str = "<nf>",
    entry: Optional[str] = None,
) -> Program:
    """Parse NFPy source text into an IR :class:`Program`.

    ``entry`` optionally names the per-packet processing function; when
    omitted it can be set later (e.g. by the structure transforms that
    locate the packet loop).  Statements inside an
    ``if __name__ == "__main__"`` guard are skipped — they exist so the
    corpus files can also run under CPython.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise NFPyError(f"syntax error: {exc.msg}", exc.lineno) from exc

    lowerer = Lowerer()
    functions: Dict[str, Function] = {}
    module_globals: Set[str] = set()
    module_body: Block = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            fn = lowerer.lower_function(node)
            if fn.name in functions:
                raise NFPyError(f"duplicate function {fn.name!r}", node.lineno)
            functions[fn.name] = fn
        elif isinstance(node, ast.AsyncFunctionDef):
            raise NFPyError("async functions are not NFPy", node.lineno)
        elif isinstance(node, ast.ClassDef):
            raise NFPyError("classes are not NFPy", node.lineno)
        elif is_main_guard(node):
            continue
        else:
            module_body.extend(lowerer.lower_stmt(node, module_globals))

    program = Program(
        name=name,
        functions=functions,
        module_body=module_body,
        entry=entry,
        source=source,
    )
    if entry is not None and entry not in functions:
        raise NFPyError(f"entry function {entry!r} is not defined")
    check_no_recursion(program)
    assign_sids(program)
    return program


def parse_function(source: str, name: Optional[str] = None) -> Function:
    """Parse source containing function definitions; return one of them.

    Convenience for tests: returns the function called ``name``, or the
    only function if the module defines exactly one.
    """
    program = parse_program(source)
    if name is not None:
        if name not in program.functions:
            raise NFPyError(f"function {name!r} is not defined")
        return program.functions[name]
    if len(program.functions) != 1:
        raise NFPyError(
            f"expected exactly one function, found {sorted(program.functions)}"
        )
    return next(iter(program.functions.values()))


def call_graph(program: Program) -> Dict[str, Set[str]]:
    """Map each function to the user functions it calls."""
    graph: Dict[str, Set[str]] = {}
    for fname, fn in program.functions.items():
        callees: Set[str] = set()
        for stmt in iter_block(fn.body):
            for call in stmt_calls(stmt):
                if not call.method and call.func in program.functions:
                    callees.add(call.func)
        graph[fname] = callees
    return graph


def check_no_recursion(program: Program) -> None:
    """Reject directly or mutually recursive programs.

    NFactor's whole-program analyses inline user calls, which requires
    the call graph to be a DAG (NF packet-processing code is loop-driven,
    not recursion-driven — the same assumption StateAlyzer makes).
    """
    graph = call_graph(program)
    state: Dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(node: str, stack: tuple) -> None:
        mark = state.get(node)
        if mark == 1:
            return
        if mark == 0:
            cycle = " -> ".join(stack + (node,))
            raise NFPyRecursionError(f"recursive call cycle: {cycle}")
        state[node] = 0
        for callee in sorted(graph.get(node, ())):
            visit(callee, stack + (node,))
        state[node] = 1

    for fname in graph:
        visit(fname, ())


def module_call_stmts(program: Program) -> list[Stmt]:
    """Top-level call statements (e.g. ``LoadBalancer()`` starters)."""
    return [s for s in program.module_body if isinstance(s, SExpr)]
