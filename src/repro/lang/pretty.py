"""Pretty-printing IR back to readable NFPy source.

Slices, model actions and refactored programs are all reported as code
(paper Fig. 1 shows a slice as highlighted source lines), so the printer
must produce valid, readable NFPy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.lang.ir import (
    EAttr,
    EBin,
    EBool,
    ECall,
    ECmp,
    ECond,
    EConst,
    EDict,
    EList,
    EName,
    ESub,
    ETuple,
    EUn,
    Expr,
    Function,
    LAttr,
    LName,
    LSub,
    LTuple,
    LValue,
    Program,
    SAssign,
    SBreak,
    SContinue,
    SDelete,
    SExpr,
    SIf,
    SPass,
    SReturn,
    SWhile,
    Stmt,
)

_CMP_TEXT = {
    "==": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "in": "in",
    "notin": "not in",
    "is": "is",
    "isnot": "is not",
}


def pretty_expr(expr: Expr) -> str:
    """Render an IR expression as NFPy source text."""
    if isinstance(expr, EConst):
        return repr(expr.value)
    if isinstance(expr, EName):
        return expr.id
    if isinstance(expr, ETuple):
        inner = ", ".join(pretty_expr(e) for e in expr.elts)
        if len(expr.elts) == 1:
            inner += ","
        return f"({inner})"
    if isinstance(expr, EList):
        return "[" + ", ".join(pretty_expr(e) for e in expr.elts) + "]"
    if isinstance(expr, EDict):
        inner = ", ".join(
            f"{pretty_expr(k)}: {pretty_expr(v)}" for k, v in expr.items
        )
        return "{" + inner + "}"
    if isinstance(expr, EBin):
        return f"({pretty_expr(expr.left)} {expr.op} {pretty_expr(expr.right)})"
    if isinstance(expr, EUn):
        if expr.op == "not":
            return f"(not {pretty_expr(expr.operand)})"
        return f"({expr.op}{pretty_expr(expr.operand)})"
    if isinstance(expr, ECmp):
        return f"({pretty_expr(expr.left)} {_CMP_TEXT[expr.op]} {pretty_expr(expr.right)})"
    if isinstance(expr, EBool):
        joiner = f" {expr.op} "
        return "(" + joiner.join(pretty_expr(v) for v in expr.values) + ")"
    if isinstance(expr, ECall):
        if expr.method:
            receiver = pretty_expr(expr.args[0])
            args = ", ".join(pretty_expr(a) for a in expr.args[1:])
            return f"{receiver}.{expr.func}({args})"
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, ESub):
        return f"{pretty_expr(expr.base)}[{pretty_expr(expr.index)}]"
    if isinstance(expr, EAttr):
        return f"{pretty_expr(expr.base)}.{expr.attr}"
    if isinstance(expr, ECond):
        return (
            f"({pretty_expr(expr.body)} if {pretty_expr(expr.test)}"
            f" else {pretty_expr(expr.orelse)})"
        )
    raise TypeError(f"unknown expression: {expr!r}")


def pretty_lvalue(target: LValue) -> str:
    """Render an assignment target."""
    if isinstance(target, LName):
        return target.id
    if isinstance(target, LSub):
        return f"{target.base}[{pretty_expr(target.index)}]"
    if isinstance(target, LAttr):
        return f"{target.base}.{target.attr}"
    if isinstance(target, LTuple):
        return ", ".join(pretty_lvalue(t) for t in target.elts)
    raise TypeError(f"unknown lvalue: {target!r}")


def pretty_stmt(stmt: Stmt, indent: int = 0) -> str:
    """Render one statement (and nested blocks) as indented source."""
    pad = "    " * indent
    if isinstance(stmt, SAssign):
        lhs = " = ".join(pretty_lvalue(t) for t in stmt.targets)
        if stmt.aug is not None:
            return f"{pad}{lhs} {stmt.aug}= {pretty_expr(stmt.value)}"
        return f"{pad}{lhs} = {pretty_expr(stmt.value)}"
    if isinstance(stmt, SExpr):
        return f"{pad}{pretty_expr(stmt.value)}"
    if isinstance(stmt, SIf):
        lines = [f"{pad}if {pretty_expr(stmt.cond)}:"]
        lines.extend(_pretty_block(stmt.then, indent + 1))
        if stmt.orelse:
            lines.append(f"{pad}else:")
            lines.extend(_pretty_block(stmt.orelse, indent + 1))
        return "\n".join(lines)
    if isinstance(stmt, SWhile):
        lines = [f"{pad}while {pretty_expr(stmt.cond)}:"]
        lines.extend(_pretty_block(stmt.body, indent + 1))
        return "\n".join(lines)
    if isinstance(stmt, SReturn):
        if stmt.value is None:
            return f"{pad}return"
        return f"{pad}return {pretty_expr(stmt.value)}"
    if isinstance(stmt, SBreak):
        return f"{pad}break"
    if isinstance(stmt, SContinue):
        return f"{pad}continue"
    if isinstance(stmt, SPass):
        return f"{pad}pass"
    if isinstance(stmt, SDelete):
        assert stmt.target is not None
        return f"{pad}del {stmt.target.base}[{pretty_expr(stmt.target.index)}]"
    raise TypeError(f"unknown statement: {stmt!r}")


def _pretty_block(block: Sequence[Stmt], indent: int) -> List[str]:
    if not block:
        return ["    " * indent + "pass"]
    return [pretty_stmt(s, indent) for s in block]


def pretty_function(fn: Function) -> str:
    """Render a function definition."""
    header = f"def {fn.name}({', '.join(fn.params)}):"
    lines = [header]
    if fn.global_names:
        lines.append("    global " + ", ".join(sorted(fn.global_names)))
    lines.extend(_pretty_block(fn.body, 1))
    return "\n".join(lines)


def pretty_program(program: Program) -> str:
    """Render a whole program."""
    parts: List[str] = []
    if program.module_body:
        parts.append("\n".join(pretty_stmt(s) for s in program.module_body))
    for fn in program.functions.values():
        parts.append(pretty_function(fn))
    return "\n\n".join(parts) + "\n"


def pretty_slice(
    program: Program,
    sids: Set[int],
    mark: str = ">> ",
    keep: str = "   ",
) -> str:
    """Render a program with sliced statements highlighted.

    This reproduces the presentation of paper Fig. 1: the full program
    with the slice marked.  Structured statements are marked if their
    header (condition) is in the slice.
    """
    lines: List[str] = []

    def walk(block: Sequence[Stmt], indent: int) -> None:
        pad = "    " * indent
        for stmt in block:
            prefix = mark if stmt.sid in sids else keep
            if isinstance(stmt, SIf):
                lines.append(f"{prefix}{pad}if {pretty_expr(stmt.cond)}:")
                walk(stmt.then, indent + 1)
                if stmt.orelse:
                    lines.append(f"{prefix}{pad}else:")
                    walk(stmt.orelse, indent + 1)
            elif isinstance(stmt, SWhile):
                lines.append(f"{prefix}{pad}while {pretty_expr(stmt.cond)}:")
                walk(stmt.body, indent + 1)
            else:
                lines.append(prefix + pretty_stmt(stmt, indent))

    walk(program.module_body, 0)
    for fn in program.functions.values():
        header_prefix = keep
        lines.append(f"{header_prefix}def {fn.name}({', '.join(fn.params)}):")
        walk(fn.body, 1)
    return "\n".join(lines)
