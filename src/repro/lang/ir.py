"""The NFactor intermediate representation.

Every analysis in the repository — CFG construction, dataflow, slicing,
concrete interpretation, symbolic execution, StateAlyzer classification
and model extraction — operates on this statement-level IR rather than on
Python ``ast`` nodes.  Keeping statements (not three-address code) as the
unit preserves the source-line mapping that program slices are reported
in (paper Fig. 1 highlights source lines).

Design notes
------------
* Expressions are immutable; statements carry a unique ``sid`` and the
  originating source ``line``.
* Control flow is structured (``SIf``/``SWhile`` own their blocks);
  ``for`` loops are lowered to ``while`` by the frontend so downstream
  passes see exactly one looping construct.
* L-values distinguish whole-variable stores (``LName``) from element
  stores (``LSub``/``LAttr``), which are *weak* updates: they both define
  and use the base variable.  That conservative treatment is what makes
  dictionary-typed NF state (NAT tables, flow tables) slice correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for IR expressions (immutable)."""


@dataclass(frozen=True)
class EConst(Expr):
    """A literal constant: int, bool, str or None."""

    value: object


@dataclass(frozen=True)
class EName(Expr):
    """A variable reference."""

    id: str


@dataclass(frozen=True)
class ETuple(Expr):
    """A tuple literal."""

    elts: Tuple[Expr, ...]


@dataclass(frozen=True)
class EList(Expr):
    """A list literal."""

    elts: Tuple[Expr, ...]


@dataclass(frozen=True)
class EDict(Expr):
    """A dict literal (keys/values in source order)."""

    items: Tuple[Tuple[Expr, Expr], ...]


@dataclass(frozen=True)
class EBin(Expr):
    """A binary arithmetic/bitwise operation."""

    op: str  # + - * / // % << >> & | ^ **
    left: Expr
    right: Expr


@dataclass(frozen=True)
class EUn(Expr):
    """A unary operation: ``-``, ``not``, ``~``, ``+``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class ECmp(Expr):
    """A single comparison (chains are expanded by the frontend)."""

    op: str  # == != < <= > >= in notin is isnot
    left: Expr
    right: Expr


@dataclass(frozen=True)
class EBool(Expr):
    """Short-circuit ``and`` / ``or`` over two or more operands."""

    op: str  # and | or
    values: Tuple[Expr, ...]


@dataclass(frozen=True)
class ECall(Expr):
    """A call to a builtin, intrinsic, user function or method intrinsic.

    Method calls (``xs.append(v)``) are normalised to
    ``ECall(func="append", args=(EName("xs"), v), method=True)``.
    """

    func: str
    args: Tuple[Expr, ...]
    method: bool = False


@dataclass(frozen=True)
class ESub(Expr):
    """A subscript read: ``base[index]``."""

    base: Expr
    index: Expr


@dataclass(frozen=True)
class EAttr(Expr):
    """An attribute read, e.g. a packet header field ``pkt.ip_src``."""

    base: Expr
    attr: str


@dataclass(frozen=True)
class ECond(Expr):
    """A conditional expression ``body if test else orelse``."""

    test: Expr
    body: Expr
    orelse: Expr


# ---------------------------------------------------------------------------
# L-values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LValue:
    """Base class for assignment targets."""


@dataclass(frozen=True)
class LName(LValue):
    """Whole-variable store."""

    id: str


@dataclass(frozen=True)
class LSub(LValue):
    """Element store ``base[index] = ...`` (weak update of ``base``)."""

    base: str
    index: Expr


@dataclass(frozen=True)
class LAttr(LValue):
    """Field store ``base.attr = ...`` (weak update of ``base``)."""

    base: str
    attr: str


@dataclass(frozen=True)
class LTuple(LValue):
    """Tuple-unpacking target."""

    elts: Tuple[LValue, ...]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

Block = List["Stmt"]


@dataclass
class Stmt:
    """Base class for IR statements.

    ``sid`` is unique within a :class:`Program`; ``line`` is the original
    source line (several IR statements may share a line after lowering).
    """

    sid: int = field(default=-1, compare=False)
    line: int = field(default=0, compare=False)


@dataclass
class SAssign(Stmt):
    """``targets = value`` (or augmented: ``target op= value``)."""

    targets: Tuple[LValue, ...] = ()
    value: Expr = EConst(None)
    aug: Optional[str] = None  # op for augmented assignment, else None


@dataclass
class SExpr(Stmt):
    """An expression evaluated for its side effect (a call)."""

    value: Expr = EConst(None)


@dataclass
class SIf(Stmt):
    """``if cond: then else: orelse``."""

    cond: Expr = EConst(True)
    then: Block = field(default_factory=list)
    orelse: Block = field(default_factory=list)


@dataclass
class SWhile(Stmt):
    """``while cond: body``."""

    cond: Expr = EConst(True)
    body: Block = field(default_factory=list)


@dataclass
class SReturn(Stmt):
    """``return [value]`` — in a packet callback, an implicit drop."""

    value: Optional[Expr] = None


@dataclass
class SBreak(Stmt):
    """``break``."""


@dataclass
class SContinue(Stmt):
    """``continue``."""


@dataclass
class SPass(Stmt):
    """``pass`` — kept so slices preserve block structure."""


@dataclass
class SDelete(Stmt):
    """``del base[index]`` — weak update of ``base`` (flow expiry etc.)."""

    target: Optional[LSub] = None


# ---------------------------------------------------------------------------
# Containers
# ---------------------------------------------------------------------------


@dataclass
class Function:
    """A function definition."""

    name: str
    params: Tuple[str, ...]
    body: Block
    global_names: Set[str] = field(default_factory=set)
    line: int = 0

    def stmts(self) -> Iterator[Stmt]:
        """Iterate over all statements, depth-first, in source order."""
        yield from iter_block(self.body)


@dataclass
class Program:
    """A whole NFPy module: globals initialisation plus functions.

    ``module_body`` holds the top-level statements (constant /
    configuration / state initialisation); ``entry`` names the per-packet
    processing function once the structure transforms have run.
    """

    name: str
    functions: Dict[str, Function]
    module_body: Block
    entry: Optional[str] = None
    source: str = ""
    _by_sid: Dict[int, Stmt] = field(default_factory=dict, repr=False)

    def all_stmts(self) -> Iterator[Stmt]:
        """All statements: module body first, then each function."""
        yield from iter_block(self.module_body)
        for fn in self.functions.values():
            yield from fn.stmts()

    def stmt(self, sid: int) -> Stmt:
        """Look up a statement by its sid."""
        if not self._by_sid:
            self.reindex()
        return self._by_sid[sid]

    def reindex(self) -> None:
        """Rebuild the sid → statement index (after transforms)."""
        self._by_sid = {s.sid: s for s in self.all_stmts()}

    def max_sid(self) -> int:
        """Largest sid in the program (for allocating fresh ones)."""
        return max((s.sid for s in self.all_stmts()), default=-1)

    @property
    def entry_function(self) -> Function:
        """The per-packet entry function (requires ``entry`` to be set)."""
        if self.entry is None:
            raise ValueError(f"program {self.name!r} has no entry function")
        return self.functions[self.entry]

    def loc(self) -> int:
        """Number of IR statements — the 'lines of code' unit of Table 2."""
        return sum(1 for _ in self.all_stmts())

    def source_lines(self, sids: Set[int]) -> Set[int]:
        """Map a set of sids back to source line numbers."""
        self.reindex()
        return {self._by_sid[sid].line for sid in sids if sid in self._by_sid}


def iter_block(block: Sequence[Stmt]) -> Iterator[Stmt]:
    """Depth-first iteration over a block and all nested blocks."""
    for stmt in block:
        yield stmt
        if isinstance(stmt, SIf):
            yield from iter_block(stmt.then)
            yield from iter_block(stmt.orelse)
        elif isinstance(stmt, SWhile):
            yield from iter_block(stmt.body)


# ---------------------------------------------------------------------------
# Def/use computation
# ---------------------------------------------------------------------------

#: Method intrinsics that mutate their receiver (first argument).
MUTATING_METHODS = frozenset({"append", "pop", "clear", "add", "update", "remove", "insert"})


def expr_names(expr: Expr) -> Set[str]:
    """All variable names read by ``expr``."""
    names: Set[str] = set()
    _collect_names(expr, names)
    return names


def _collect_names(expr: Expr, out: Set[str]) -> None:
    if isinstance(expr, EName):
        out.add(expr.id)
    elif isinstance(expr, EConst):
        pass
    elif isinstance(expr, (ETuple, EList)):
        for e in expr.elts:
            _collect_names(e, out)
    elif isinstance(expr, EDict):
        for k, v in expr.items:
            _collect_names(k, out)
            _collect_names(v, out)
    elif isinstance(expr, EBin):
        _collect_names(expr.left, out)
        _collect_names(expr.right, out)
    elif isinstance(expr, EUn):
        _collect_names(expr.operand, out)
    elif isinstance(expr, ECmp):
        _collect_names(expr.left, out)
        _collect_names(expr.right, out)
    elif isinstance(expr, EBool):
        for e in expr.values:
            _collect_names(e, out)
    elif isinstance(expr, ECall):
        for e in expr.args:
            _collect_names(e, out)
    elif isinstance(expr, ESub):
        _collect_names(expr.base, out)
        _collect_names(expr.index, out)
    elif isinstance(expr, EAttr):
        _collect_names(expr.base, out)
    elif isinstance(expr, ECond):
        _collect_names(expr.test, out)
        _collect_names(expr.body, out)
        _collect_names(expr.orelse, out)
    else:  # pragma: no cover - exhaustive over IR
        raise TypeError(f"unknown expression node: {expr!r}")


def lvalue_defs(target: LValue) -> Set[str]:
    """Variables defined (possibly weakly) by storing to ``target``."""
    if isinstance(target, LName):
        return {target.id}
    if isinstance(target, (LSub, LAttr)):
        return {target.base}
    if isinstance(target, LTuple):
        out: Set[str] = set()
        for t in target.elts:
            out |= lvalue_defs(t)
        return out
    raise TypeError(f"unknown lvalue: {target!r}")


def lvalue_uses(target: LValue) -> Set[str]:
    """Variables *read* while storing to ``target``.

    An element store ``d[k] = v`` reads ``d`` (weak update) and every
    name in ``k``; a whole-variable store reads nothing.
    """
    if isinstance(target, LName):
        return set()
    if isinstance(target, LSub):
        return {target.base} | expr_names(target.index)
    if isinstance(target, LAttr):
        return {target.base}
    if isinstance(target, LTuple):
        out: Set[str] = set()
        for t in target.elts:
            out |= lvalue_uses(t)
        return out
    raise TypeError(f"unknown lvalue: {target!r}")


def call_mutated_names(expr: Expr) -> Set[str]:
    """Receiver names mutated by method-intrinsic calls inside ``expr``."""
    out: Set[str] = set()
    _collect_mutations(expr, out)
    return out


def _collect_mutations(expr: Expr, out: Set[str]) -> None:
    if isinstance(expr, ECall):
        if expr.method and expr.func in MUTATING_METHODS and expr.args:
            receiver = expr.args[0]
            if isinstance(receiver, EName):
                out.add(receiver.id)
        for a in expr.args:
            _collect_mutations(a, out)
    elif isinstance(expr, (ETuple, EList)):
        for e in expr.elts:
            _collect_mutations(e, out)
    elif isinstance(expr, EDict):
        for k, v in expr.items:
            _collect_mutations(k, out)
            _collect_mutations(v, out)
    elif isinstance(expr, EBin):
        _collect_mutations(expr.left, out)
        _collect_mutations(expr.right, out)
    elif isinstance(expr, EUn):
        _collect_mutations(expr.operand, out)
    elif isinstance(expr, ECmp):
        _collect_mutations(expr.left, out)
        _collect_mutations(expr.right, out)
    elif isinstance(expr, EBool):
        for e in expr.values:
            _collect_mutations(e, out)
    elif isinstance(expr, ESub):
        _collect_mutations(expr.base, out)
        _collect_mutations(expr.index, out)
    elif isinstance(expr, EAttr):
        _collect_mutations(expr.base, out)
    elif isinstance(expr, ECond):
        _collect_mutations(expr.test, out)
        _collect_mutations(expr.body, out)
        _collect_mutations(expr.orelse, out)


def stmt_defs(stmt: Stmt) -> Set[str]:
    """Variables defined by ``stmt`` (weak updates included)."""
    if isinstance(stmt, SAssign):
        defs: Set[str] = set()
        for t in stmt.targets:
            defs |= lvalue_defs(t)
        defs |= call_mutated_names(stmt.value)
        return defs
    if isinstance(stmt, SExpr):
        return call_mutated_names(stmt.value)
    if isinstance(stmt, SDelete) and stmt.target is not None:
        return {stmt.target.base}
    return set()


def stmt_scope_names(stmt: Stmt) -> Set[str]:
    """Names the statement *binds* in Python scoping terms.

    Only whole-name assignments (``x = ...``, ``x op= ...``, tuple
    targets) make a name function-local; element stores (``d[k] = v``),
    field stores and mutating method calls merely mutate an existing
    object and do not bind the name.
    """
    if not isinstance(stmt, SAssign):
        return set()
    out: Set[str] = set()

    def visit(target: LValue) -> None:
        if isinstance(target, LName):
            out.add(target.id)
        elif isinstance(target, LTuple):
            for sub in target.elts:
                visit(sub)

    for target in stmt.targets:
        visit(target)
    return out


def stmt_uses(stmt: Stmt) -> Set[str]:
    """Variables used by ``stmt`` (conditions included, bodies excluded)."""
    if isinstance(stmt, SAssign):
        uses = expr_names(stmt.value)
        for t in stmt.targets:
            uses |= lvalue_uses(t)
        if stmt.aug is not None:
            for t in stmt.targets:
                uses |= lvalue_defs(t)
        return uses
    if isinstance(stmt, SExpr):
        return expr_names(stmt.value)
    if isinstance(stmt, (SIf, SWhile)):
        return expr_names(stmt.cond)
    if isinstance(stmt, SReturn):
        return expr_names(stmt.value) if stmt.value is not None else set()
    if isinstance(stmt, SDelete) and stmt.target is not None:
        return {stmt.target.base} | expr_names(stmt.target.index)
    return set()


def expr_calls(expr: Expr) -> List[ECall]:
    """All call nodes inside ``expr``, in evaluation order."""
    out: List[ECall] = []
    _collect_calls(expr, out)
    return out


def _collect_calls(expr: Expr, out: List[ECall]) -> None:
    if isinstance(expr, ECall):
        for a in expr.args:
            _collect_calls(a, out)
        out.append(expr)
    elif isinstance(expr, (ETuple, EList)):
        for e in expr.elts:
            _collect_calls(e, out)
    elif isinstance(expr, EDict):
        for k, v in expr.items:
            _collect_calls(k, out)
            _collect_calls(v, out)
    elif isinstance(expr, EBin):
        _collect_calls(expr.left, out)
        _collect_calls(expr.right, out)
    elif isinstance(expr, EUn):
        _collect_calls(expr.operand, out)
    elif isinstance(expr, ECmp):
        _collect_calls(expr.left, out)
        _collect_calls(expr.right, out)
    elif isinstance(expr, EBool):
        for e in expr.values:
            _collect_calls(e, out)
    elif isinstance(expr, ESub):
        _collect_calls(expr.base, out)
        _collect_calls(expr.index, out)
    elif isinstance(expr, EAttr):
        _collect_calls(expr.base, out)
    elif isinstance(expr, ECond):
        _collect_calls(expr.test, out)
        _collect_calls(expr.body, out)
        _collect_calls(expr.orelse, out)


def stmt_calls(stmt: Stmt) -> List[ECall]:
    """All call nodes appearing directly in ``stmt`` (not nested blocks)."""
    if isinstance(stmt, SAssign):
        calls = expr_calls(stmt.value)
        for t in stmt.targets:
            if isinstance(t, LSub):
                calls.extend(expr_calls(t.index))
        return calls
    if isinstance(stmt, SExpr):
        return expr_calls(stmt.value)
    if isinstance(stmt, (SIf, SWhile)):
        return expr_calls(stmt.cond)
    if isinstance(stmt, SReturn) and stmt.value is not None:
        return expr_calls(stmt.value)
    if isinstance(stmt, SDelete) and stmt.target is not None:
        return expr_calls(stmt.target.index)
    return []


def assign_sids(program: Program) -> None:
    """(Re)number every statement with a fresh, dense sid sequence."""
    counter = 0
    for stmt in program.all_stmts():
        stmt.sid = counter
        counter += 1
    program.reindex()
