"""NFPy frontend: parsing the analyzable Python subset into the IR.

NFPy is a strict subset of Python (paper §5 analyzes C with LLVM; we
analyze NFPy with our own toolchain — see DESIGN.md §2).  A program is a
module of constant/configuration/state assignments plus function
definitions; one function is the per-packet entry point, either directly
or after the code-structure transforms of :mod:`repro.nfactor.transforms`.
"""

from repro.lang.parser import parse_program, parse_function
from repro.lang.ir import (
    Program,
    Function,
    Stmt,
    Expr,
    stmt_defs,
    stmt_uses,
    expr_names,
)
from repro.lang.errors import NFPyError
from repro.lang.pretty import pretty_program, pretty_stmt, pretty_expr

__all__ = [
    "parse_program",
    "parse_function",
    "Program",
    "Function",
    "Stmt",
    "Expr",
    "stmt_defs",
    "stmt_uses",
    "expr_names",
    "NFPyError",
    "pretty_program",
    "pretty_stmt",
    "pretty_expr",
]
