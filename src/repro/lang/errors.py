"""Frontend error types."""

from __future__ import annotations

from typing import Optional


class NFPyError(Exception):
    """Raised when source code falls outside the NFPy subset.

    Carries the offending source line so NF authors can find the
    construct that needs rewriting (the paper assumes NFs are written
    in, or rewritten into, an analyzable style — §3.2).
    """

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class NFPyNameError(NFPyError):
    """An undefined name or function was referenced."""


class NFPyRecursionError(NFPyError):
    """Direct or mutual recursion — not expressible in NFPy."""
