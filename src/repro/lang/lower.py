"""Lowering: Python ``ast`` nodes → NFactor IR.

The lowering pass is also the NFPy *validator*: any construct outside the
subset raises :class:`~repro.lang.errors.NFPyError` with the offending
line.  Two normalisations happen here so every later pass sees a smaller
language:

* ``for`` loops become explicit ``while`` loops over an index temp, so
  the CFG/symbolic layers handle exactly one looping construct;
* comparison chains (``a < b < c``) become conjunctions of binary
  comparisons.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.lang.errors import NFPyError
from repro.lang.ir import (
    Block,
    EAttr,
    EBin,
    EBool,
    ECall,
    ECmp,
    ECond,
    EConst,
    EDict,
    EList,
    EName,
    ESub,
    ETuple,
    EUn,
    Expr,
    Function,
    LAttr,
    LName,
    LSub,
    LTuple,
    LValue,
    SAssign,
    SBreak,
    SContinue,
    SDelete,
    SExpr,
    SIf,
    SPass,
    SReturn,
    SWhile,
    Stmt,
)

_BINOPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.LShift: "<<",
    ast.RShift: ">>",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
    ast.Pow: "**",
}

_CMPOPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.In: "in",
    ast.NotIn: "notin",
    ast.Is: "is",
    ast.IsNot: "isnot",
}

_UNOPS = {
    ast.USub: "-",
    ast.UAdd: "+",
    ast.Not: "not",
    ast.Invert: "~",
}


class Lowerer:
    """Stateful lowering of one module (tracks fresh-temp allocation)."""

    def __init__(self) -> None:
        self._temp_counter = 0

    def fresh(self, prefix: str) -> str:
        """Allocate a fresh compiler-temporary name."""
        self._temp_counter += 1
        return f"__{prefix}_{self._temp_counter}"

    # -- expressions -------------------------------------------------------

    def lower_expr(self, node: ast.expr) -> Expr:
        """Lower one Python expression node to an IR expression."""
        if isinstance(node, ast.Constant):
            if node.value is Ellipsis:
                raise NFPyError("Ellipsis is not NFPy", node.lineno)
            return EConst(node.value)
        if isinstance(node, ast.Name):
            return EName(node.id)
        if isinstance(node, ast.Tuple):
            return ETuple(tuple(self.lower_expr(e) for e in node.elts))
        if isinstance(node, ast.List):
            return EList(tuple(self.lower_expr(e) for e in node.elts))
        if isinstance(node, ast.Dict):
            items: List[Tuple[Expr, Expr]] = []
            for k, v in zip(node.keys, node.values):
                if k is None:
                    raise NFPyError("dict unpacking is not NFPy", node.lineno)
                items.append((self.lower_expr(k), self.lower_expr(v)))
            return EDict(tuple(items))
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise NFPyError(
                    f"operator {type(node.op).__name__} is not NFPy", node.lineno
                )
            return EBin(op, self.lower_expr(node.left), self.lower_expr(node.right))
        if isinstance(node, ast.UnaryOp):
            op = _UNOPS.get(type(node.op))
            if op is None:
                raise NFPyError(
                    f"unary {type(node.op).__name__} is not NFPy", node.lineno
                )
            return EUn(op, self.lower_expr(node.operand))
        if isinstance(node, ast.BoolOp):
            op = "and" if isinstance(node.op, ast.And) else "or"
            return EBool(op, tuple(self.lower_expr(v) for v in node.values))
        if isinstance(node, ast.Compare):
            return self._lower_compare(node)
        if isinstance(node, ast.Call):
            return self._lower_call(node)
        if isinstance(node, ast.Subscript):
            return ESub(self.lower_expr(node.value), self._lower_index(node))
        if isinstance(node, ast.Attribute):
            return EAttr(self.lower_expr(node.value), node.attr)
        if isinstance(node, ast.IfExp):
            return ECond(
                self.lower_expr(node.test),
                self.lower_expr(node.body),
                self.lower_expr(node.orelse),
            )
        raise NFPyError(
            f"expression {type(node).__name__} is not NFPy", getattr(node, "lineno", None)
        )

    def _lower_index(self, node: ast.Subscript) -> Expr:
        if isinstance(node.slice, ast.Slice):
            raise NFPyError("slicing is not NFPy (index with integers)", node.lineno)
        return self.lower_expr(node.slice)

    def _lower_compare(self, node: ast.Compare) -> Expr:
        parts: List[Expr] = []
        left = node.left
        for op_node, right in zip(node.ops, node.comparators):
            op = _CMPOPS.get(type(op_node))
            if op is None:
                raise NFPyError(
                    f"comparison {type(op_node).__name__} is not NFPy", node.lineno
                )
            parts.append(ECmp(op, self.lower_expr(left), self.lower_expr(right)))
            left = right
        if len(parts) == 1:
            return parts[0]
        return EBool("and", tuple(parts))

    def _lower_call(self, node: ast.Call) -> Expr:
        if node.keywords:
            raise NFPyError("keyword arguments are not NFPy", node.lineno)
        args = tuple(self.lower_expr(a) for a in node.args)
        if isinstance(node.func, ast.Name):
            return ECall(node.func.id, args)
        if isinstance(node.func, ast.Attribute):
            receiver = self.lower_expr(node.func.value)
            return ECall(node.func.attr, (receiver,) + args, method=True)
        raise NFPyError("computed call targets are not NFPy", node.lineno)

    # -- l-values ----------------------------------------------------------

    def lower_target(self, node: ast.expr) -> LValue:
        """Lower an assignment target."""
        if isinstance(node, ast.Name):
            return LName(node.id)
        if isinstance(node, ast.Subscript):
            if not isinstance(node.value, ast.Name):
                raise NFPyError(
                    "subscript store base must be a variable", node.lineno
                )
            return LSub(node.value.id, self._lower_index(node))
        if isinstance(node, ast.Attribute):
            if not isinstance(node.value, ast.Name):
                raise NFPyError(
                    "attribute store base must be a variable", node.lineno
                )
            return LAttr(node.value.id, node.attr)
        if isinstance(node, (ast.Tuple, ast.List)):
            return LTuple(tuple(self.lower_target(e) for e in node.elts))
        raise NFPyError(
            f"assignment target {type(node).__name__} is not NFPy",
            getattr(node, "lineno", None),
        )

    # -- statements --------------------------------------------------------

    def lower_block(self, nodes: List[ast.stmt], globals_out: Set[str]) -> Block:
        """Lower a statement list (collecting ``global`` declarations)."""
        out: Block = []
        for node in nodes:
            out.extend(self.lower_stmt(node, globals_out))
        return out

    def lower_stmt(self, node: ast.stmt, globals_out: Set[str]) -> List[Stmt]:
        """Lower one Python statement (may expand to several IR stmts)."""
        line = getattr(node, "lineno", 0)
        if isinstance(node, ast.Assign):
            targets = tuple(self.lower_target(t) for t in node.targets)
            return [SAssign(line=line, targets=targets, value=self.lower_expr(node.value))]
        if isinstance(node, ast.AnnAssign):
            if node.value is None:
                return []
            return [
                SAssign(
                    line=line,
                    targets=(self.lower_target(node.target),),
                    value=self.lower_expr(node.value),
                )
            ]
        if isinstance(node, ast.AugAssign):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise NFPyError(
                    f"augmented operator {type(node.op).__name__} is not NFPy", line
                )
            return [
                SAssign(
                    line=line,
                    targets=(self.lower_target(node.target),),
                    value=self.lower_expr(node.value),
                    aug=op,
                )
            ]
        if isinstance(node, ast.Expr):
            value = self.lower_expr(node.value)
            if isinstance(value, EConst) and isinstance(value.value, str):
                return []  # docstring
            return [SExpr(line=line, value=value)]
        if isinstance(node, ast.If):
            return [
                SIf(
                    line=line,
                    cond=self.lower_expr(node.test),
                    then=self.lower_block(node.body, globals_out),
                    orelse=self.lower_block(node.orelse, globals_out),
                )
            ]
        if isinstance(node, ast.While):
            if node.orelse:
                raise NFPyError("while/else is not NFPy", line)
            return [
                SWhile(
                    line=line,
                    cond=self.lower_expr(node.test),
                    body=self.lower_block(node.body, globals_out),
                )
            ]
        if isinstance(node, ast.For):
            return self._lower_for(node, globals_out)
        if isinstance(node, ast.Return):
            value = self.lower_expr(node.value) if node.value is not None else None
            return [SReturn(line=line, value=value)]
        if isinstance(node, ast.Break):
            return [SBreak(line=line)]
        if isinstance(node, ast.Continue):
            return [SContinue(line=line)]
        if isinstance(node, ast.Pass):
            return [SPass(line=line)]
        if isinstance(node, ast.Global):
            globals_out.update(node.names)
            return []
        if isinstance(node, ast.Delete):
            out: List[Stmt] = []
            for tgt in node.targets:
                lowered = self.lower_target(tgt)
                if not isinstance(lowered, LSub):
                    raise NFPyError("only `del d[k]` deletion is NFPy", line)
                out.append(SDelete(line=line, target=lowered))
            return out
        if isinstance(node, ast.Import) or isinstance(node, ast.ImportFrom):
            return []  # imports are for running under CPython; analysis ignores them
        if isinstance(node, ast.Assert):
            raise NFPyError("assert is not NFPy (use if/return)", line)
        raise NFPyError(f"statement {type(node).__name__} is not NFPy", line)

    def _lower_for(self, node: ast.For, globals_out: Set[str]) -> List[Stmt]:
        """Rewrite ``for x in seq: body`` into an index-driven while loop."""
        line = node.lineno
        if node.orelse:
            raise NFPyError("for/else is not NFPy", line)
        seq_name = self.fresh("seq")
        idx_name = self.fresh("i")
        target = self.lower_target(node.target)
        body: Block = [
            SAssign(
                line=line,
                targets=(target,),
                value=ESub(EName(seq_name), EName(idx_name)),
            ),
            SAssign(
                line=line,
                targets=(LName(idx_name),),
                value=EBin("+", EName(idx_name), EConst(1)),
            ),
        ]
        body.extend(self.lower_block(node.body, globals_out))
        return [
            SAssign(line=line, targets=(LName(seq_name),), value=self.lower_expr(node.iter)),
            SAssign(line=line, targets=(LName(idx_name),), value=EConst(0)),
            SWhile(
                line=line,
                cond=ECmp("<", EName(idx_name), ECall("len", (EName(seq_name),))),
                body=body,
            ),
        ]

    # -- module ------------------------------------------------------------

    def lower_function(self, node: ast.FunctionDef) -> Function:
        """Lower one function definition."""
        args = node.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.defaults or args.posonlyargs:
            raise NFPyError(
                "only plain positional parameters are NFPy", node.lineno
            )
        if node.decorator_list:
            raise NFPyError("decorators are not NFPy", node.lineno)
        global_names: Set[str] = set()
        body = self.lower_block(node.body, global_names)
        return Function(
            name=node.name,
            params=tuple(a.arg for a in args.args),
            body=body,
            global_names=global_names,
            line=node.lineno,
        )


def is_main_guard(node: ast.stmt) -> bool:
    """Detect ``if __name__ == "__main__":`` so it can be skipped."""
    if not isinstance(node, ast.If):
        return False
    test = node.test
    return (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == "__name__"
    )
