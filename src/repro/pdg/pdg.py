"""The program dependence graph (Ferrante–Ottenstein–Warren).

Nodes are statement sids; edges are the union of

* **data dependences** — def-use chains from reaching definitions, and
* **control dependences** — from post-dominance analysis.

Backward slicing (paper Algorithm 1, ``BackwardSlice``) is backward
reachability over this graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.cfg.builder import build_cfg
from repro.cfg.control_dependence import control_dependence
from repro.cfg.graph import CFG
from repro.dataflow.defuse import DefUseChains, def_use_chains
from repro.lang.ir import Block, Stmt, iter_block
from repro.obs import metrics as obs_metrics


@dataclass
class PDG:
    """A program dependence graph over one flat block."""

    cfg: CFG
    stmts: Dict[int, Stmt]
    data_preds: Dict[int, Set[int]]
    control_preds: Dict[int, Set[int]]
    chains: DefUseChains

    def preds(self, sid: int) -> Set[int]:
        """All dependence predecessors (data ∪ control)."""
        return self.data_preds.get(sid, set()) | self.control_preds.get(sid, set())

    def backward_reachable(self, seeds: Iterable[int]) -> Set[int]:
        """Transitive closure of dependence predecessors from ``seeds``."""
        out: Set[int] = set()
        work = [s for s in seeds]
        pops = 0
        while work:
            sid = work.pop()
            pops += 1
            if sid in out:
                continue
            out.add(sid)
            work.extend(self.preds(sid) - out)
        if pops:
            obs_metrics.counter("slicer.worklist_iterations").inc(pops)
        return out

    def forward_reachable(self, seeds: Iterable[int]) -> Set[int]:
        """Statements transitively dependent on ``seeds`` (forward slice)."""
        succs: Dict[int, Set[int]] = {}
        for sid in self.stmts:
            for p in self.preds(sid):
                succs.setdefault(p, set()).add(sid)
        out: Set[int] = set()
        work = [s for s in seeds]
        while work:
            sid = work.pop()
            if sid in out:
                continue
            out.add(sid)
            work.extend(succs.get(sid, set()) - out)
        return out

    def edge_count(self) -> int:
        """Total number of dependence edges."""
        return sum(len(v) for v in self.data_preds.values()) + sum(
            len(v) for v in self.control_preds.values()
        )


def build_pdg(block: Block, entry_vars: Optional[Set[str]] = None) -> PDG:
    """Build the PDG of a flat statement block.

    ``entry_vars`` are variables holding values before the block runs
    (e.g. the packet parameter); uses of them get no intra-block data
    predecessor.
    """
    cfg = build_cfg(block)
    stmts = {s.sid: s for s in iter_block(block)}
    chains = def_use_chains(cfg, stmts, entry_vars or set())
    data_preds = {sid: chains.data_preds(sid) for sid in stmts}
    cdeps = control_dependence(cfg)
    control_preds = {sid: cdeps.get(sid, set()) & set(stmts) for sid in stmts}
    return PDG(
        cfg=cfg,
        stmts=stmts,
        data_preds=data_preds,
        control_preds=control_preds,
        chains=chains,
    )
