"""Whole-program flattening: module body + inlined entry function.

NFactor's analyses (Algorithm 1) are whole-program: a backward slice
from a packet-output call must cross user-function boundaries and reach
the module-level state initialisations.  Because NFPy call graphs are
DAGs (no recursion — enforced by the frontend), the cleanest way to get
fully context-sensitive results is to *inline* every user call into the
per-packet entry function and prepend the module body.  The result is a
single flat block over which CFG/dataflow/PDG machinery runs unchanged.

The interprocedural SDG slicer (:mod:`repro.pdg.sdg`) offers the
summary-edge alternative that scales to call graphs where inlining would
blow up; for the NF corpus both give the same slices and the flat view
is what the end-to-end pipeline uses.

Inlining mechanics
------------------
* Locals of an inlined function are renamed ``{fn}__{name}__{k}`` with a
  per-instance counter, so repeated calls do not collide.
* A function containing ``return`` is wrapped in a one-iteration
  ``while True`` block; each ``return e`` becomes ``__ret = e; break``.
  This preserves structured control flow without a goto.
* Calls nested inside expressions are hoisted to fresh temporaries
  first.  Hoisting out of short-circuit positions would change
  evaluation order, so user calls under ``and``/``or``/conditional
  expressions are rejected.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lang.errors import NFPyError
from repro.lang.ir import (
    Block,
    EAttr,
    EBin,
    EBool,
    ECall,
    ECmp,
    ECond,
    EConst,
    EDict,
    EList,
    EName,
    ESub,
    ETuple,
    EUn,
    Expr,
    Function,
    LAttr,
    LName,
    LSub,
    LTuple,
    LValue,
    Program,
    SAssign,
    SBreak,
    SContinue,
    SDelete,
    SExpr,
    SIf,
    SPass,
    SReturn,
    SWhile,
    Stmt,
    iter_block,
    stmt_defs,
    stmt_scope_names,
)


@dataclass
class FlatView:
    """A flattened whole-program view ready for CFG/PDG analyses.

    ``block`` is the module body followed by the inlined entry body.
    ``origin`` maps flat sids back to the original program's sids (flat
    statements synthesised by inlining map to the sid of the source
    statement they came from, so slices can always be reported against
    the original source).
    """

    program: Program
    block: Block
    entry_params: Tuple[str, ...]
    origin: Dict[int, int] = field(default_factory=dict)
    module_sids: Set[int] = field(default_factory=set)

    def stmts(self) -> Dict[int, Stmt]:
        """Flat sid → statement map."""
        return {s.sid: s for s in iter_block(self.block)}

    def entry_vars(self) -> Set[str]:
        """Variables holding values when the flat block starts."""
        return set(self.entry_params)

    def origin_sids(self, flat_sids: Set[int]) -> Set[int]:
        """Map flat sids back to original-program sids."""
        return {self.origin[s] for s in flat_sids if s in self.origin}

    def source_lines(self, flat_sids: Set[int]) -> Set[int]:
        """Map flat sids to original source lines."""
        stmts = self.stmts()
        return {stmts[s].line for s in flat_sids if s in stmts}


class _Flattener:
    def __init__(self, program: Program, max_inline_depth: int = 32) -> None:
        self.program = program
        self.max_depth = max_inline_depth
        self._sid = 0
        self._instance = 0
        self.origin: Dict[int, int] = {}

    def fresh_sid(self, origin_sid: Optional[int]) -> int:
        sid = self._sid
        self._sid += 1
        if origin_sid is not None:
            self.origin[sid] = origin_sid
        return sid

    # -- expression cloning with renaming -----------------------------------

    def clone_expr(self, expr: Expr, rename: Dict[str, str]) -> Expr:
        if isinstance(expr, EConst):
            return expr
        if isinstance(expr, EName):
            return EName(rename.get(expr.id, expr.id))
        if isinstance(expr, ETuple):
            return ETuple(tuple(self.clone_expr(e, rename) for e in expr.elts))
        if isinstance(expr, EList):
            return EList(tuple(self.clone_expr(e, rename) for e in expr.elts))
        if isinstance(expr, EDict):
            return EDict(
                tuple(
                    (self.clone_expr(k, rename), self.clone_expr(v, rename))
                    for k, v in expr.items
                )
            )
        if isinstance(expr, EBin):
            return EBin(expr.op, self.clone_expr(expr.left, rename), self.clone_expr(expr.right, rename))
        if isinstance(expr, EUn):
            return EUn(expr.op, self.clone_expr(expr.operand, rename))
        if isinstance(expr, ECmp):
            return ECmp(expr.op, self.clone_expr(expr.left, rename), self.clone_expr(expr.right, rename))
        if isinstance(expr, EBool):
            return EBool(expr.op, tuple(self.clone_expr(v, rename) for v in expr.values))
        if isinstance(expr, ECall):
            return ECall(expr.func, tuple(self.clone_expr(a, rename) for a in expr.args), expr.method)
        if isinstance(expr, ESub):
            return ESub(self.clone_expr(expr.base, rename), self.clone_expr(expr.index, rename))
        if isinstance(expr, EAttr):
            return EAttr(self.clone_expr(expr.base, rename), expr.attr)
        if isinstance(expr, ECond):
            return ECond(
                self.clone_expr(expr.test, rename),
                self.clone_expr(expr.body, rename),
                self.clone_expr(expr.orelse, rename),
            )
        raise TypeError(f"unknown expression: {expr!r}")

    def clone_lvalue(self, target: LValue, rename: Dict[str, str]) -> LValue:
        if isinstance(target, LName):
            return LName(rename.get(target.id, target.id))
        if isinstance(target, LSub):
            return LSub(rename.get(target.base, target.base), self.clone_expr(target.index, rename))
        if isinstance(target, LAttr):
            return LAttr(rename.get(target.base, target.base), target.attr)
        if isinstance(target, LTuple):
            return LTuple(tuple(self.clone_lvalue(t, rename) for t in target.elts))
        raise TypeError(f"unknown lvalue: {target!r}")

    # -- call detection / hoisting -------------------------------------------

    def _is_user_call(self, expr: Expr) -> bool:
        return (
            isinstance(expr, ECall)
            and not expr.method
            and expr.func in self.program.functions
        )

    def _contains_user_call(self, expr: Expr) -> bool:
        if self._is_user_call(expr):
            return True
        children: List[Expr] = []
        if isinstance(expr, (ETuple, EList)):
            children = list(expr.elts)
        elif isinstance(expr, EDict):
            children = [e for kv in expr.items for e in kv]
        elif isinstance(expr, EBin):
            children = [expr.left, expr.right]
        elif isinstance(expr, EUn):
            children = [expr.operand]
        elif isinstance(expr, ECmp):
            children = [expr.left, expr.right]
        elif isinstance(expr, EBool):
            children = list(expr.values)
        elif isinstance(expr, ECall):
            children = list(expr.args)
        elif isinstance(expr, ESub):
            children = [expr.base, expr.index]
        elif isinstance(expr, EAttr):
            children = [expr.base]
        elif isinstance(expr, ECond):
            children = [expr.test, expr.body, expr.orelse]
        return any(self._contains_user_call(c) for c in children)

    def hoist_calls(
        self, expr: Expr, line: int, out: Block, depth: int, guarded: bool = False
    ) -> Expr:
        """Replace user calls in ``expr`` by temps; emit inlined bodies."""
        if isinstance(expr, (EConst, EName)):
            return expr
        if self._is_user_call(expr):
            if guarded:
                raise NFPyError(
                    f"call to {expr.func}() in a short-circuit position "
                    "cannot be inlined without changing evaluation order",
                    line,
                )
            assert isinstance(expr, ECall)
            args = tuple(self.hoist_calls(a, line, out, depth) for a in expr.args)
            ret = self._fresh_name(f"ret_{expr.func}")
            self.inline_call(expr.func, args, ret, line, out, depth)
            return EName(ret)
        if isinstance(expr, ETuple):
            return ETuple(tuple(self.hoist_calls(e, line, out, depth, guarded) for e in expr.elts))
        if isinstance(expr, EList):
            return EList(tuple(self.hoist_calls(e, line, out, depth, guarded) for e in expr.elts))
        if isinstance(expr, EDict):
            return EDict(
                tuple(
                    (
                        self.hoist_calls(k, line, out, depth, guarded),
                        self.hoist_calls(v, line, out, depth, guarded),
                    )
                    for k, v in expr.items
                )
            )
        if isinstance(expr, EBin):
            return EBin(
                expr.op,
                self.hoist_calls(expr.left, line, out, depth, guarded),
                self.hoist_calls(expr.right, line, out, depth, guarded),
            )
        if isinstance(expr, EUn):
            return EUn(expr.op, self.hoist_calls(expr.operand, line, out, depth, guarded))
        if isinstance(expr, ECmp):
            return ECmp(
                expr.op,
                self.hoist_calls(expr.left, line, out, depth, guarded),
                self.hoist_calls(expr.right, line, out, depth, guarded),
            )
        if isinstance(expr, EBool):
            values = [self.hoist_calls(expr.values[0], line, out, depth, guarded)]
            for v in expr.values[1:]:
                values.append(self.hoist_calls(v, line, out, depth, guarded=True))
            return EBool(expr.op, tuple(values))
        if isinstance(expr, ECall):
            return ECall(
                expr.func,
                tuple(self.hoist_calls(a, line, out, depth, guarded) for a in expr.args),
                expr.method,
            )
        if isinstance(expr, ESub):
            return ESub(
                self.hoist_calls(expr.base, line, out, depth, guarded),
                self.hoist_calls(expr.index, line, out, depth, guarded),
            )
        if isinstance(expr, EAttr):
            return EAttr(self.hoist_calls(expr.base, line, out, depth, guarded), expr.attr)
        if isinstance(expr, ECond):
            test = self.hoist_calls(expr.test, line, out, depth, guarded)
            body = self.hoist_calls(expr.body, line, out, depth, guarded=True)
            orelse = self.hoist_calls(expr.orelse, line, out, depth, guarded=True)
            return ECond(test, body, orelse)
        raise TypeError(f"unknown expression: {expr!r}")

    def _fresh_name(self, prefix: str) -> str:
        self._instance += 1
        return f"__{prefix}__{self._instance}"

    # -- inlining -------------------------------------------------------------

    def inline_call(
        self,
        fname: str,
        args: Tuple[Expr, ...],
        ret_name: Optional[str],
        line: int,
        out: Block,
        depth: int,
    ) -> None:
        """Emit the inlined body of ``fname(args)`` into ``out``."""
        if depth > self.max_depth:
            raise NFPyError(f"inline depth exceeded at call to {fname}()", line)
        fn = self.program.functions[fname]
        if len(args) != len(fn.params):
            raise NFPyError(
                f"{fname}() takes {len(fn.params)} args, got {len(args)}", line
            )
        self._instance += 1
        instance = self._instance
        locals_: Set[str] = set(fn.params)
        for stmt in iter_block(fn.body):
            locals_ |= stmt_scope_names(stmt)
        locals_ -= fn.global_names
        locals_ |= set(fn.params)
        rename = {v: f"{fname}__{v}__{instance}" for v in locals_}

        for param, arg in zip(fn.params, args):
            out.append(
                SAssign(
                    sid=self.fresh_sid(None),
                    line=line,
                    targets=(LName(rename[param]),),
                    value=arg,
                )
            )

        has_return = any(isinstance(s, SReturn) for s in iter_block(fn.body))
        if ret_name is not None:
            out.append(
                SAssign(
                    sid=self.fresh_sid(None),
                    line=line,
                    targets=(LName(ret_name),),
                    value=EConst(None),
                )
            )
        if has_return:
            # Wrap the body in a one-iteration loop; `return` becomes
            # "set result, set finished-flag, break".  The flag lets the
            # break cascade out of loops nested inside the inlined body.
            fin_name = self._fresh_name(f"fin_{fname}")
            out.append(
                SAssign(
                    sid=self.fresh_sid(None),
                    line=line,
                    targets=(LName(fin_name),),
                    value=EConst(False),
                )
            )
            loop_body = self.flatten_block(
                fn.body, rename, depth + 1, ret_name, fin_name
            )
            loop_body.append(SBreak(sid=self.fresh_sid(None), line=fn.line))
            out.append(
                SWhile(
                    sid=self.fresh_sid(None),
                    line=fn.line,
                    cond=EConst(True),
                    body=loop_body,
                )
            )
        else:
            out.extend(self.flatten_block(fn.body, rename, depth + 1, ret_name))

    # -- statement flattening ---------------------------------------------------

    def flatten_block(
        self,
        block: Block,
        rename: Dict[str, str],
        depth: int,
        ret_name: Optional[str],
        fin_name: Optional[str] = None,
    ) -> Block:
        out: Block = []
        for stmt in block:
            self.flatten_stmt(stmt, rename, depth, ret_name, out, fin_name)
        return out

    def flatten_stmt(
        self,
        stmt: Stmt,
        rename: Dict[str, str],
        depth: int,
        ret_name: Optional[str],
        out: Block,
        fin_name: Optional[str] = None,
    ) -> None:
        line = stmt.line
        if isinstance(stmt, SAssign):
            value = self.clone_expr(stmt.value, rename)
            targets = tuple(self.clone_lvalue(t, rename) for t in stmt.targets)
            if (
                self._is_user_call(value)
                and stmt.aug is None
                and len(targets) == 1
                and isinstance(targets[0], LName)
            ):
                assert isinstance(value, ECall)
                args = tuple(self.hoist_calls(a, line, out, depth) for a in value.args)
                self.inline_call(value.func, args, targets[0].id, line, out, depth)
                return
            value = self.hoist_calls(value, line, out, depth)
            targets = tuple(
                self._hoist_lvalue(t, line, out, depth) for t in targets
            )
            out.append(
                SAssign(
                    sid=self.fresh_sid(stmt.sid),
                    line=line,
                    targets=targets,
                    value=value,
                    aug=stmt.aug,
                )
            )
            return
        if isinstance(stmt, SExpr):
            value = self.clone_expr(stmt.value, rename)
            if self._is_user_call(value):
                assert isinstance(value, ECall)
                args = tuple(self.hoist_calls(a, line, out, depth) for a in value.args)
                self.inline_call(value.func, args, None, line, out, depth)
                return
            value = self.hoist_calls(value, line, out, depth)
            out.append(SExpr(sid=self.fresh_sid(stmt.sid), line=line, value=value))
            return
        if isinstance(stmt, SIf):
            cond = self.hoist_calls(self.clone_expr(stmt.cond, rename), line, out, depth)
            out.append(
                SIf(
                    sid=self.fresh_sid(stmt.sid),
                    line=line,
                    cond=cond,
                    then=self.flatten_block(stmt.then, rename, depth, ret_name, fin_name),
                    orelse=self.flatten_block(stmt.orelse, rename, depth, ret_name, fin_name),
                )
            )
            return
        if isinstance(stmt, SWhile):
            cond = self.clone_expr(stmt.cond, rename)
            if self._contains_user_call(cond):
                raise NFPyError("user call in a loop condition cannot be inlined", line)
            out.append(
                SWhile(
                    sid=self.fresh_sid(stmt.sid),
                    line=line,
                    cond=cond,
                    body=self.flatten_block(stmt.body, rename, depth, ret_name, fin_name),
                )
            )
            if fin_name is not None and any(
                isinstance(s, SReturn) for s in iter_block(stmt.body)
            ):
                # A `return` inside this loop broke out of the loop only;
                # cascade the break toward the inline wrapper.
                out.append(
                    SIf(
                        sid=self.fresh_sid(None),
                        line=line,
                        cond=EName(fin_name),
                        then=[SBreak(sid=self.fresh_sid(None), line=line)],
                        orelse=[],
                    )
                )
            return
        if isinstance(stmt, SReturn):
            if ret_name is None and fin_name is None:
                value = (
                    self.hoist_calls(self.clone_expr(stmt.value, rename), line, out, depth)
                    if stmt.value is not None
                    else None
                )
                out.append(SReturn(sid=self.fresh_sid(stmt.sid), line=line, value=value))
                return
            # Inlined return: assign the result, raise the finished flag
            # and break (the flag cascades through enclosing loops).
            if stmt.value is not None and ret_name is not None:
                value = self.hoist_calls(self.clone_expr(stmt.value, rename), line, out, depth)
                out.append(
                    SAssign(
                        sid=self.fresh_sid(stmt.sid),
                        line=line,
                        targets=(LName(ret_name),),
                        value=value,
                    )
                )
            if fin_name is not None:
                out.append(
                    SAssign(
                        sid=self.fresh_sid(stmt.sid),
                        line=line,
                        targets=(LName(fin_name),),
                        value=EConst(True),
                    )
                )
            out.append(SBreak(sid=self.fresh_sid(stmt.sid), line=line))
            return
        if isinstance(stmt, SBreak):
            out.append(SBreak(sid=self.fresh_sid(stmt.sid), line=line))
            return
        if isinstance(stmt, SContinue):
            out.append(SContinue(sid=self.fresh_sid(stmt.sid), line=line))
            return
        if isinstance(stmt, SPass):
            out.append(SPass(sid=self.fresh_sid(stmt.sid), line=line))
            return
        if isinstance(stmt, SDelete):
            assert stmt.target is not None
            target = self.clone_lvalue(stmt.target, rename)
            assert isinstance(target, LSub)
            index = self.hoist_calls(target.index, line, out, depth)
            out.append(
                SDelete(
                    sid=self.fresh_sid(stmt.sid),
                    line=line,
                    target=LSub(target.base, index),
                )
            )
            return
        raise TypeError(f"unknown statement: {stmt!r}")

    def _hoist_lvalue(self, target: LValue, line: int, out: Block, depth: int) -> LValue:
        if isinstance(target, LSub):
            return LSub(target.base, self.hoist_calls(target.index, line, out, depth))
        if isinstance(target, LTuple):
            return LTuple(
                tuple(self._hoist_lvalue(t, line, out, depth) for t in target.elts)
            )
        return target


def flatten_program(program: Program, entry: Optional[str] = None) -> FlatView:
    """Flatten ``program`` into a single analysable block.

    The block is the module body (state initialisation) followed by the
    entry function's body with all user calls inlined.  The entry
    function's parameters (typically the packet) are the only
    values flowing in from outside.
    """
    entry_name = entry or program.entry
    if entry_name is None:
        raise ValueError("no entry function: set program.entry or pass entry=")
    if entry_name not in program.functions:
        raise ValueError(f"entry function {entry_name!r} is not defined")
    fn = program.functions[entry_name]

    flattener = _Flattener(program)
    block: Block = []
    for stmt in program.module_body:
        if isinstance(stmt, SExpr) and isinstance(stmt.value, ECall):
            call = stmt.value
            # Top-level starters (`LoadBalancer()`, `sniff(...)`) kick off
            # the packet loop when run under CPython; the analysis reaches
            # per-packet code through the entry function instead.
            if not call.method and (
                call.func in program.functions or call.func == "sniff"
            ):
                continue
        flattener.flatten_stmt(stmt, {}, 0, None, block)
    module_sids = {s.sid for s in iter_block(block)}
    block.extend(flattener.flatten_block(fn.body, {}, 0, None))
    return FlatView(
        program=program,
        block=block,
        entry_params=fn.params,
        origin=flattener.origin,
        module_sids=module_sids,
    )
