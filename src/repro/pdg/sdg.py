"""The system dependence graph (Horwitz–Reps–Binkley).

The flat-view pipeline inlines calls, which is exact but can duplicate
code exponentially in pathological call structures.  The SDG is the
scalable alternative the paper cites ([13] interprocedural slicing):
per-function PDGs stitched together with call, parameter-in/out and
*summary* edges, sliced with the two-pass algorithm.

Model
-----
* Parameters are passed by position (``FORMAL_IN``/``ACTUAL_IN``);
  return values flow through the pseudo-variable ``__ret``
  (``FORMAL_OUT``/``ACTUAL_OUT``).
* Global variables a callee may read/write (transitively — MOD/REF
  analysis) are modelled as additional in/out parameters at every call
  site, so state flowing through NF helper functions slices correctly.
* NFPy call graphs are DAGs, so one reverse-topological pass computes
  exact summary edges (the general HRB worklist is unnecessary).

Two-pass slicing: pass 1 walks everything except parameter-out edges
(never descends into callees, ascends to callers, crosses summaries);
pass 2 walks everything except call/parameter-in edges (descends,
never re-ascends).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.cfg.builder import build_cfg
from repro.cfg.control_dependence import control_dependence
from repro.cfg.graph import CFG, ENTRY
from repro.dataflow.framework import DataflowProblem, solve
from repro.lang.ir import (
    Block,
    ECall,
    Function,
    Program,
    Stmt,
    iter_block,
    stmt_calls,
    stmt_defs,
    stmt_scope_names,
    stmt_uses,
)
from repro.lang.parser import call_graph

RET = "__ret"

# Node kinds.
K_STMT = "stmt"
K_ENTRY = "entry"
K_FORMAL_IN = "formal_in"
K_FORMAL_OUT = "formal_out"
K_ACTUAL_IN = "actual_in"
K_ACTUAL_OUT = "actual_out"

# Edge kinds.
E_INTRA = "intra"  # data or control inside one procedure
E_CALL = "call"
E_PARAM_IN = "param_in"
E_PARAM_OUT = "param_out"
E_SUMMARY = "summary"


@dataclass(frozen=True)
class SDGNode:
    """One SDG vertex."""

    kind: str
    func: str
    sid: int = -1  # statement sid (call site sid for actual-in/out)
    var: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.kind == K_STMT:
            return f"<{self.func}:{self.sid}>"
        return f"<{self.kind} {self.func}:{self.sid}:{self.var}>"


class SDG:
    """The assembled system dependence graph."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.preds: Dict[SDGNode, Dict[SDGNode, str]] = {}
        self.nodes: Set[SDGNode] = set()

    def add_edge(self, src: SDGNode, dst: SDGNode, kind: str) -> None:
        """Dependence edge: ``dst`` depends on ``src``."""
        self.nodes.add(src)
        self.nodes.add(dst)
        self.preds.setdefault(dst, {})[src] = kind

    def dep_preds(self, node: SDGNode) -> Dict[SDGNode, str]:
        return self.preds.get(node, {})

    # -- slicing ------------------------------------------------------------

    def backward_slice(self, criteria: Iterable[SDGNode]) -> Set[SDGNode]:
        """Two-pass HRB backward slice."""
        phase1 = self._walk(criteria, skip={E_PARAM_OUT})
        phase2 = self._walk(phase1, skip={E_PARAM_IN, E_CALL})
        return phase1 | phase2

    def _walk(self, seeds: Iterable[SDGNode], skip: Set[str]) -> Set[SDGNode]:
        out: Set[SDGNode] = set()
        work = list(seeds)
        while work:
            node = work.pop()
            if node in out:
                continue
            out.add(node)
            for pred, kind in self.dep_preds(node).items():
                if kind in skip:
                    continue
                if pred not in out:
                    work.append(pred)
        return out

    def slice_sids(self, criteria: Iterable[SDGNode]) -> Set[int]:
        """Statement sids in the slice (parameter nodes dropped)."""
        return {
            n.sid for n in self.backward_slice(criteria) if n.kind == K_STMT and n.sid >= 0
        }

    def stmt_node(self, func: str, sid: int) -> SDGNode:
        return SDGNode(K_STMT, func, sid)


# ---------------------------------------------------------------------------
# MOD/REF analysis
# ---------------------------------------------------------------------------


def _function_locals(fn: Function) -> Set[str]:
    names: Set[str] = set(fn.params)
    for stmt in iter_block(fn.body):
        names |= stmt_scope_names(stmt)
    return names - fn.global_names


def mod_ref(program: Program) -> Tuple[Dict[str, Set[str]], Dict[str, Set[str]]]:
    """Transitive global MOD/REF sets per function."""
    graph = call_graph(program)
    order = _reverse_topological(graph)
    mods: Dict[str, Set[str]] = {}
    refs: Dict[str, Set[str]] = {}
    for fname in order:
        fn = program.functions[fname]
        local = _function_locals(fn)
        mod: Set[str] = set()
        ref: Set[str] = set()
        for stmt in iter_block(fn.body):
            mod |= {v for v in stmt_defs(stmt) if v not in local}
            ref |= {v for v in stmt_uses(stmt) if v not in local}
            for call in stmt_calls(stmt):
                if not call.method and call.func in program.functions:
                    mod |= mods.get(call.func, set())
                    ref |= refs.get(call.func, set())
        mods[fname] = mod
        refs[fname] = ref
    return mods, refs


def _reverse_topological(graph: Dict[str, Set[str]]) -> List[str]:
    """Callees before callers (graph is a DAG — frontend enforced)."""
    order: List[str] = []
    state: Dict[str, int] = {}

    def visit(node: str) -> None:
        if state.get(node) == 1:
            return
        state[node] = 0
        for callee in sorted(graph.get(node, ())):
            visit(callee)
        state[node] = 1
        order.append(node)

    for fname in sorted(graph):
        visit(fname)
    return order


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------


class _FunctionDeps(DataflowProblem[FrozenSet[Tuple[str, int]]]):
    """Reaching definitions with call-aware def/use sets."""

    direction = "forward"

    def __init__(
        self,
        stmts: Dict[int, Stmt],
        defs: Dict[int, Set[str]],
        entry_vars: Set[str],
    ) -> None:
        self._stmts = stmts
        self._defs = defs
        self._entry_vars = entry_vars

    def bottom(self):
        return frozenset()

    def boundary(self):
        return frozenset((v, -100) for v in self._entry_vars)

    def join(self, a, b):
        return a | b

    def transfer(self, node, fact):
        defs = self._defs.get(node, set())
        if not defs:
            return fact
        stmt = self._stmts.get(node)
        strong: Set[str] = set()
        if stmt is not None:
            strong = stmt_scope_names(stmt)
        surviving = frozenset(d for d in fact if d[0] not in strong)
        return surviving | frozenset((v, node) for v in defs)


def build_sdg(program: Program) -> SDG:
    """Assemble the SDG of a whole program.

    The module body is treated as the body of a pseudo-function
    ``<module>`` that initialises globals; the entry function's
    parameters are its formal-ins.
    """
    sdg = SDG(program)
    mods, refs = mod_ref(program)

    functions: Dict[str, Tuple[str, Block, Tuple[str, ...], Set[str]]] = {}
    for fname, fn in program.functions.items():
        functions[fname] = (fname, fn.body, fn.params, _function_locals(fn))
    functions["<module>"] = ("<module>", program.module_body, (), set())

    # Build every per-function graph first, then add summary edges
    # callees-first so each summary walk sees complete callee graphs.
    call_sites: Dict[str, Dict[int, ECall]] = {}
    for fname, (name, body, params, local) in functions.items():
        call_sites[name] = _build_function(
            sdg, program, name, body, params, local, mods, refs
        )
    graph = call_graph(program)
    graph["<module>"] = {
        c.func
        for s in program.module_body
        for c in stmt_calls(s)
        if not c.method and c.func in program.functions
    }
    for fname in _reverse_topological(graph):
        _add_summary_edges(sdg, program, fname, call_sites.get(fname, {}), refs, mods)

    # Link module-level global initialisation to every function that
    # reads the global: the module body is the implicit first "caller".
    module_defs: Dict[str, List[int]] = {}
    for stmt in iter_block(program.module_body):
        for var in stmt_defs(stmt):
            module_defs.setdefault(var, []).append(stmt.sid)
    for fname in program.functions:
        for var, def_sids in module_defs.items():
            fi = SDGNode(K_FORMAL_IN, fname, var=var)
            if fi in sdg.nodes:
                for def_sid in def_sids:
                    sdg.add_edge(
                        SDGNode(K_STMT, "<module>", def_sid), fi, E_PARAM_IN
                    )
    return sdg


def _call_of(stmt: Stmt, program: Program) -> Optional[ECall]:
    for call in stmt_calls(stmt):
        if not call.method and call.func in program.functions:
            return call
    return None


def _build_function(
    sdg: SDG,
    program: Program,
    fname: str,
    body: Block,
    params: Tuple[str, ...],
    local: Set[str],
    mods: Dict[str, Set[str]],
    refs: Dict[str, Set[str]],
) -> Dict[int, ECall]:
    cfg = build_cfg(body)
    stmts = {s.sid: s for s in iter_block(body)}
    entry_node = SDGNode(K_ENTRY, fname)

    # Call-aware def/use sets per statement.
    aug_defs: Dict[int, Set[str]] = {}
    aug_uses: Dict[int, Set[str]] = {}
    calls: Dict[int, ECall] = {}
    for sid, stmt in stmts.items():
        defs = set(stmt_defs(stmt))
        uses = set(stmt_uses(stmt))
        call = _call_of(stmt, program)
        if call is not None:
            calls[sid] = call
            defs |= mods.get(call.func, set())
            uses |= refs.get(call.func, set())
        aug_defs[sid] = defs
        aug_uses[sid] = uses

    entry_vars = set(params) | {
        v for uses in aug_uses.values() for v in uses if v not in local
    }
    in_facts, _ = solve(cfg, _FunctionDeps(stmts, aug_defs, entry_vars))

    # Formal-in nodes for params and referenced globals.
    formal_in: Dict[str, SDGNode] = {}
    for var in sorted(entry_vars):
        node = SDGNode(K_FORMAL_IN, fname, var=var)
        formal_in[var] = node
        sdg.add_edge(entry_node, node, E_INTRA)

    # Uses routed through actual-in nodes instead of the call statement
    # itself (HRB precision: otherwise every argument of a call would be
    # pulled into every slice crossing the call).  Routing applies when
    # the call is the statement's whole value.
    routed_uses: Dict[int, Set[str]] = {}
    from repro.lang.ir import SAssign as _SAssign, SExpr as _SExpr, expr_names

    for sid, call in calls.items():
        stmt = stmts[sid]
        whole = (
            isinstance(stmt, _SAssign) and stmt.value is call and stmt.aug is None
        ) or (isinstance(stmt, _SExpr) and stmt.value is call)
        if whole:
            names: Set[str] = set()
            for arg in call.args:
                names |= expr_names(arg)
            names |= refs.get(call.func, set())
            routed_uses[sid] = names
        else:
            routed_uses[sid] = set()

    def wire_var_deps(var: str, sid: int, target: SDGNode) -> None:
        for rvar, def_sid in in_facts.get(sid, frozenset()):
            if rvar != var:
                continue
            if def_sid == -100:
                if var in formal_in:
                    sdg.add_edge(formal_in[var], target, E_INTRA)
            elif def_sid != sid:
                sdg.add_edge(SDGNode(K_STMT, fname, def_sid), target, E_INTRA)

    # Data dependences.
    for sid, stmt in stmts.items():
        snode = SDGNode(K_STMT, fname, sid)
        sdg.add_edge(entry_node, snode, E_INTRA)
        for var in aug_uses[sid] - routed_uses.get(sid, set()):
            wire_var_deps(var, sid, snode)

    # Control dependences.
    cdeps = control_dependence(cfg)
    for sid in stmts:
        for dep in cdeps.get(sid, set()):
            if dep in stmts:
                sdg.add_edge(
                    SDGNode(K_STMT, fname, dep), SDGNode(K_STMT, fname, sid), E_INTRA
                )

    # Formal-out nodes: returns + modified globals.
    from repro.lang.ir import SReturn

    out_vars = sorted(
        {v for defs in aug_defs.values() for v in defs if v not in local} | {RET}
    )
    for var in out_vars:
        fo = SDGNode(K_FORMAL_OUT, fname, var=var)
        sdg.add_edge(entry_node, fo, E_INTRA)
        if var == RET:
            for sid, stmt in stmts.items():
                if isinstance(stmt, SReturn):
                    sdg.add_edge(SDGNode(K_STMT, fname, sid), fo, E_INTRA)
        else:
            for sid in stmts:
                if var in aug_defs[sid]:
                    sdg.add_edge(SDGNode(K_STMT, fname, sid), fo, E_INTRA)
            if var in formal_in:
                sdg.add_edge(formal_in[var], fo, E_INTRA)

    # Call sites.
    for sid, call in calls.items():
        callee = call.func
        call_node = SDGNode(K_STMT, fname, sid)
        callee_entry = SDGNode(K_ENTRY, callee)
        sdg.add_edge(call_node, callee_entry, E_CALL)
        routed = routed_uses.get(sid, set())
        ctrl = [SDGNode(K_STMT, fname, d) for d in cdeps.get(sid, set()) if d in stmts]

        def wire_ai(ai: SDGNode, used_names: Set[str]) -> None:
            # An actual-in depends on the definitions of the names in
            # its argument expression and on the call's control context.
            for var in used_names:
                if var in routed:
                    wire_var_deps(var, sid, ai)
            for c in ctrl:
                sdg.add_edge(c, ai, E_INTRA)
            if not routed:
                # Conservative fallback (compound call expression): the
                # actual-in shares the call node's dependences.
                sdg.add_edge(call_node, ai, E_INTRA)

        callee_fn = program.functions[callee]
        # Positional parameters.
        for pos, param in enumerate(callee_fn.params):
            ai = SDGNode(K_ACTUAL_IN, fname, sid, f"arg{pos}")
            names = expr_names(call.args[pos]) if pos < len(call.args) else set()
            wire_ai(ai, names)
            sdg.add_edge(ai, SDGNode(K_FORMAL_IN, callee, var=param), E_PARAM_IN)
        # Globals the callee reads.
        for var in sorted(refs.get(callee, set())):
            ai = SDGNode(K_ACTUAL_IN, fname, sid, var)
            wire_ai(ai, {var})
            sdg.add_edge(ai, SDGNode(K_FORMAL_IN, callee, var=var), E_PARAM_IN)
        # Globals the callee writes + the return value.
        for var in sorted(mods.get(callee, set()) | {RET}):
            ao = SDGNode(K_ACTUAL_OUT, fname, sid, var)
            sdg.add_edge(SDGNode(K_FORMAL_OUT, callee, var=var), ao, E_PARAM_OUT)
            sdg.add_edge(ao, call_node, E_INTRA)

    return calls


def _add_summary_edges(
    sdg: SDG,
    program: Program,
    fname: str,
    calls: Dict[int, ECall],
    refs: Dict[str, Set[str]],
    mods: Dict[str, Set[str]],
) -> None:
    """Actual-in → actual-out edges from callee transitive dependences.

    Because the call graph is a DAG and we build bottom-up-independent
    per-function graphs, a conservative summary — every actual-out
    depends on every actual-in of the same call — would be sound but
    imprecise.  Instead we run a backward walk inside the callee from
    each formal-out to find which formal-ins it transitively needs.
    """
    for sid, call in calls.items():
        callee = call.func
        callee_fn = program.functions[callee]
        out_vars = sorted(mods.get(callee, set()) | {RET})
        for var in out_vars:
            fo = SDGNode(K_FORMAL_OUT, callee, var=var)
            needed = sdg._walk([fo], skip={E_CALL})  # descend via summaries/params
            for node in needed:
                if node.kind != K_FORMAL_IN or node.func != callee:
                    continue
                ao = SDGNode(K_ACTUAL_OUT, fname, sid, var)
                if node.var in callee_fn.params:
                    pos = callee_fn.params.index(node.var)
                    ai = SDGNode(K_ACTUAL_IN, fname, sid, f"arg{pos}")
                else:
                    ai = SDGNode(K_ACTUAL_IN, fname, sid, node.var)
                sdg.add_edge(ai, ao, E_SUMMARY)
