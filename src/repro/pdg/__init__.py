"""Program dependence graphs and whole-program flattening."""

from repro.pdg.flatten import FlatView, flatten_program
from repro.pdg.pdg import PDG, build_pdg

__all__ = ["FlatView", "flatten_program", "PDG", "build_pdg"]
