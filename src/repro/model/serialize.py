"""Rendering and exporting synthesized models.

``render_model`` produces the paper's Figure-6-style table:

    | Match          | Action                              |
    | Flow | State   | Flow                    | State     |
    mode = RR
    | f    | idx     | send(f, server[idx])    | (idx+1)%N |
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lang.pretty import pretty_stmt
from repro.model.matchaction import NFModel, TableEntry
from repro.symbolic.expr import SApp, SDictVal, SVar, Sym


def sym_text(value: Any) -> str:
    """Human-readable rendering of a symbolic tree."""
    if isinstance(value, SVar):
        return value.name
    if isinstance(value, SDictVal):
        suffix = "".join(f"[{i}]" for i in value.path)
        return f"{value.dict_name}[f]{suffix}"
    if isinstance(value, SApp):
        if value.op == "member":
            return f"f in {value.args[0]}"
        if value.op == "not":
            inner = value.args[0]
            if isinstance(inner, SApp) and inner.op == "member":
                return f"f not in {inner.args[0]}"
            return f"not {sym_text(inner)}"
        if value.op in ("and", "or"):
            joiner = f" {value.op} "
            return "(" + joiner.join(sym_text(a) for a in value.args) + ")"
        if value.op == "getitem":
            return f"{sym_text(value.args[0])}[{sym_text(value.args[1])}]"
        if value.op in ("hash", "len", "abs", "min", "max"):
            inner = ", ".join(sym_text(a) for a in value.args)
            return f"{value.op}({inner})"
        if len(value.args) == 2:
            return f"({sym_text(value.args[0])} {value.op} {sym_text(value.args[1])})"
        inner = ", ".join(sym_text(a) for a in value.args)
        return f"{value.op}({inner})"
    if isinstance(value, tuple):
        return "(" + ", ".join(sym_text(v) for v in value) + ")"
    return repr(value)


def _conj(constraints: List[Any]) -> str:
    if not constraints:
        return "*"
    return " ∧ ".join(sym_text(c) for c in constraints)


def _entry_rows(entry: TableEntry) -> Dict[str, str]:
    if entry.drops:
        flow_action = "drop"
    else:
        rewrites = entry.flow_transform()
        if rewrites:
            inner = ", ".join(f"{k}:={sym_text(v)}" for k, v in sorted(rewrites.items()))
            flow_action = f"send(f with {inner})"
        else:
            flow_action = "send(f)"
    state_action = (
        "; ".join(pretty_stmt(s).strip() for s in entry.state_action_stmts) or "*"
    )
    return {
        "flow_match": _conj(entry.match_flow),
        "state_match": _conj(entry.match_state),
        "flow_action": flow_action,
        "state_action": state_action,
    }


def render_model(model: NFModel) -> str:
    """Figure-6-style text rendering of the whole model."""
    lines: List[str] = [model.summary(), ""]
    header = f"{'Flow match':<40} | {'State match':<44} | {'Flow action':<50} | State action"
    for key, table in model.tables.items():
        lines.append(f"== config: {_conj(table.config)} ==")
        lines.append(header)
        lines.append("-" * len(header))
        for entry in table.entries:
            row = _entry_rows(entry)
            lines.append(
                f"{row['flow_match']:<40} | {row['state_match']:<44} | "
                f"{row['flow_action']:<50} | {row['state_action']}"
            )
        lines.append("")
    lines.append(f"(default action: {model.default_action})")
    return "\n".join(lines)


def model_to_dict(model: NFModel) -> Dict[str, Any]:
    """A JSON-serialisable export of the model."""
    out: Dict[str, Any] = {
        "name": model.name,
        "default_action": model.default_action,
        "variables": {
            "pktVar": sorted(model.pkt_vars),
            "cfgVar": sorted(model.cfg_vars),
            "oisVar": sorted(model.ois_vars),
            "logVar": sorted(model.log_vars),
        },
        "tables": [],
    }
    for key, table in model.tables.items():
        entries = []
        for entry in table.entries:
            row = _entry_rows(entry)
            entries.append(
                {
                    "entry_id": entry.entry_id,
                    "path_id": entry.path_id,
                    "match": {"flow": row["flow_match"], "state": row["state_match"]},
                    "action": {"flow": row["flow_action"], "state": row["state_action"]},
                    "drops": entry.drops,
                }
            )
        out["tables"].append({"config": _conj(table.config), "entries": entries})
    return out


def model_to_json(model: NFModel, indent: int = 2) -> str:
    """The dict export as a JSON string."""
    return json.dumps(model_to_dict(model), indent=indent)
