"""The NFactor NF model: stateful match/action tables (paper Fig. 2a/6).

The model is OpenFlow-like with a stateful extension: each table entry
matches on flow fields *and* internal state, and its action both
transforms/forwards the packet and transitions the state.  Tables are
grouped by configuration constraints (one table per config, Fig. 2a).
"""

from repro.model.matchaction import (
    NFModel,
    Table,
    TableEntry,
    classify_leaf,
    split_constraints,
)
from repro.model.simulator import ModelSimulator
from repro.model.compile import CompiledModel, CompiledSimulator, compile_model
from repro.model.fsm import StateMachine, build_fsm
from repro.model.serialize import model_to_dict, render_model
from repro.model.lint import LintReport, lint_model
from repro.model.diff import ModelDiff, diff_models

__all__ = [
    "NFModel",
    "Table",
    "TableEntry",
    "classify_leaf",
    "split_constraints",
    "ModelSimulator",
    "CompiledModel",
    "CompiledSimulator",
    "compile_model",
    "StateMachine",
    "build_fsm",
    "model_to_dict",
    "render_model",
    "LintReport",
    "lint_model",
    "ModelDiff",
    "diff_models",
]
