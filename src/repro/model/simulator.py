"""An executable semantics for synthesized models.

The simulator runs an :class:`~repro.model.matchaction.NFModel` against
concrete packets and concrete state, which is what the paper's accuracy
experiment needs (§5: "we generate random inputs to both NFactor model
and the original program, and test whether they output the same
result").

Semantics: for each packet, find the entry whose guard (config ∧ flow
match ∧ state match) holds under the current state, then execute its
action program — the ordered slice statements of that path — with the
concrete interpreter.  If no entry matches, the packet takes the
low-priority default action, drop (paper §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.interp.interpreter import Env, Interpreter, NFRuntimeError
from repro.model.matchaction import CONFIG_NS, NFModel, STATE_NS, TableEntry
from repro.net.packet import Packet
from repro.symbolic.expr import SApp, SDictVal, SVar, Sym, _apply_concrete


class GuardEvalError(Exception):
    """A guard could not be evaluated (treated as not matching)."""


def eval_symbolic(value: Any, state: Dict[str, Any], pkt: Packet) -> Any:
    """Evaluate a symbolic tree under concrete state and packet."""
    if isinstance(value, SVar):
        name = value.name
        if name.startswith("pkt") and "." in name:
            fieldname = name.split(".", 1)[1]
            return getattr(pkt, fieldname)
        if name.startswith(CONFIG_NS):
            return _lookup(state, name[len(CONFIG_NS):])
        if name.startswith(STATE_NS):
            return _lookup(state, name[len(STATE_NS):])
        return _lookup(state, name)
    if isinstance(value, SDictVal):
        if value.key is None:
            raise GuardEvalError(f"dict value {value!r} has no key expression")
        holder = _lookup(state, value.dict_name)
        key = eval_symbolic(value.key, state, pkt)
        key = tuple(key) if isinstance(key, list) else key
        if key not in holder:
            raise GuardEvalError(f"key {key!r} not in {value.dict_name}")
        out = holder[key]
        for idx in value.path:
            out = out[idx]
        return out
    if isinstance(value, SApp):
        if value.op == "member":
            dict_name, key_sym = value.args
            holder = _lookup(state, dict_name)
            key = eval_symbolic(key_sym, state, pkt)
            key = tuple(key) if isinstance(key, list) else key
            return key in holder
        if value.op == "dictlen":
            return len(_lookup(state, value.args[0]))
        # Short-circuit forms must stay lazy: the untaken arm of a
        # conditional read (alias chains from the symbolic engine) may
        # reference a dict key that does not exist in this state.
        if value.op == "cond":
            test = bool(eval_symbolic(value.args[0], state, pkt))
            return eval_symbolic(value.args[1 if test else 2], state, pkt)
        if value.op == "and":
            result: Any = True
            for arm in value.args:
                result = eval_symbolic(arm, state, pkt)
                if not result:
                    return result
            return result
        if value.op == "or":
            result = False
            for arm in value.args:
                result = eval_symbolic(arm, state, pkt)
                if result:
                    return result
            return result
        args = tuple(eval_symbolic(a, state, pkt) for a in value.args)
        try:
            return _apply_concrete(value.op, args)
        except (TypeError, ValueError, IndexError, KeyError, ZeroDivisionError) as exc:
            raise GuardEvalError(f"op {value.op} failed: {exc}") from None
    if isinstance(value, tuple):
        return tuple(eval_symbolic(v, state, pkt) for v in value)
    if isinstance(value, list):
        return [eval_symbolic(v, state, pkt) for v in value]
    return value


def _lookup(state: Dict[str, Any], name: str) -> Any:
    if name not in state:
        raise GuardEvalError(f"state variable {name!r} missing")
    return state[name]


@dataclass
class SimStats:
    """Counters for one simulator lifetime."""

    packets: int = 0
    forwarded: int = 0
    dropped_default: int = 0
    dropped_entry: int = 0
    matched_entries: Dict[int, int] = field(default_factory=dict)


class ModelSimulator:
    """Executes a synthesized model over concrete packets."""

    def __init__(
        self,
        model: NFModel,
        init_state: Dict[str, Any],
        pkt_param: str = "pkt",
    ) -> None:
        self.model = model
        self.state = init_state
        self.pkt_param = pkt_param
        self.stats = SimStats()
        self._entries = model.all_entries()

    def match_entry(self, pkt: Packet) -> Optional[TableEntry]:
        """The first entry whose guard holds for ``pkt`` and current state."""
        for entry in self._entries:
            if self._guard_holds(entry, pkt):
                return entry
        return None

    def _guard_holds(self, entry: TableEntry, pkt: Packet) -> bool:
        try:
            return all(
                bool(eval_symbolic(c, self.state, pkt)) for c in entry.guard()
            )
        except GuardEvalError:
            return False

    def process(self, pkt: Packet) -> List[Tuple[Packet, Optional[int]]]:
        """Run one packet through the model; returns the packets sent."""
        self.stats.packets += 1
        entry = self.match_entry(pkt)
        if entry is None:
            self.stats.dropped_default += 1
            return []
        self.stats.matched_entries[entry.entry_id] = (
            self.stats.matched_entries.get(entry.entry_id, 0) + 1
        )
        sent = self._apply(entry, pkt)
        if sent:
            self.stats.forwarded += 1
        else:
            self.stats.dropped_entry += 1
        return sent

    def _apply(
        self, entry: TableEntry, pkt: Packet
    ) -> List[Tuple[Packet, Optional[int]]]:
        """Execute the entry's action program on the live state."""
        interp = Interpreter()
        env = Env(globals=self.state)
        self.state[self.pkt_param] = pkt.copy()
        try:
            interp.exec_block(entry.action_stmts, env, None)
        except NFRuntimeError as exc:
            raise NFRuntimeError(
                f"model action of entry {entry.entry_id} failed: {exc}"
            ) from exc
        finally:
            self.state.pop(self.pkt_param, None)
        return interp.sent
