"""An executable semantics for synthesized models.

The simulator runs an :class:`~repro.model.matchaction.NFModel` against
concrete packets and concrete state, which is what the paper's accuracy
experiment needs (§5: "we generate random inputs to both NFactor model
and the original program, and test whether they output the same
result").

Semantics: for each packet, find the entry whose guard (config ∧ flow
match ∧ state match) holds under the current state, then execute its
action program — the ordered slice statements of that path — with the
concrete interpreter.  If no entry matches, the packet takes the
low-priority default action, drop (paper §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.interp.interpreter import Env, Interpreter, NFRuntimeError
from repro.model.matchaction import CONFIG_NS, NFModel, STATE_NS, TableEntry
from repro.net.packet import Packet
from repro.symbolic.expr import SApp, SDictVal, SVar, Sym, _apply_concrete


class GuardEvalError(Exception):
    """A guard could not be evaluated (treated as not matching)."""


def eval_symbolic(value: Any, state: Dict[str, Any], pkt: Packet) -> Any:
    """Evaluate a symbolic tree under concrete state and packet."""
    if isinstance(value, SVar):
        name = value.name
        if name.startswith("pkt") and "." in name:
            fieldname = name.split(".", 1)[1]
            return getattr(pkt, fieldname)
        if name.startswith(CONFIG_NS):
            return _lookup(state, name[len(CONFIG_NS):])
        if name.startswith(STATE_NS):
            return _lookup(state, name[len(STATE_NS):])
        return _lookup(state, name)
    if isinstance(value, SDictVal):
        if value.key is None:
            raise GuardEvalError(f"dict value {value!r} has no key expression")
        holder = _lookup(state, value.dict_name)
        key = eval_symbolic(value.key, state, pkt)
        key = tuple(key) if isinstance(key, list) else key
        if key not in holder:
            raise GuardEvalError(f"key {key!r} not in {value.dict_name}")
        out = holder[key]
        for idx in value.path:
            out = out[idx]
        return out
    if isinstance(value, SApp):
        if value.op == "member":
            dict_name, key_sym = value.args
            holder = _lookup(state, dict_name)
            key = eval_symbolic(key_sym, state, pkt)
            key = tuple(key) if isinstance(key, list) else key
            return key in holder
        if value.op == "dictlen":
            return len(_lookup(state, value.args[0]))
        # Short-circuit forms must stay lazy: the untaken arm of a
        # conditional read (alias chains from the symbolic engine) may
        # reference a dict key that does not exist in this state.
        if value.op == "cond":
            test = bool(eval_symbolic(value.args[0], state, pkt))
            return eval_symbolic(value.args[1 if test else 2], state, pkt)
        if value.op == "and":
            result: Any = True
            for arm in value.args:
                result = eval_symbolic(arm, state, pkt)
                if not result:
                    return result
            return result
        if value.op == "or":
            result = False
            for arm in value.args:
                result = eval_symbolic(arm, state, pkt)
                if result:
                    return result
            return result
        args = tuple(eval_symbolic(a, state, pkt) for a in value.args)
        try:
            return _apply_concrete(value.op, args)
        except (TypeError, ValueError, IndexError, KeyError, ZeroDivisionError) as exc:
            raise GuardEvalError(f"op {value.op} failed: {exc}") from None
    if isinstance(value, tuple):
        return tuple(eval_symbolic(v, state, pkt) for v in value)
    if isinstance(value, list):
        return [eval_symbolic(v, state, pkt) for v in value]
    return value


def _lookup(state: Dict[str, Any], name: str) -> Any:
    if name not in state:
        raise GuardEvalError(f"state variable {name!r} missing")
    return state[name]


@dataclass
class SimStats:
    """Counters for one simulator lifetime."""

    packets: int = 0
    forwarded: int = 0
    dropped_default: int = 0
    dropped_entry: int = 0
    #: Full-guard evaluations — the work the exact-match index avoids.
    guard_evals: int = 0
    #: Dispatch-tree walks by the compiled simulator (always 0 here).
    compiled_dispatches: int = 0
    matched_entries: Dict[int, int] = field(default_factory=dict)


def _merge_by_position(
    bucket: List[Tuple[int, Any]], residual: List[Tuple[int, Any]]
) -> List[Tuple[int, Any]]:
    """Merge two position-sorted ``(pos, item)`` lists, preserving order."""
    merged: List[Tuple[int, Any]] = []
    i = j = 0
    while i < len(bucket) and j < len(residual):
        if bucket[i][0] < residual[j][0]:
            merged.append(bucket[i])
            i += 1
        else:
            merged.append(residual[j])
            j += 1
    merged.extend(bucket[i:])
    merged.extend(residual[j:])
    return merged


def _concrete_eq_fields(
    entry: TableEntry, state: Dict[str, Any]
) -> Dict[str, int]:
    """Packet fields pinned to a concrete value by the entry's flow match.

    A conjunct pins a field when it is ``pkt.f == rhs`` (either side)
    with ``rhs`` an int literal or a config variable resolvable in the
    *initial* state — sound because cfgVars are read-only on the packet
    path by the StateAlyzer classification, so the resolved value never
    changes over the simulator's lifetime.
    """

    def resolve(value: Any) -> Optional[int]:
        if isinstance(value, bool) or not isinstance(value, (int, SVar)):
            return None
        if isinstance(value, SVar):
            if not value.name.startswith(CONFIG_NS):
                return None
            concrete = state.get(value.name[len(CONFIG_NS):])
            return concrete if type(concrete) is int else None
        return value

    def packet_field(value: Any) -> Optional[str]:
        if isinstance(value, SVar) and value.name.startswith("pkt") and "." in value.name:
            return value.name.split(".", 1)[1]
        return None

    pinned: Dict[str, int] = {}
    for c in entry.match_flow:
        if not (isinstance(c, SApp) and c.op == "==" and len(c.args) == 2):
            continue
        lhs, rhs = c.args
        for var, const in ((lhs, rhs), (rhs, lhs)):
            fieldname = packet_field(var)
            value = resolve(const)
            if fieldname is not None and value is not None:
                pinned.setdefault(fieldname, value)
    return pinned


class ModelSimulator:
    """Executes a synthesized model over concrete packets.

    Matching uses an **exact-match index** instead of a per-packet
    linear scan over every entry: at construction time the simulator
    picks the packet field that most entries pin to a concrete value
    (``pkt.f == const`` conjuncts, config vars resolved against the
    initial state) and buckets those entries by value.  A lookup then
    evaluates only the bucket for the packet's value plus the
    non-indexable *residual* entries, merged back into priority
    (insertion) order — so the first matching entry is byte-identical
    to the scan's, just found after fewer guard evaluations.  Entries
    skipped by the index carry a pinning conjunct that is false for the
    packet, so their guards could never have held.  ``use_index=False``
    forces the plain scan (the equivalence reference for tests).
    """

    def __init__(
        self,
        model: NFModel,
        init_state: Dict[str, Any],
        pkt_param: str = "pkt",
        use_index: bool = True,
    ) -> None:
        self.model = model
        self.state = init_state
        self.pkt_param = pkt_param
        self.stats = SimStats()
        self._entries = model.all_entries()
        self.index_field: Optional[str] = None
        self._index: Dict[int, List[Tuple[int, TableEntry]]] = {}
        self._residual: List[Tuple[int, TableEntry]] = []
        self._merged: Dict[int, List[TableEntry]] = {}
        self._residual_entries: List[TableEntry] = []
        if use_index:
            self._build_index()

    def _build_index(self) -> None:
        pinned = [
            _concrete_eq_fields(entry, self.state) for entry in self._entries
        ]
        coverage: Dict[str, int] = {}
        for fields in pinned:
            for name in fields:
                coverage[name] = coverage.get(name, 0) + 1
        if not coverage:
            return
        max_cov = max(coverage.values())
        if max_cov < 2:
            return  # an index over one entry saves nothing
        # Best-covered field wins; explicit min-name tie-break keeps the
        # choice deterministic across runs.
        best = min(name for name, n in coverage.items() if n == max_cov)
        self.index_field = best
        for pos, (entry, fields) in enumerate(zip(self._entries, pinned)):
            if best in fields:
                self._index.setdefault(fields[best], []).append((pos, entry))
            else:
                self._residual.append((pos, entry))
        # Pre-merge each bucket with the residual once, so the per-packet
        # lookup is a single dict get instead of a list merge.
        self._residual_entries = [entry for _pos, entry in self._residual]
        for value, bucket in self._index.items():
            self._merged[value] = [
                entry
                for _pos, entry in _merge_by_position(bucket, self._residual)
            ]

    def _candidates(self, pkt: Packet) -> List[TableEntry]:
        if self.index_field is None:
            return self._entries
        merged = self._merged.get(getattr(pkt, self.index_field))
        return merged if merged is not None else self._residual_entries

    def match_entry(self, pkt: Packet) -> Optional[TableEntry]:
        """The first entry whose guard holds for ``pkt`` and current state."""
        for entry in self._candidates(pkt):
            if self._guard_holds(entry, pkt):
                return entry
        return None

    def _guard_holds(self, entry: TableEntry, pkt: Packet) -> bool:
        self.stats.guard_evals += 1
        try:
            return all(
                bool(eval_symbolic(c, self.state, pkt)) for c in entry.guard()
            )
        except GuardEvalError:
            return False

    def process(self, pkt: Packet) -> List[Tuple[Packet, Optional[int]]]:
        """Run one packet through the model; returns the packets sent."""
        self.stats.packets += 1
        entry = self.match_entry(pkt)
        if entry is None:
            self.stats.dropped_default += 1
            return []
        self.stats.matched_entries[entry.entry_id] = (
            self.stats.matched_entries.get(entry.entry_id, 0) + 1
        )
        sent = self._apply(entry, pkt)
        if sent:
            self.stats.forwarded += 1
        else:
            self.stats.dropped_entry += 1
        return sent

    def _apply(
        self, entry: TableEntry, pkt: Packet
    ) -> List[Tuple[Packet, Optional[int]]]:
        """Execute the entry's action program on the live state."""
        interp = Interpreter()
        env = Env(globals=self.state)
        self.state[self.pkt_param] = pkt.copy()
        try:
            interp.exec_block(entry.action_stmts, env, None)
        except NFRuntimeError as exc:
            raise NFRuntimeError(
                f"model action of entry {entry.entry_id} failed: {exc}"
            ) from exc
        finally:
            self.state.pop(self.pkt_param, None)
        return interp.sent
