"""A finite-state-machine view of the model (paper §2.4).

"The state transition logic can be used to build a finite state
machine, which is proposed and used in network testing solutions
[BUZZ]."  The FSM abstracts a single flow's journey through the NF:

* an FSM **state** is a truth assignment to the model's state
  predicates — the dict-membership atoms (is the flow in the NAT
  table?) plus any scalar-state equality atoms appearing in matches;
* a **transition** is a table entry: it fires in states satisfying the
  entry's state match, and moves to the state updated by the entry's
  state action (a store into a dict sets its membership atom, a delete
  clears it).

The test-generation application walks this FSM to build packet
sequences that drive the NF into every reachable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lang.ir import LSub, SAssign, SDelete
from repro.model.matchaction import NFModel, TableEntry
from repro.symbolic.expr import SApp, SDictVal, Sym, sym_vars

#: An FSM state: frozen set of (dict_name, is_member) truth literals.
FsmState = FrozenSet[Tuple[str, bool]]


@dataclass(frozen=True)
class Transition:
    """One FSM edge: entry ``entry_id`` moves ``src`` to ``dst``."""

    src: FsmState
    dst: FsmState
    entry_id: int
    forwards: bool


@dataclass
class StateMachine:
    """The per-flow state machine extracted from a model."""

    atoms: Tuple[str, ...]
    initial: FsmState
    states: Set[FsmState] = field(default_factory=set)
    transitions: List[Transition] = field(default_factory=list)

    def successors(self, state: FsmState) -> List[Transition]:
        return [t for t in self.transitions if t.src == state]

    def reachable_states(self) -> Set[FsmState]:
        """States reachable from the initial state."""
        seen = {self.initial}
        work = [self.initial]
        while work:
            cur = work.pop()
            for t in self.successors(cur):
                if t.dst not in seen:
                    seen.add(t.dst)
                    work.append(t.dst)
        return seen

    def paths_to_all_states(self) -> Dict[FsmState, List[Transition]]:
        """A shortest transition sequence from initial to each state."""
        paths: Dict[FsmState, List[Transition]] = {self.initial: []}
        frontier = [self.initial]
        while frontier:
            nxt: List[FsmState] = []
            for state in frontier:
                for t in self.successors(state):
                    if t.dst not in paths:
                        paths[t.dst] = paths[state] + [t]
                        nxt.append(t.dst)
            frontier = nxt
        return paths

    def render_state(self, state: FsmState) -> str:
        parts = [f"{name}∋f" if member else f"{name}∌f" for name, member in sorted(state)]
        return "{" + ", ".join(parts) + "}" if parts else "{∅}"

    def to_dot(self) -> str:
        """Graphviz rendering of the reachable part of the FSM."""
        reachable = self.reachable_states()
        index = {state: i for i, state in enumerate(sorted(reachable, key=sorted))}
        lines = ["digraph fsm {", "  rankdir=LR;"]
        for state, i in index.items():
            shape = "doublecircle" if state == self.initial else "circle"
            label = self.render_state(state).replace("∋", " has ").replace("∌", " w/o ")
            lines.append(f'  s{i} [shape={shape}, label="{label}"];')
        for t in self.transitions:
            if t.src not in index or t.dst not in index:
                continue
            style = "solid" if t.forwards else "dashed"
            lines.append(
                f'  s{index[t.src]} -> s{index[t.dst]} '
                f'[label="e{t.entry_id}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)


def _entry_atom_requirements(entry: TableEntry) -> Dict[str, bool]:
    """Membership truth values the entry's state match requires."""
    required: Dict[str, bool] = {}
    for c in entry.match_state:
        polarity = True
        inner = c
        if isinstance(c, SApp) and c.op == "not":
            polarity = False
            inner = c.args[0]
        if isinstance(inner, SApp) and inner.op == "member":
            required[inner.args[0]] = polarity
    return required


def _entry_atom_effects(entry: TableEntry) -> Dict[str, bool]:
    """Membership changes the entry's state action performs."""
    from repro.lang.ir import SExpr, call_mutated_names, ECall

    effects: Dict[str, bool] = {}
    for stmt in entry.state_action_stmts:
        if isinstance(stmt, SAssign):
            for target in stmt.targets:
                if isinstance(target, LSub):
                    effects[target.base] = True
        elif isinstance(stmt, SDelete) and stmt.target is not None:
            effects[stmt.target.base] = False
        elif isinstance(stmt, SExpr) and isinstance(stmt.value, ECall):
            call = stmt.value
            if call.method and call.func == "clear":
                for var in call_mutated_names(call):
                    effects[var] = False
    return effects


def build_fsm(model: NFModel) -> StateMachine:
    """Build the per-flow FSM of a model.

    Only dict-membership predicates are tracked (scalar state like a
    round-robin index is flow-independent and does not partition the
    per-flow state space).
    """
    atom_names: Set[str] = set()
    for entry in model.all_entries():
        atom_names |= set(_entry_atom_requirements(entry))
        atom_names |= set(_entry_atom_effects(entry))
    atoms = tuple(sorted(atom_names))

    initial: FsmState = frozenset((name, False) for name in atoms)
    fsm = StateMachine(atoms=atoms, initial=initial)
    fsm.states.add(initial)

    # Enumerate all assignments (few atoms per NF) and apply entries.
    n = len(atoms)
    for mask in range(1 << n):
        src: FsmState = frozenset(
            (atoms[i], bool(mask >> i & 1)) for i in range(n)
        )
        src_map = dict(src)
        for entry in model.all_entries():
            required = _entry_atom_requirements(entry)
            if any(src_map.get(name) != value for name, value in required.items()):
                continue
            effects = _entry_atom_effects(entry)
            dst_map = dict(src_map)
            dst_map.update(effects)
            dst: FsmState = frozenset(dst_map.items())
            fsm.states.add(src)
            fsm.states.add(dst)
            fsm.transitions.append(
                Transition(src=src, dst=dst, entry_id=entry.entry_id, forwards=not entry.drops)
            )
    return fsm
