"""Stateful match/action tables — the NFactor model (paper §2.3).

Each execution path of the sliced program becomes one
:class:`TableEntry` (Algorithm 1 lines 11–16):

* its path condition splits into **config**, **flow match** and
  **state match** constraint conjunctions;
* its action is the ordered list of sliced statements the path
  executed, split into the packet action and the state transition.

Constraint classification follows the paper exactly: the conjunction of
condition statements is intersected with the cfgVars / pktVars /
oisVars.  Here the intersection is computed on the symbolic *leaves* of
each constraint — leaves are namespaced at synthesis time
(``cfg.*`` / ``pkt*.*`` / ``st.*`` plus dict-membership atoms), so the
split is unambiguous: anything touching state goes to the state match,
else anything touching the packet goes to the flow match, else config.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lang.ir import Stmt
from repro.lang.pretty import pretty_stmt
from repro.symbolic.expr import SApp, SDictVal, SVar, Sym, canon, sym_vars

CONFIG_NS = "cfg."
PACKET_NS = "pkt"
STATE_NS = "st."


def classify_leaf(leaf: Sym) -> str:
    """Classify one symbolic leaf as ``config`` / ``flow`` / ``state``."""
    if isinstance(leaf, SDictVal):
        return "state"
    if isinstance(leaf, SApp) and leaf.op in ("member", "dictlen"):
        return "state"
    if isinstance(leaf, SVar):
        if leaf.name.startswith(CONFIG_NS):
            return "config"
        if leaf.name.startswith(STATE_NS):
            return "state"
        if leaf.name.startswith(PACKET_NS):
            return "flow"
    return "flow"


def split_constraints(
    constraints: Sequence[Any],
) -> Tuple[List[Any], List[Any], List[Any]]:
    """Split a path condition into (config, flow-match, state-match).

    Classification priority is state > flow > config: a constraint
    relating packet fields to state (e.g. a flow-table membership atom
    over the packet 4-tuple) belongs to the state match, and one
    relating packet fields to configuration (``pkt.dport == cfg.port``)
    to the flow match — mirroring Algorithm 1's intersections.
    """
    config: List[Any] = []
    flow: List[Any] = []
    state: List[Any] = []
    for c in constraints:
        kinds = {classify_leaf(leaf) for leaf in sym_vars(c)}
        if "state" in kinds:
            state.append(c)
        elif "flow" in kinds:
            flow.append(c)
        else:
            config.append(c)
    return config, flow, state


@dataclass
class TableEntry:
    """One match/action entry (one refined execution path)."""

    entry_id: int
    config: List[Any]
    match_flow: List[Any]
    match_state: List[Any]
    action_stmts: List[Stmt]
    pkt_action_stmts: List[Stmt]
    state_action_stmts: List[Stmt]
    sent: List[Tuple[Dict[str, Any], Optional[Any]]]
    path_id: int = 0
    priority: int = 0

    @property
    def drops(self) -> bool:
        """True when the entry forwards nothing (drop action)."""
        return not self.sent

    def guard(self) -> List[Any]:
        """The full applicability condition (config ∧ flow ∧ state)."""
        return list(self.config) + list(self.match_flow) + list(self.match_state)

    def flow_transform(self) -> Dict[str, Any]:
        """Output field → symbolic value, for fields the entry rewrites."""
        if not self.sent:
            return {}
        fields, _port = self.sent[0]
        out: Dict[str, Any] = {}
        for name, value in fields.items():
            if not (isinstance(value, SVar) and value.name == f"pkt.{name}"):
                out[name] = value
        return out

    def config_key(self) -> str:
        """Canonical key grouping entries into per-config tables."""
        return " & ".join(sorted(canon(c) for c in self.config)) or "*"


@dataclass
class Table:
    """All entries that share one configuration constraint set."""

    config: List[Any]
    entries: List[TableEntry] = field(default_factory=list)

    def add(self, entry: TableEntry) -> None:
        self.entries.append(entry)


@dataclass
class NFModel:
    """The synthesized forwarding model of one NF."""

    name: str
    tables: Dict[str, Table] = field(default_factory=dict)
    ois_vars: Set[str] = field(default_factory=set)
    cfg_vars: Set[str] = field(default_factory=set)
    pkt_vars: Set[str] = field(default_factory=set)
    log_vars: Set[str] = field(default_factory=set)
    default_action: str = "drop"

    def add_entry(self, entry: TableEntry) -> None:
        """Route an entry into its per-config table (Algorithm 1 line 16)."""
        key = entry.config_key()
        table = self.tables.get(key)
        if table is None:
            table = Table(config=list(entry.config))
            self.tables[key] = table
        table.add(entry)

    def all_entries(self) -> List[TableEntry]:
        """Every entry across tables, in insertion order."""
        out: List[TableEntry] = []
        for table in self.tables.values():
            out.extend(table.entries)
        return out

    @property
    def n_entries(self) -> int:
        return sum(len(t.entries) for t in self.tables.values())

    def forwarding_entries(self) -> List[TableEntry]:
        """Entries that forward (non-drop)."""
        return [e for e in self.all_entries() if not e.drops]

    def drop_entries(self) -> List[TableEntry]:
        """Explicit drop entries (the implicit default drop is separate)."""
        return [e for e in self.all_entries() if e.drops]

    def state_atoms(self) -> Set[str]:
        """Canonical names of all state-membership atoms in the model."""
        atoms: Set[str] = set()
        for entry in self.all_entries():
            for c in entry.match_state:
                for leaf in sym_vars(c):
                    if isinstance(leaf, SApp) and leaf.op == "member":
                        atoms.add(leaf.args[0])
        return atoms

    def summary(self) -> str:
        """One-line description for logs and reports."""
        return (
            f"NFModel({self.name}: {len(self.tables)} config table(s), "
            f"{self.n_entries} entries, default={self.default_action})"
        )
