"""Behavioural comparison of two NF models.

Motivated by the paper's introduction: "implementations of the same
network function by different vendors may not be modeled correctly by
the same abstract model" — with NFactor each implementation gets its
*own* synthesized model, and this module answers whether two such
models behave the same.

The comparison is behavioural, not syntactic (two implementations of
one function rarely share structure): both models run in fresh
simulators over the same seeded workload, in lockstep, and every
divergence in forwarding verdict or output packet is reported.  A
structural summary (state tables, matched fields, rewritten fields) is
included to explain *where* two NFs differ.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.net.generator import TrafficGenerator, WorkloadSpec
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.nfactor.algorithm import SynthesisResult


@dataclass
class Divergence:
    """One packet on which the two models disagree."""

    index: int
    packet: Packet
    out_a: List[Tuple[Packet, Optional[int]]]
    out_b: List[Tuple[Packet, Optional[int]]]

    @property
    def verdict_differs(self) -> bool:
        """True when one forwards and the other drops."""
        return bool(self.out_a) != bool(self.out_b)


@dataclass
class ModelDiff:
    """The outcome of comparing two models."""

    name_a: str
    name_b: str
    n_packets: int = 0
    n_agreements: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    state_tables_only_a: Set[str] = field(default_factory=set)
    state_tables_only_b: Set[str] = field(default_factory=set)
    match_fields_only_a: Set[str] = field(default_factory=set)
    match_fields_only_b: Set[str] = field(default_factory=set)
    rewrite_fields_only_a: Set[str] = field(default_factory=set)
    rewrite_fields_only_b: Set[str] = field(default_factory=set)

    @property
    def behaviourally_equal(self) -> bool:
        """No divergence observed on the sampled workload."""
        return not self.divergences

    def summary(self) -> str:
        verdict = (
            "no divergence observed"
            if self.behaviourally_equal
            else f"{len(self.divergences)} diverging packets"
        )
        return (
            f"{self.name_a} vs {self.name_b}: {self.n_packets} packets, {verdict}"
        )


def diff_models(
    result_a: "SynthesisResult",
    result_b: "SynthesisResult",
    n_packets: int = 500,
    seed: int = 7,
    interesting: Optional[dict] = None,
    max_divergences: int = 16,
) -> ModelDiff:
    """Compare two synthesized NFs behaviourally and structurally."""
    from repro.apps.compose import match_fields, rewrite_fields

    model_a, model_b = result_a.model, result_b.model
    diff = ModelDiff(name_a=model_a.name, name_b=model_b.name)

    atoms_a, atoms_b = set(model_a.state_atoms()), set(model_b.state_atoms())
    diff.state_tables_only_a = atoms_a - atoms_b
    diff.state_tables_only_b = atoms_b - atoms_a
    mf_a, mf_b = match_fields(model_a), match_fields(model_b)
    diff.match_fields_only_a = mf_a - mf_b
    diff.match_fields_only_b = mf_b - mf_a
    rw_a, rw_b = rewrite_fields(model_a), rewrite_fields(model_b)
    diff.rewrite_fields_only_a = rw_a - rw_b
    diff.rewrite_fields_only_b = rw_b - rw_a

    sim_a = result_a.make_simulator()
    sim_b = result_b.make_simulator()
    generator = TrafficGenerator(
        WorkloadSpec(n_packets=n_packets, seed=seed, interesting=interesting or {})
    )
    for index, pkt in enumerate(generator.packets()):
        out_a = sim_a.process(pkt.copy())
        out_b = sim_b.process(pkt.copy())
        diff.n_packets += 1
        if out_a == out_b:
            diff.n_agreements += 1
        elif len(diff.divergences) < max_divergences:
            diff.divergences.append(
                Divergence(index=index, packet=pkt, out_a=out_a, out_b=out_b)
            )
    return diff


# ---------------------------------------------------------------------------
# Structural changelog (``model.diff`` for the watch loop)
# ---------------------------------------------------------------------------
#
# ``diff_models`` above answers "do two *different* NFs behave alike" by
# running workloads.  The watch daemon needs the other question: between
# two *versions* of the same NF, which table entries were added, removed
# or changed?  That is a structural diff over the canonical serialized
# form (:func:`repro.model.serialize.model_to_dict`), cheap enough to
# run on every rebuild and stable enough to log.


def _entry_fields(entry: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "match.flow": entry["match"]["flow"],
        "match.state": entry["match"]["state"],
        "action.flow": entry["action"]["flow"],
        "action.state": entry["action"]["state"],
        "drops": entry["drops"],
    }


def _entry_signature(entry: Dict[str, Any]) -> Tuple:
    return tuple(sorted(_entry_fields(entry).items()))


@dataclass
class ChangelogEntry:
    """One added/removed/changed entry in a :class:`ModelChangelog`."""

    kind: str  # "added" | "removed" | "changed"
    config: str
    entry_id: int
    #: For "changed": field name -> {"old": ..., "new": ...} deltas over
    #: guard (match.*) and action (action.*, drops) texts.
    fields: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind, "config": self.config, "entry_id": self.entry_id,
        }
        if self.fields:
            out["fields"] = {k: dict(v) for k, v in sorted(self.fields.items())}
        return out


@dataclass
class ModelChangelog:
    """Entry-level delta between two versions of one model."""

    name: str
    added: List[ChangelogEntry] = field(default_factory=list)
    removed: List[ChangelogEntry] = field(default_factory=list)
    changed: List[ChangelogEntry] = field(default_factory=list)
    unchanged: int = 0

    @property
    def empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "added": [e.to_dict() for e in self.added],
            "removed": [e.to_dict() for e in self.removed],
            "changed": [e.to_dict() for e in self.changed],
            "unchanged": self.unchanged,
        }

    def to_json(self) -> str:
        """Stable JSON: fixed list order (config, entry id), sorted keys."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def summary(self) -> str:
        return (
            f"+{len(self.added)} -{len(self.removed)} ~{len(self.changed)} "
            f"={self.unchanged}"
        )


def _as_model_dict(model: Any) -> Dict[str, Any]:
    if isinstance(model, str):
        return json.loads(model)
    if isinstance(model, dict):
        return model
    from repro.model.serialize import model_to_dict

    return model_to_dict(model)


def model_changelog(old: Any, new: Any) -> ModelChangelog:
    """Structural diff of two serialized models (dict, JSON str or model).

    Per config table: entries whose full (guard, action, drops) signature
    appears on both sides pair off as unchanged — a reorder-only edit
    yields an empty changelog.  Leftovers sharing an entry id within the
    same table are reported as *changed* with per-field old/new deltas
    (so a guard-identical action edit shows only action fields); the
    rest are added/removed — an id vanishing from one table and
    appearing in another is a removal plus an addition, not a change.
    """
    old_dict, new_dict = _as_model_dict(old), _as_model_dict(new)
    log = ModelChangelog(name=new_dict.get("name") or old_dict.get("name") or "")
    old_tables = {t["config"]: list(t["entries"]) for t in old_dict["tables"]}
    new_tables = {t["config"]: list(t["entries"]) for t in new_dict["tables"]}
    for config in sorted(set(old_tables) | set(new_tables), key=repr):
        old_entries = old_tables.get(config, [])
        new_entries = new_tables.get(config, [])
        old_by_sig: Dict[Tuple, List[Dict[str, Any]]] = {}
        for entry in old_entries:
            old_by_sig.setdefault(_entry_signature(entry), []).append(entry)
        rest_new: List[Dict[str, Any]] = []
        for entry in new_entries:
            bucket = old_by_sig.get(_entry_signature(entry))
            if bucket:
                bucket.pop()  # paired: identical content, position ignored
                log.unchanged += 1
            else:
                rest_new.append(entry)
        rest_old = [e for bucket in old_by_sig.values() for e in bucket]
        old_by_id = {e["entry_id"]: e for e in rest_old}
        for entry in rest_new:
            prev = old_by_id.pop(entry["entry_id"], None)
            if prev is None:
                log.added.append(
                    ChangelogEntry("added", config, entry["entry_id"])
                )
                continue
            deltas = {
                name: {"old": before, "new": after}
                for (name, before), after in zip(
                    sorted(_entry_fields(prev).items()),
                    (v for _, v in sorted(_entry_fields(entry).items())),
                )
                if before != after
            }
            log.changed.append(
                ChangelogEntry("changed", config, entry["entry_id"], deltas)
            )
        for entry_id in old_by_id:
            log.removed.append(ChangelogEntry("removed", config, entry_id))
    for bucket in (log.added, log.removed, log.changed):
        bucket.sort(key=lambda e: (e.config, e.entry_id))
    return log
