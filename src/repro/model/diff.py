"""Behavioural comparison of two NF models.

Motivated by the paper's introduction: "implementations of the same
network function by different vendors may not be modeled correctly by
the same abstract model" — with NFactor each implementation gets its
*own* synthesized model, and this module answers whether two such
models behave the same.

The comparison is behavioural, not syntactic (two implementations of
one function rarely share structure): both models run in fresh
simulators over the same seeded workload, in lockstep, and every
divergence in forwarding verdict or output packet is reported.  A
structural summary (state tables, matched fields, rewritten fields) is
included to explain *where* two NFs differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.net.generator import TrafficGenerator, WorkloadSpec
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.nfactor.algorithm import SynthesisResult


@dataclass
class Divergence:
    """One packet on which the two models disagree."""

    index: int
    packet: Packet
    out_a: List[Tuple[Packet, Optional[int]]]
    out_b: List[Tuple[Packet, Optional[int]]]

    @property
    def verdict_differs(self) -> bool:
        """True when one forwards and the other drops."""
        return bool(self.out_a) != bool(self.out_b)


@dataclass
class ModelDiff:
    """The outcome of comparing two models."""

    name_a: str
    name_b: str
    n_packets: int = 0
    n_agreements: int = 0
    divergences: List[Divergence] = field(default_factory=list)
    state_tables_only_a: Set[str] = field(default_factory=set)
    state_tables_only_b: Set[str] = field(default_factory=set)
    match_fields_only_a: Set[str] = field(default_factory=set)
    match_fields_only_b: Set[str] = field(default_factory=set)
    rewrite_fields_only_a: Set[str] = field(default_factory=set)
    rewrite_fields_only_b: Set[str] = field(default_factory=set)

    @property
    def behaviourally_equal(self) -> bool:
        """No divergence observed on the sampled workload."""
        return not self.divergences

    def summary(self) -> str:
        verdict = (
            "no divergence observed"
            if self.behaviourally_equal
            else f"{len(self.divergences)} diverging packets"
        )
        return (
            f"{self.name_a} vs {self.name_b}: {self.n_packets} packets, {verdict}"
        )


def diff_models(
    result_a: "SynthesisResult",
    result_b: "SynthesisResult",
    n_packets: int = 500,
    seed: int = 7,
    interesting: Optional[dict] = None,
    max_divergences: int = 16,
) -> ModelDiff:
    """Compare two synthesized NFs behaviourally and structurally."""
    from repro.apps.compose import match_fields, rewrite_fields

    model_a, model_b = result_a.model, result_b.model
    diff = ModelDiff(name_a=model_a.name, name_b=model_b.name)

    atoms_a, atoms_b = set(model_a.state_atoms()), set(model_b.state_atoms())
    diff.state_tables_only_a = atoms_a - atoms_b
    diff.state_tables_only_b = atoms_b - atoms_a
    mf_a, mf_b = match_fields(model_a), match_fields(model_b)
    diff.match_fields_only_a = mf_a - mf_b
    diff.match_fields_only_b = mf_b - mf_a
    rw_a, rw_b = rewrite_fields(model_a), rewrite_fields(model_b)
    diff.rewrite_fields_only_a = rw_a - rw_b
    diff.rewrite_fields_only_b = rw_b - rw_a

    sim_a = result_a.make_simulator()
    sim_b = result_b.make_simulator()
    generator = TrafficGenerator(
        WorkloadSpec(n_packets=n_packets, seed=seed, interesting=interesting or {})
    )
    for index, pkt in enumerate(generator.packets()):
        out_a = sim_a.process(pkt.copy())
        out_b = sim_b.process(pkt.copy())
        diff.n_packets += 1
        if out_a == out_b:
            diff.n_agreements += 1
        elif len(diff.divergences) < max_divergences:
            diff.divergences.append(
                Divergence(index=index, packet=pkt, out_a=out_a, out_b=out_b)
            )
    return diff
