"""Model well-formedness checking.

A synthesized model should behave like the deterministic program it
came from: within one configuration, entry guards must be *mutually
exclusive* (no packet/state matches two entries) and the action of
every reachable entry must be replayable.  Violations indicate a bug in
the pipeline — or a model edited by hand before deployment, which is
exactly when a vendor shipping models (the paper's deployment story)
wants a linter.

Exclusivity is checked two ways:

* **symbolically** — pairwise guard-conjunction satisfiability (a SAT
  result is a definite overlap witness; ``unknown`` pairs are reported
  separately because the sampling solver cannot refute them);
* **empirically** — on a seeded workload, every packet must match at
  most one entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.model.matchaction import NFModel, TableEntry
from repro.net.generator import TrafficGenerator, WorkloadSpec
from repro.symbolic.solver import Solver


@dataclass
class LintReport:
    """Outcome of one model lint."""

    model_name: str
    n_entries: int = 0
    pairs_checked: int = 0
    overlaps: List[Tuple[int, int]] = field(default_factory=list)
    undecided: List[Tuple[int, int]] = field(default_factory=list)
    empty_guards: List[int] = field(default_factory=list)
    empirical_overlaps: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No definite problem found (undecided pairs are tolerated)."""
        return not self.overlaps and not self.empirical_overlaps

    def summary(self) -> str:
        status = "clean" if self.clean else (
            f"{len(self.overlaps)} symbolic + "
            f"{len(self.empirical_overlaps)} empirical overlaps"
        )
        return (
            f"{self.model_name}: {self.n_entries} entries, "
            f"{self.pairs_checked} pairs checked -> {status} "
            f"({len(self.undecided)} undecided)"
        )


def lint_model(
    model: NFModel,
    solver: Optional[Solver] = None,
    max_pairwise_entries: int = 64,
    workload: Optional[WorkloadSpec] = None,
    simulator=None,
) -> LintReport:
    """Check guard disjointness of a model.

    Pairwise symbolic checking is quadratic, so tables larger than
    ``max_pairwise_entries`` fall back to the empirical check alone
    (pass a ``simulator`` built from the synthesis result to enable
    it; without one, only the symbolic check runs).
    """
    solver = solver or Solver()
    report = LintReport(model_name=model.name, n_entries=model.n_entries)

    for table in model.tables.values():
        entries = table.entries
        for entry in entries:
            if not entry.guard():
                report.empty_guards.append(entry.entry_id)
        if len(entries) > max_pairwise_entries:
            continue
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                report.pairs_checked += 1
                both = entries[i].guard() + entries[j].guard()
                result = solver.check(both)
                if result.status == "sat":
                    report.overlaps.append(
                        (entries[i].entry_id, entries[j].entry_id)
                    )
                elif result.status == "unknown":
                    report.undecided.append(
                        (entries[i].entry_id, entries[j].entry_id)
                    )

    if simulator is not None:
        spec = workload or WorkloadSpec(n_packets=300, seed=5)
        for pkt in TrafficGenerator(spec).packets():
            matching = [
                e.entry_id
                for e in model.all_entries()
                if simulator._guard_holds(e, pkt)
            ]
            if len(matching) > 1:
                report.empirical_overlaps.append((matching[0], matching[1]))
            simulator.process(pkt)  # advance state like real traffic would
    return report
