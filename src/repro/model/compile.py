"""A model compiler: lower an :class:`NFModel` to fast Python closures.

:class:`~repro.model.simulator.ModelSimulator` interprets every guard
AST node-by-node via ``eval_symbolic`` on every packet.  This module
lowers the model **once**, at build time, into a form where the
per-packet work is a handful of compiled-function calls:

1. **Static config folding** — config-partition conjuncts
   (``cfg.*``-only guards) reference variables the StateAlyzer proved
   read-only on the packet path, so they are evaluated once against
   the initial state.  Entries whose config guard is false (or
   unevaluable — the interpreter treats both as "never matches") are
   pruned from the dataplane entirely; the surviving entries drop
   their config conjuncts and have ``cfg.`` leaves inside the
   remaining flow/state conjuncts replaced by literal constants.

2. **Decision-tree dispatch** — the single-field exact-match index of
   the simulator generalizes to a nested tree: each inner node tests
   one packet field and branches on its concrete value; entries that
   pin that field to a different value can never match and are absent
   from the branch.  Pins come from ``pkt.f == const`` conjuncts
   (directly, inside positive ``and`` chains, or implied by a closed
   ``lo <= pkt.f <= lo`` interval).

3. **Guard compilation** — each entry's residual conjunction is
   code-generated into one Python function (``compile()``-ed source),
   preserving the interpreter's semantics *exactly*: lazy
   ``and``/``or``/``cond``, ``GuardEvalError`` on missing
   state/dict-keys/failed ops (guard → no match), and — crucially —
   **raw propagation** of errors the interpreter does not catch
   (dict-value path indexing, ``in`` on a non-container).  The
   :class:`_Raw` wrapper carries those across the generated
   ``try``/``except`` so they re-raise unchanged.

4. **Action precompilation** — a :class:`CompiledSimulator` owns one
   reused ``Interpreter``/``Env`` pair instead of building both per
   packet, and offers :meth:`CompiledSimulator.process_many` to
   amortize attribute lookups across a packet vector.

The contract is byte-identity of *outcome* with ``ModelSimulator``:
same matched entry ids, same sent packets, same state evolution, and
same ``SimStats`` counts for ``packets``/``forwarded``/
``dropped_default``/``dropped_entry``/``matched_entries``.  Only
``guard_evals`` legitimately differs (the whole point is doing fewer
of them); ``compiled_dispatches`` counts tree walks instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.interp.interpreter import Env, Interpreter, NFRuntimeError
from repro.model.matchaction import CONFIG_NS, NFModel, STATE_NS, TableEntry
from repro.model.simulator import (
    GuardEvalError,
    SimStats,
    _lookup,
    _merge_by_position,
    eval_symbolic,
)
from repro.net.packet import PACKET_FIELDS, Packet
from repro.symbolic.expr import SApp, SDictVal, SVar, _hashable
from repro.util.hashing import stable_hash


class _Raw(Exception):
    """Carries an exception the interpreter would propagate *uncaught*.

    ``eval_symbolic`` converts op-application failures to
    ``GuardEvalError`` but lets dict-value path indexing errors and
    ``in``-on-non-container ``TypeError``s escape raw.  A generated
    guard wraps its whole body in one ``try``, so those raw errors are
    smuggled past its ``except`` clauses inside ``_Raw`` and re-raised
    unchanged.
    """

    def __init__(self, original: BaseException) -> None:
        super().__init__(repr(original))
        self.original = original


def _member(state: Dict[str, Any], name: str, key: Any) -> bool:
    """``member`` op: key presence with the interpreter's exact errors."""
    holder = _lookup(state, name)
    if isinstance(key, list):
        key = tuple(key)
    try:
        return key in holder
    except TypeError as exc:
        raise _Raw(exc) from None


def _dv(state: Dict[str, Any], name: str, key: Any, path: Tuple[int, ...]) -> Any:
    """``SDictVal`` read: presence check then raw path indexing."""
    holder = _lookup(state, name)
    if isinstance(key, list):
        key = tuple(key)
    try:
        present = key in holder
    except TypeError as exc:
        raise _Raw(exc) from None
    if not present:
        raise GuardEvalError(f"key {key!r} not in {name}")
    try:
        out = holder[key]
        for idx in path:
            out = out[idx]
    except Exception as exc:  # the interpreter propagates these raw
        raise _Raw(exc) from None
    return out


def _hash(value: Any) -> int:
    return stable_hash(_hashable(value))


def _nokey(name: str) -> Any:
    raise GuardEvalError(f"dict value of {name!r} has no key expression")


def _badop(op: str, *args: Any) -> Any:
    raise GuardEvalError(f"op {op} failed: cannot fold operator {op!r}")


#: Binary operators that lower to the identical Python operator text.
_BINOPS = frozenset(
    ("+", "-", "*", "/", "//", "%", "<<", ">>", "&", "|", "^", "**",
     "==", "!=", "<", "<=", ">", ">=")
)

#: Scalar immutables safe to inline as literals (value-equal under
#: ``deep_copy``, so folding against the compile-time state stays
#: correct for every simulator instance created later).
_FOLDABLE = (bool, int, str, type(None))


class _GuardGen:
    """Code generator for one compiled model's guard module."""

    def __init__(self, init_state: Dict[str, Any], fold_config: bool) -> None:
        self.init_state = init_state
        self.fold_config = fold_config
        self.consts: List[Any] = []
        self._const_index: Dict[Any, int] = {}

    def const(self, value: Any) -> str:
        """A reference to ``value`` — inline literal or pool slot."""
        if type(value) in _FOLDABLE:
            return f"({value!r})"
        try:
            idx = self._const_index[value]
        except (KeyError, TypeError):
            idx = len(self.consts)
            self.consts.append(value)
            try:
                self._const_index[value] = idx
            except TypeError:
                pass  # unhashable: pool without dedup
        return f"_K[{idx}]"

    def gen(self, value: Any) -> str:
        """Python source for ``eval_symbolic(value, state, p)``."""
        if isinstance(value, SVar):
            return self._gen_var(value)
        if isinstance(value, SDictVal):
            if value.key is None:
                return f"_nokey({value.dict_name!r})"
            return (
                f"_dv(state, {value.dict_name!r}, "
                f"{self.gen(value.key)}, {value.path!r})"
            )
        if isinstance(value, SApp):
            return self._gen_app(value)
        if isinstance(value, tuple):
            inner = "".join(f"{self.gen(v)}, " for v in value)
            return f"({inner})"
        if isinstance(value, list):
            return "[" + ", ".join(self.gen(v) for v in value) + "]"
        return self.const(value)

    def _gen_var(self, value: SVar) -> str:
        name = value.name
        if name.startswith("pkt") and "." in name:
            fieldname = name.split(".", 1)[1]
            if fieldname in PACKET_FIELDS or fieldname.isidentifier():
                return f"p.{fieldname}"
            return f"getattr(p, {fieldname!r})"
        if name.startswith(CONFIG_NS):
            stripped = name[len(CONFIG_NS):]
            if self.fold_config and stripped in self.init_state:
                concrete = self.init_state[stripped]
                if type(concrete) in _FOLDABLE:
                    return f"({concrete!r})"
            return f"_sv(state, {stripped!r})"
        if name.startswith(STATE_NS):
            return f"_sv(state, {name[len(STATE_NS):]!r})"
        return f"_sv(state, {name!r})"

    def _gen_app(self, value: SApp) -> str:
        op, args = value.op, value.args
        if op == "member":
            dict_name, key_sym = args
            return f"_member(state, {dict_name!r}, {self.gen(key_sym)})"
        if op == "dictlen":
            return f"len(_sv(state, {args[0]!r}))"
        if op == "cond":
            return (
                f"({self.gen(args[1])} if {self.gen(args[0])}"
                f" else {self.gen(args[2])})"
            )
        if op in ("and", "or"):
            joiner = f" {op} "
            return "(" + joiner.join(self.gen(a) for a in args) + ")"
        if op in _BINOPS and len(args) == 2:
            return f"({self.gen(args[0])} {op} {self.gen(args[1])})"
        if op == "neg":
            return f"(-{self.gen(args[0])})"
        if op == "~":
            return f"(~{self.gen(args[0])})"
        if op == "not":
            return f"(not {self.gen(args[0])})"
        if op == "getitem":
            return f"({self.gen(args[0])}[{self.gen(args[1])}])"
        if op in ("len", "abs"):
            return f"{op}({self.gen(args[0])})"
        if op in ("min", "max"):
            return f"{op}(" + ", ".join(self.gen(a) for a in args) + ")"
        if op == "hash":
            return f"_hash({self.gen(args[0])})"
        # Unknown op: eval args (error order parity), then GuardEvalError
        # like _apply_concrete's ValueError would become.
        arglist = "".join(f", {self.gen(a)}" for a in args)
        return f"_badop({op!r}{arglist})"

    def guard_source(self, fn_name: str, conjuncts: List[Any]) -> str:
        """One guard function: lazy conjunction, interpreter error rules."""
        if conjuncts:
            body = " and ".join(f"bool({self.gen(c)})" for c in conjuncts)
        else:
            body = "True"
        return (
            f"def {fn_name}(state, p, _sv=_sv, _dv=_dv, _member=_member,"
            f" _hash=_hash, _K=_K):\n"
            f"    try:\n"
            f"        return {body}\n"
            f"    except _Raw as exc:\n"
            f"        raise exc.original from None\n"
            f"    except GuardEvalError:\n"
            f"        return False\n"
            f"    except (TypeError, ValueError, IndexError, KeyError,"
            f" ZeroDivisionError):\n"
            f"        return False\n"
        )


# ---------------------------------------------------------------------------
# Dispatch-tree construction
# ---------------------------------------------------------------------------

_FLIP = {"==": "==", "<=": ">=", ">=": "<=", "<": ">", ">": "<"}


def _entry_pins(entry: TableEntry, init_state: Dict[str, Any]) -> Dict[str, int]:
    """Packet fields the flow match pins to one concrete value.

    Generalizes :func:`~repro.model.simulator._concrete_eq_fields`:
    besides top-level ``pkt.f == const`` conjuncts it descends into
    positive ``and`` chains (every arm must hold for the guard to
    hold) and closes ``lo <= pkt.f`` ∧ ``pkt.f <= lo`` intervals into
    equalities.  Sound for *skipping*: a pin that is false for a
    packet means the guard evaluates false (or errors → no match).
    """

    def resolve(value: Any) -> Optional[int]:
        if isinstance(value, bool) or not isinstance(value, (int, SVar)):
            return None
        if isinstance(value, SVar):
            if not value.name.startswith(CONFIG_NS):
                return None
            concrete = init_state.get(value.name[len(CONFIG_NS):])
            return concrete if type(concrete) is int else None
        return value

    def packet_field(value: Any) -> Optional[str]:
        if isinstance(value, SVar) and value.name.startswith("pkt") \
                and "." in value.name:
            return value.name.split(".", 1)[1]
        return None

    eq: Dict[str, int] = {}
    lo: Dict[str, int] = {}
    hi: Dict[str, int] = {}

    def visit(c: Any) -> None:
        if not isinstance(c, SApp):
            return
        if c.op == "and":
            for arm in c.args:
                visit(arm)
            return
        if c.op not in _FLIP or len(c.args) != 2:
            return
        lhs, rhs = c.args
        for var, const, rel in ((lhs, rhs, c.op), (rhs, lhs, _FLIP[c.op])):
            fieldname = packet_field(var)
            value = resolve(const)
            if fieldname is None or value is None:
                continue
            # rel reads with the packet field on the left: pkt.f REL value
            if rel == "==":
                eq.setdefault(fieldname, value)
            elif rel == "<=":
                hi[fieldname] = min(hi.get(fieldname, value), value)
            elif rel == ">=":
                lo[fieldname] = max(lo.get(fieldname, value), value)
            elif rel == "<":
                hi[fieldname] = min(hi.get(fieldname, value - 1), value - 1)
            elif rel == ">":
                lo[fieldname] = max(lo.get(fieldname, value + 1), value + 1)

    for c in entry.match_flow:
        visit(c)
    for fieldname, bound in lo.items():
        if hi.get(fieldname) == bound:
            eq.setdefault(fieldname, bound)
    return eq


class CompiledEntry:
    """One live table entry with its compiled guard."""

    __slots__ = ("entry", "entry_id", "guard", "action_stmts")

    def __init__(self, entry: TableEntry, guard: Callable[..., bool]) -> None:
        self.entry = entry
        self.entry_id = entry.entry_id
        self.guard = guard
        self.action_stmts = entry.action_stmts


class _Node:
    """Dispatch-tree node: inner (field/branches/miss) or leaf (entries)."""

    __slots__ = ("field", "branches", "miss", "entries")

    def __init__(self) -> None:
        self.field: Optional[str] = None
        self.branches: Dict[int, "_Node"] = {}
        self.miss: Optional["_Node"] = None
        self.entries: Tuple[CompiledEntry, ...] = ()


_Item = Tuple[int, CompiledEntry, Dict[str, int]]


def _best_field(coverage: Dict[str, int]) -> Optional[str]:
    if not coverage:
        return None
    max_cov = max(coverage.values())
    if max_cov < 2:
        return None  # a split over one entry saves nothing
    return min(name for name, n in coverage.items() if n == max_cov)


def _build_tree(items: List[_Item], used: frozenset) -> _Node:
    node = _Node()
    coverage: Dict[str, int] = {}
    for _pos, _ce, pins in items:
        for name in pins:
            if name not in used:
                coverage[name] = coverage.get(name, 0) + 1
    split = _best_field(coverage) if len(items) > 1 else None
    if split is None:
        node.entries = tuple(ce for _pos, ce, _pins in items)
        return node
    node.field = split
    buckets: Dict[int, List[_Item]] = {}
    residual: List[_Item] = []
    for item in items:
        pins = item[2]
        if split in pins:
            buckets.setdefault(pins[split], []).append(item)
        else:
            residual.append(item)
    child_used = used | {split}
    node.miss = _build_tree(residual, child_used)
    node.branches = {
        value: _build_tree(_merge_by_position(bucket, residual), child_used)
        for value, bucket in buckets.items()
    }
    return node


def _tree_shape(node: _Node) -> Tuple[int, int]:
    """(depth, n_leaves) of a dispatch tree."""
    if node.field is None:
        return 1, 1
    children = list(node.branches.values()) + [node.miss]
    shapes = [_tree_shape(c) for c in children if c is not None]
    return 1 + max(d for d, _ in shapes), sum(n for _, n in shapes)


# ---------------------------------------------------------------------------
# The compiled model
# ---------------------------------------------------------------------------


@dataclass
class CompiledModel:
    """An :class:`NFModel` lowered to compiled guards + dispatch tree.

    Built once via :func:`compile_model`; spawn any number of
    independent :class:`CompiledSimulator` instances from it (one per
    concrete state).  Not picklable — the guards are live function
    objects — so serve-tier caching memoizes per process.
    """

    model: NFModel
    pkt_param: str
    n_entries: int
    n_live: int
    n_pruned: int
    compile_seconds: float
    dispatch: bool
    tree_depth: int
    tree_leaves: int
    source: str = field(repr=False)
    _entries: Tuple[CompiledEntry, ...] = field(repr=False)
    _root: _Node = field(repr=False)

    def simulator(self, init_state: Dict[str, Any]) -> "CompiledSimulator":
        return CompiledSimulator(self, init_state)


def compile_model(
    model: NFModel,
    init_state: Dict[str, Any],
    pkt_param: str = "pkt",
    dispatch: bool = True,
    fold_config: bool = True,
) -> CompiledModel:
    """Lower ``model`` once against ``init_state``.

    ``init_state`` is only *read* (config resolution); pass the
    synthesis module environment.  ``dispatch=False`` keeps the flat
    priority scan (all live entries in one leaf); ``fold_config=False``
    keeps config conjuncts in the compiled guards and disables both
    pruning and cfg-literal inlining — the maximally conservative
    lowering, used by the equivalence tests.
    """
    t0 = time.perf_counter()
    entries = model.all_entries()
    gen = _GuardGen(init_state, fold_config=fold_config)
    dummy = Packet()

    live: List[Tuple[int, TableEntry, List[Any]]] = []
    n_pruned = 0
    for pos, entry in enumerate(entries):
        conjuncts: List[Any] = []
        dead = False
        if fold_config:
            # Config conjuncts see only cfg.* leaves (the classifier
            # guarantees no pkt/state reads), and cfgVars are read-only
            # on the packet path — so evaluate them once, now.  False
            # or unevaluable means the interpreter's guard could never
            # hold for this entry: prune it from the dataplane.
            for c in entry.config:
                try:
                    if not bool(eval_symbolic(c, init_state, dummy)):
                        dead = True
                        break
                except GuardEvalError:
                    dead = True
                    break
        else:
            conjuncts.extend(entry.config)
        if dead:
            n_pruned += 1
            continue
        conjuncts.extend(entry.match_flow)
        conjuncts.extend(entry.match_state)
        live.append((pos, entry, conjuncts))

    # One generated module holding every guard function.
    chunks: List[str] = []
    names: List[str] = []
    for i, (_pos, _entry, conjuncts) in enumerate(live):
        name = f"_g{i}"
        names.append(name)
        chunks.append(gen.guard_source(name, conjuncts))
    source = "\n".join(chunks)
    namespace: Dict[str, Any] = {
        "GuardEvalError": GuardEvalError,
        "_Raw": _Raw,
        "_sv": _lookup,
        "_dv": _dv,
        "_member": _member,
        "_hash": _hash,
        "_nokey": _nokey,
        "_badop": _badop,
        "_K": tuple(gen.consts),
    }
    if source:
        exec(compile(source, "<repro.model.compile>", "exec"), namespace)

    compiled: List[CompiledEntry] = [
        CompiledEntry(entry, namespace[name])
        for name, (_pos, entry, _c) in zip(names, live)
    ]
    items: List[_Item] = [
        (pos, ce, _entry_pins(entry, init_state) if fold_config else {})
        for ce, (pos, entry, _c) in zip(compiled, live)
    ]
    if dispatch:
        root = _build_tree(items, frozenset())
    else:
        root = _Node()
        root.entries = tuple(ce for _pos, ce, _pins in items)
    depth, leaves = _tree_shape(root)
    return CompiledModel(
        model=model,
        pkt_param=pkt_param,
        n_entries=len(entries),
        n_live=len(compiled),
        n_pruned=n_pruned,
        compile_seconds=time.perf_counter() - t0,
        dispatch=dispatch,
        tree_depth=depth,
        tree_leaves=leaves,
        source=source,
        _entries=tuple(compiled),
        _root=root,
    )


class CompiledSimulator:
    """Drop-in :class:`ModelSimulator` replacement over a compiled model.

    Same public surface — ``process``/``match_entry``/``stats``/
    ``state``/``model``/``pkt_param`` — plus :meth:`process_many`.
    ``stats.guard_evals`` counts compiled-guard calls (fewer than the
    interpreter's, by design) and ``stats.compiled_dispatches`` counts
    dispatch-tree walks.
    """

    compiled = True

    def __init__(self, compiled_model: CompiledModel, init_state: Dict[str, Any]) -> None:
        self.compiled_model = compiled_model
        self.model = compiled_model.model
        self.state = init_state
        self.pkt_param = compiled_model.pkt_param
        self.stats = SimStats()
        self._root = compiled_model._root
        # One interpreter + env for the simulator's lifetime; per-packet
        # reset of sent/steps reproduces the fresh-instance semantics.
        self._interp = Interpreter()
        self._env = Env(globals=init_state)

    def match_entry(self, pkt: Packet) -> Optional[TableEntry]:
        """First live entry whose compiled guard holds (priority order)."""
        ce = self._match(pkt)
        return None if ce is None else ce.entry

    def _match(self, pkt: Packet) -> Optional[CompiledEntry]:
        node = self._root
        while node.field is not None:
            node = node.branches.get(getattr(pkt, node.field), node.miss)
        stats = self.stats
        stats.compiled_dispatches += 1
        state = self.state
        for ce in node.entries:
            stats.guard_evals += 1
            if ce.guard(state, pkt):
                return ce
        return None

    def process(self, pkt: Packet) -> List[Tuple[Packet, Optional[int]]]:
        """Run one packet; identical outcome to ``ModelSimulator.process``."""
        stats = self.stats
        stats.packets += 1
        ce = self._match(pkt)
        if ce is None:
            stats.dropped_default += 1
            return []
        matched = stats.matched_entries
        matched[ce.entry_id] = matched.get(ce.entry_id, 0) + 1
        sent = self._apply(ce, pkt)
        if sent:
            stats.forwarded += 1
        else:
            stats.dropped_entry += 1
        return sent

    def process_many(
        self, packets: List[Packet]
    ) -> List[List[Tuple[Packet, Optional[int]]]]:
        """Batch API: one sent-list per input packet, stats identical
        to processing them one at a time."""
        out: List[List[Tuple[Packet, Optional[int]]]] = []
        append = out.append
        state = self.state
        stats = self.stats
        root = self._root
        interp = self._interp
        env = self._env
        pkt_param = self.pkt_param
        matched = stats.matched_entries
        exec_block = interp.exec_block
        n = fwd = dde = den = evals = walks = hits = 0
        try:
            for pkt in packets:
                n += 1
                node = root
                while node.field is not None:
                    node = node.branches.get(getattr(pkt, node.field), node.miss)
                walks += 1
                hit = None
                for ce in node.entries:
                    evals += 1
                    if ce.guard(state, pkt):
                        hit = ce
                        break
                if hit is None:
                    dde += 1
                    append([])
                    continue
                eid = hit.entry_id
                matched[eid] = matched.get(eid, 0) + 1
                hits += 1
                interp.sent = []
                interp.steps = 0
                state[pkt_param] = pkt.copy()
                try:
                    exec_block(hit.action_stmts, env, None)
                except NFRuntimeError as exc:
                    raise NFRuntimeError(
                        f"model action of entry {eid} failed: {exc}"
                    ) from exc
                finally:
                    state.pop(pkt_param, None)
                sent = interp.sent
                if sent:
                    fwd += 1
                else:
                    den += 1
                append(sent)
        finally:
            stats.packets += n
            stats.forwarded += fwd
            stats.dropped_default += dde
            stats.dropped_entry += den
            stats.guard_evals += evals
            stats.compiled_dispatches += walks
        return out

    def _apply(
        self, ce: CompiledEntry, pkt: Packet
    ) -> List[Tuple[Packet, Optional[int]]]:
        interp = self._interp
        interp.sent = []
        interp.steps = 0
        self.state[self.pkt_param] = pkt.copy()
        try:
            interp.exec_block(ce.action_stmts, self._env, None)
        except NFRuntimeError as exc:
            raise NFRuntimeError(
                f"model action of entry {ce.entry_id} failed: {exc}"
            ) from exc
        finally:
            self.state.pop(self.pkt_param, None)
        return interp.sent
