"""Parallel corpus synthesis (the batch front-end).

One NF synthesis is a deterministic, CPU-bound pipeline with no shared
mutable state, which makes a corpus of them embarrassingly parallel:
:func:`synthesize_many` fans the targets out over a
``ProcessPoolExecutor`` and returns per-target outcomes **in input
order**, so a parallel batch is byte-for-byte the same as a sequential
one — only faster.  Used by the ``repro batch`` CLI subcommand and by
the benchmark harness (:mod:`benchmarks.common`) to warm its
per-process synthesis cache.

Each worker runs observed (:mod:`repro.obs`) and ships its metrics
snapshot home; the parent folds the snapshots into its own ambient
registry (:meth:`repro.obs.metrics.MetricsRegistry.merge`) so a batch
run still produces one coherent profile.

Workers solve with their own process-wide constraint cache
(:mod:`repro.symbolic.solver`); caching never changes results, so
parallel/sequential and warm/cold runs all agree.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.nfactor.algorithm import NFactor, NFactorConfig, SynthesisResult
from repro.symbolic.engine import EngineConfig

__all__ = ["BatchTarget", "BatchOutcome", "synthesize_many", "resolve_targets"]


@dataclass(frozen=True)
class BatchTarget:
    """One synthesis job: a named NF source with an optional entry."""

    name: str
    source: str
    entry: Optional[str] = None


@dataclass
class BatchOutcome:
    """What one batch job produced (order matches the input order)."""

    name: str
    elapsed_s: float = 0.0
    result: Optional[SynthesisResult] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.result is not None


def resolve_targets(names: Sequence[Union[str, BatchTarget]]) -> List[BatchTarget]:
    """Corpus names (or ready-made targets) → :class:`BatchTarget` list."""
    from repro.nfs import get_nf

    out: List[BatchTarget] = []
    for item in names:
        if isinstance(item, BatchTarget):
            out.append(item)
        else:
            spec = get_nf(item)
            out.append(BatchTarget(name=item, source=spec.source, entry=spec.entry))
    return out


def _run_one(
    target: BatchTarget, max_paths: int, solver_cache: bool
) -> BatchOutcome:
    """Synthesize one target, observed; never raises (errors are data)."""
    from repro import obs

    t0 = time.perf_counter()
    try:
        config = NFactorConfig(
            engine=EngineConfig(max_paths=max_paths, solver_cache=solver_cache)
        )
        with obs.observed():
            result = NFactor(
                target.source, name=target.name, entry=target.entry, config=config
            ).synthesize()
        return BatchOutcome(
            name=target.name,
            elapsed_s=time.perf_counter() - t0,
            result=result,
            metrics=result.stats.metrics,
        )
    except Exception:
        return BatchOutcome(
            name=target.name,
            elapsed_s=time.perf_counter() - t0,
            error=traceback.format_exc(limit=8),
        )


def _worker(payload: Tuple[BatchTarget, int, bool]) -> BatchOutcome:
    target, max_paths, solver_cache = payload
    return _run_one(target, max_paths, solver_cache)


def default_jobs(n_targets: int) -> int:
    """Worker-count default: one per target, capped by the CPU count."""
    return max(1, min(n_targets, os.cpu_count() or 1))


def synthesize_many(
    targets: Sequence[Union[str, BatchTarget]],
    jobs: Optional[int] = None,
    max_paths: int = 16384,
    solver_cache: bool = True,
    merge_metrics: bool = True,
) -> List[BatchOutcome]:
    """Synthesize many NFs, optionally across worker processes.

    ``jobs=None`` picks :func:`default_jobs`; ``jobs<=1`` runs in-process
    (the degenerate batch — same code path minus the pool, so ``-j 1``
    is the determinism reference for ``-j N``).  Outcomes preserve input
    order regardless of completion order.  A worker failure is reported
    in that target's :attr:`BatchOutcome.error`; it never aborts the
    rest of the batch.

    When the parent runs under an ambient metrics registry and
    ``merge_metrics`` is true, each child's metrics snapshot is folded
    into it.
    """
    resolved = resolve_targets(targets)
    if jobs is None:
        jobs = default_jobs(len(resolved))

    payloads = [(t, max_paths, solver_cache) for t in resolved]
    if jobs <= 1 or len(resolved) <= 1:
        outcomes = [_worker(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(_worker, payloads))

    if merge_metrics:
        from repro.obs import metrics as obs_metrics

        registry = obs_metrics.active()
        if registry.enabled:
            for outcome in outcomes:
                if outcome.metrics:
                    registry.merge(outcome.metrics)
    return outcomes
