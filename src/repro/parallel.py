"""Parallel corpus synthesis (the batch front-end).

One NF synthesis is a deterministic, CPU-bound pipeline with no shared
mutable state, which makes a corpus of them embarrassingly parallel:
:func:`synthesize_many` fans the targets out over a
``ProcessPoolExecutor`` and returns per-target outcomes **in input
order**, so a parallel batch is byte-for-byte the same as a sequential
one — only faster.  Used by the ``repro batch`` CLI subcommand and by
the benchmark harness (:mod:`benchmarks.common`) to warm its
per-process synthesis cache.

Each worker runs observed (:mod:`repro.obs`) and ships its metrics
snapshot home; the parent folds the snapshots into its own ambient
registry (:meth:`repro.obs.metrics.MetricsRegistry.merge`) so a batch
run still produces one coherent profile.

Workers solve with their own process-wide constraint cache
(:mod:`repro.symbolic.solver`) and share the parent's persistent
artifact store directory (:mod:`repro.cache`): artifact writes are
atomic renames of content-addressed files, so concurrent workers need
no cross-process locks — two writers racing on one key write identical
bytes and last-writer-wins is correct.  Caching never changes results,
so parallel/sequential and warm/cold runs all agree.

``model_only=True`` is the batch fast path: workers go through the
model tier (:func:`repro.nfactor.algorithm.synthesize_model_cached`),
return the serialized model + stats instead of pickling a full
:class:`SynthesisResult` across the process boundary, and an unchanged
NF costs one cache lookup.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import cache as artifact_cache
from repro.nfactor.algorithm import (
    NFactor,
    NFactorConfig,
    SynthesisResult,
    SynthesisStats,
    synthesize_model_cached,
)
from repro.symbolic.engine import EngineConfig

__all__ = [
    "BatchTarget",
    "BatchOutcome",
    "synthesize_many",
    "resolve_targets",
    "explore_frontier_parts",
    "compute_edge_summaries",
    "observed_call",
    "default_jobs",
]

#: Per-tier hit counters surfaced per outcome (``repro batch`` summary).
CACHE_TIER_COUNTERS = {
    "model": "cache.kind.model.hits",
    "disk": "cache.disk.hits",
    "mem": "cache.mem.hits",
    "solver": "solver.cache_hits",
}


@dataclass(frozen=True)
class BatchTarget:
    """One synthesis job: a named NF source with an optional entry."""

    name: str
    source: str
    entry: Optional[str] = None


@dataclass
class BatchOutcome:
    """What one batch job produced (order matches the input order).

    Full-result mode populates ``result`` (and derives ``stats`` from
    it); model-only mode populates ``model_json``/``stats`` and leaves
    ``result`` None — on a model-tier cache hit there is nothing else
    to materialize.  ``cache_tiers`` counts this job's cache hits per
    tier (model / disk / mem / solver).
    """

    name: str
    elapsed_s: float = 0.0
    result: Optional[SynthesisResult] = None
    model_json: Optional[str] = None
    stats: Optional[SynthesisStats] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    cache_tiers: Dict[str, int] = field(default_factory=dict)
    model_cached: bool = False
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error and (
            self.result is not None or self.model_json is not None
        )


def resolve_targets(names: Sequence[Union[str, BatchTarget]]) -> List[BatchTarget]:
    """Corpus names (or ready-made targets) → :class:`BatchTarget` list."""
    from repro.nfs import get_nf

    out: List[BatchTarget] = []
    for item in names:
        if isinstance(item, BatchTarget):
            out.append(item)
        else:
            spec = get_nf(item)
            out.append(BatchTarget(name=item, source=spec.source, entry=spec.entry))
    return out


def _run_one(
    target: BatchTarget,
    max_paths: int,
    solver_cache: bool,
    model_only: bool = False,
    use_artifact_cache: bool = True,
) -> BatchOutcome:
    """Synthesize one target, observed; never raises (errors are data)."""
    from repro import obs
    from repro.model.serialize import model_to_json

    t0 = time.perf_counter()
    try:
        config = NFactorConfig(
            engine=EngineConfig(max_paths=max_paths, solver_cache=solver_cache),
            artifact_cache=use_artifact_cache,
        )
        with obs.observed() as (_tracer, registry):
            if model_only:
                cached = synthesize_model_cached(
                    target.source, name=target.name, entry=target.entry,
                    config=config,
                )
                result = None
                model_json, stats = cached.model_json, cached.stats
                model_cached = cached.cached
            else:
                result = NFactor(
                    target.source, name=target.name, entry=target.entry,
                    config=config,
                ).synthesize()
                model_json, stats = model_to_json(result.model), result.stats
                model_cached = False
            snapshot = registry.snapshot()
        counters = snapshot.get("counters", {})
        return BatchOutcome(
            name=target.name,
            elapsed_s=time.perf_counter() - t0,
            result=result,
            model_json=model_json,
            stats=stats,
            metrics=snapshot,
            cache_tiers={
                tier: counters.get(counter, 0)
                for tier, counter in CACHE_TIER_COUNTERS.items()
            },
            model_cached=model_cached,
        )
    except Exception:
        return BatchOutcome(
            name=target.name,
            elapsed_s=time.perf_counter() - t0,
            error=traceback.format_exc(limit=8),
        )


def _worker(payload: Tuple[BatchTarget, int, bool, bool, bool]) -> BatchOutcome:
    target, max_paths, solver_cache, model_only, use_cache = payload
    if use_cache:
        return _run_one(target, max_paths, solver_cache, model_only)
    # --no-cache (or a disabled parent store) must bind the workers too:
    # disable the ambient store for the duration of this job.
    with artifact_cache.override(enabled=False):
        return _run_one(
            target, max_paths, solver_cache, model_only, use_artifact_cache=False
        )


def default_jobs(n_targets: int) -> int:
    """Worker-count default: one per target, capped by the CPU count."""
    return max(1, min(n_targets, os.cpu_count() or 1))


def observed_call(
    fn,
    *args,
    trace_context: Optional[Any] = None,
    collector: Optional[Dict[str, Any]] = None,
    span_limit: Optional[int] = None,
    **kwargs,
) -> Tuple[Any, Dict[str, Any], List[Dict[str, Any]]]:
    """Run ``fn`` under a fresh observer; returns (value, metrics, spans).

    The worker-process idiom shared by batch synthesis, frontier
    exploration and the serve pool (:mod:`repro.serve.jobs`): a child
    runs its work observed and ships the registry snapshot plus its
    span batch home, where the parent folds the metrics in via
    :meth:`MetricsRegistry.merge` and stitches the spans into the
    request's tree.

    ``trace_context`` (a :class:`repro.obs.context.TraceContext`) is
    installed as the **ambient context** for the call, so structured
    log lines and the worker tracer carry the request's trace id.
    ``span_limit`` caps the exported batch; ``span_limit=0`` skips span
    export entirely (tracing disabled — metrics only).

    ``collector`` (when given) receives ``{"metrics": ..., "spans":
    ...}`` even when ``fn`` raises — populated in a ``finally`` so a
    deadline kill (:class:`repro.serve.jobs.JobTimeout`) still recovers
    the partial trace: spans close during exception unwinding, so the
    export sees everything that finished before the alarm fired.
    """
    from repro import obs
    from repro.obs import context as obs_context

    tracer = obs.Tracer(trace_id=getattr(trace_context, "trace_id", None))
    snapshot: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    with obs_context.bound(trace_context):
        with obs.observed(tracer=tracer) as (_tracer, registry):
            try:
                value = fn(*args, **kwargs)
            finally:
                snapshot.update(registry.snapshot())
                if span_limit != 0:
                    spans.extend(tracer.export_spans(limit=span_limit))
                if collector is not None:
                    collector["metrics"] = snapshot
                    collector["spans"] = spans
    return value, snapshot, spans


# ---------------------------------------------------------------------------
# Intra-NF frontier workers (EngineConfig.strategy == "frontier")
# ---------------------------------------------------------------------------


def _frontier_worker(payload: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Explore one partition of a branch frontier in a fresh engine.

    Ships back raw finished states plus the worker's stats and metrics
    snapshot; the parent engine does the canonical merge.  Never raises
    — an error is returned as a formatted traceback so the parent can
    fail the whole exploration coherently.
    """
    from dataclasses import asdict

    from repro import obs
    from repro.symbolic.engine import SymbolicEngine

    block, seeds, watched, config_kwargs = payload
    try:
        config_kwargs = dict(config_kwargs, parallel_paths=1)
        engine = SymbolicEngine(EngineConfig(**config_kwargs))
        with obs.observed() as (_tracer, registry):
            finished, stats = engine.explore_seeds(block, seeds, watched)
            snapshot = registry.snapshot()
        return finished, asdict(stats), snapshot, ""
    except Exception:
        return [], {}, {}, traceback.format_exc(limit=8)


def explore_frontier_parts(
    block: Any,
    parts: Sequence[Sequence[Any]],
    watched: Any,
    config: EngineConfig,
) -> List[Tuple[List[Any], Dict[str, Any]]]:
    """Fan frontier partitions out over a process pool.

    Each partition is explored independently with the same engine
    configuration (depth-first, in-process); results come back in
    partition order.  Worker metrics snapshots are folded into the
    parent's ambient registry so a parallel exploration profiles like a
    sequential one.
    """
    from dataclasses import asdict

    from repro.obs import metrics as obs_metrics

    config_kwargs = asdict(config)
    payloads = [(block, list(part), set(watched), config_kwargs) for part in parts]
    jobs = min(len(payloads), max(1, config.parallel_paths))
    if jobs <= 1:
        raw = [_frontier_worker(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            raw = list(pool.map(_frontier_worker, payloads))

    registry = obs_metrics.active()
    out: List[Tuple[List[Any], Dict[str, Any]]] = []
    for finished, stats, snapshot, error in raw:
        if error:
            raise RuntimeError(f"frontier worker failed:\n{error}")
        if registry.enabled and snapshot:
            registry.merge(snapshot)
        out.append((finished, stats))
    return out


# ---------------------------------------------------------------------------
# Graph-verification edge workers (repro.netverify)
# ---------------------------------------------------------------------------


def _edge_worker(payload: Tuple[Any, ...]) -> Tuple[Any, Dict[str, Any], str]:
    """Compute one edge transfer summary in a fresh solver.

    The payload is ``(model, ns, space, solver_cache)``; the summary is
    a pure function of it (the solver derives its samples from the
    constraint set, not from process state), so relocating the call
    into a worker cannot change the bytes.  Never raises — errors come
    home as formatted tracebacks for the parent to surface coherently.
    """
    from repro import obs
    from repro.netverify.verify import compute_edge_summary
    from repro.symbolic.solver import Solver

    model, ns, space, solver_cache = payload
    try:
        with obs.observed() as (_tracer, registry):
            summary = compute_edge_summary(
                model, ns, space, Solver(cache=solver_cache)
            )
            snapshot = registry.snapshot()
        return summary, snapshot, ""
    except Exception:
        return None, {}, traceback.format_exc(limit=8)


def compute_edge_summaries(
    payloads: Sequence[Tuple[Any, ...]], jobs: int
) -> List[Any]:
    """Fan edge tasks out over a process pool; summaries in input order.

    Mirrors :func:`explore_frontier_parts`: worker metrics snapshots
    fold into the parent's ambient registry, a worker failure raises in
    the parent, and ``jobs<=1`` degenerates to the in-process loop so
    the parallel path has a same-code-path determinism reference.
    """
    from repro.obs import metrics as obs_metrics

    jobs = min(len(payloads), max(1, jobs))
    if jobs <= 1:
        raw = [_edge_worker(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            raw = list(pool.map(_edge_worker, payloads))

    registry = obs_metrics.active()
    out: List[Any] = []
    for summary, snapshot, error in raw:
        if error:
            raise RuntimeError(f"edge worker failed:\n{error}")
        if registry.enabled and snapshot:
            registry.merge(snapshot)
        out.append(summary)
    return out


def synthesize_many(
    targets: Sequence[Union[str, BatchTarget]],
    jobs: Optional[int] = None,
    max_paths: int = 16384,
    solver_cache: bool = True,
    merge_metrics: bool = True,
    model_only: bool = False,
    use_artifact_cache: Optional[bool] = None,
) -> List[BatchOutcome]:
    """Synthesize many NFs, optionally across worker processes.

    ``jobs=None`` picks :func:`default_jobs`; ``jobs<=1`` runs in-process
    (the degenerate batch — same code path minus the pool, so ``-j 1``
    is the determinism reference for ``-j N``).  Outcomes preserve input
    order regardless of completion order.  A worker failure is reported
    in that target's :attr:`BatchOutcome.error`; it never aborts the
    rest of the batch.

    ``model_only=True`` returns serialized models + stats without full
    :class:`SynthesisResult` payloads (see the module docstring).
    ``use_artifact_cache=None`` inherits the parent's store enablement,
    so a ``--no-cache`` parent disables the workers' stores as well.

    When the parent runs under an ambient metrics registry and
    ``merge_metrics`` is true, each child's metrics snapshot is folded
    into it.
    """
    resolved = resolve_targets(targets)
    if jobs is None:
        jobs = default_jobs(len(resolved))
    if use_artifact_cache is None:
        use_artifact_cache = artifact_cache.is_enabled()

    payloads = [
        (t, max_paths, solver_cache, model_only, use_artifact_cache)
        for t in resolved
    ]
    if jobs <= 1 or len(resolved) <= 1:
        outcomes = [_worker(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(_worker, payloads))

    if merge_metrics:
        from repro.obs import metrics as obs_metrics

        registry = obs_metrics.active()
        if registry.enabled:
            for outcome in outcomes:
                if outcome.metrics:
                    registry.merge(outcome.metrics)
    return outcomes
