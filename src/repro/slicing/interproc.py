"""Interprocedural slicing over the SDG (two-pass HRB).

The flat-view slicer and this one compute the same slices for the NF
corpus (the tests cross-check them at source-line granularity); this
backend exists for programs where inlining would blow up, and as the
faithful realisation of the interprocedural slicing line of work the
paper builds on (§2.1, [13]).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.lang.ir import ECall, Program, Stmt, iter_block, stmt_calls
from repro.pdg.sdg import SDG, SDGNode, K_STMT, build_sdg


class InterproceduralSlicer:
    """Backward slicing across function boundaries."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.sdg = build_sdg(program)
        self._func_of: dict = {}
        for fname, fn in program.functions.items():
            for stmt in fn.stmts():
                self._func_of[stmt.sid] = fname
        for stmt in iter_block(program.module_body):
            self._func_of[stmt.sid] = "<module>"

    def criterion_node(self, sid: int) -> SDGNode:
        """The SDG node of a statement sid."""
        func = self._func_of.get(sid)
        if func is None:
            raise KeyError(f"sid {sid} is not a program statement")
        return SDGNode(K_STMT, func, sid)

    def backward(self, sids: Iterable[int]) -> Set[int]:
        """Backward slice from the given statement sids (union)."""
        criteria = [self.criterion_node(sid) for sid in sids]
        return self.sdg.slice_sids(criteria)

    def slice_from_outputs(self, output_func: str = "send_packet") -> Set[int]:
        """Slice from every packet-output call in the program."""
        seeds: List[int] = []
        for stmt in self.program.all_stmts():
            if any(
                not c.method and c.func == output_func for c in stmt_calls(stmt)
            ):
                seeds.append(stmt.sid)
        return self.backward(seeds)

    def slice_lines(self, sids: Iterable[int]) -> Set[int]:
        """Backward slice reported as source lines."""
        slice_sids = self.backward(sids)
        self.program.reindex()
        return self.program.source_lines(slice_sids)
