"""Static backward and forward slicing over the PDG.

This is the ``BackwardSlice(stmt, vars)`` primitive of paper
Algorithm 1 (lines 3 and 8).  A backward slice is the least set of
statements closed under data and control dependence that contains the
criterion; it is *static* in the paper's sense — every statement that
*might* affect the criterion's variables is included (§2.1).
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.dataflow.reaching import INITIAL
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import SIZE_BUCKETS
from repro.pdg.pdg import PDG
from repro.slicing.criteria import SliceCriterion


class StaticSlicer:
    """Computes slices over a prebuilt PDG (reusable across criteria)."""

    def __init__(self, pdg: PDG) -> None:
        self.pdg = pdg

    def backward(self, criterion: SliceCriterion) -> Set[int]:
        """Backward slice: sids whose execution may affect the criterion."""
        stmt = self.pdg.stmts.get(criterion.sid)
        if stmt is None:
            raise KeyError(f"criterion sid {criterion.sid} is not in the block")
        variables = criterion.effective_vars(stmt)

        with obs_trace.span("slice.backward", sid=criterion.sid):
            seeds: Set[int] = set()
            for var in variables:
                for def_sid in self.pdg.chains.def_sites(criterion.sid, var):
                    if def_sid != INITIAL:
                        seeds.add(def_sid)
            seeds |= self.pdg.control_preds.get(criterion.sid, set())
            slice_sids = self.pdg.backward_reachable(seeds)
            slice_sids.add(criterion.sid)
        obs_metrics.counter("slicer.slices").inc()
        obs_metrics.histogram("slicer.slice_size", SIZE_BUCKETS).observe(
            len(slice_sids)
        )
        return slice_sids

    def backward_many(self, criteria: Iterable[SliceCriterion]) -> Set[int]:
        """Union of backward slices (Algorithm 1 unions per-output slices)."""
        out: Set[int] = set()
        for criterion in criteria:
            out |= self.backward(criterion)
        return out

    def forward(self, criterion: SliceCriterion) -> Set[int]:
        """Forward slice: sids whose behaviour the criterion may affect."""
        if criterion.sid not in self.pdg.stmts:
            raise KeyError(f"criterion sid {criterion.sid} is not in the block")
        return self.pdg.forward_reachable({criterion.sid})


def backward_slice(pdg: PDG, criterion: SliceCriterion) -> Set[int]:
    """One-shot backward slice."""
    return StaticSlicer(pdg).backward(criterion)


def forward_slice(pdg: PDG, criterion: SliceCriterion) -> Set[int]:
    """One-shot forward slice."""
    return StaticSlicer(pdg).forward(criterion)
