"""Program slicing: static (PDG-based) and dynamic (trace-based)."""

from repro.slicing.criteria import SliceCriterion
from repro.slicing.static import StaticSlicer, backward_slice, forward_slice
from repro.slicing.dynamic import DynamicSlicer, dynamic_slice

__all__ = [
    "SliceCriterion",
    "StaticSlicer",
    "backward_slice",
    "forward_slice",
    "DynamicSlicer",
    "dynamic_slice",
]
