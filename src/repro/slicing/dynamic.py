"""Dynamic slicing from execution traces (Agrawal & Horgan).

A dynamic slice contains the statements that *really* led to the
criterion's values in one concrete execution (paper §2.1) — it is what
Fig. 1 highlights for the load balancer's first-packet path.  The
interpreter records, per executed statement occurrence, the dynamic
data links (which occurrence produced each used value) and the dynamic
control link (the nearest enclosing taken branch), so the slice is
backward reachability over trace events.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.interp.trace import Trace, TraceEvent
from repro.slicing.criteria import SliceCriterion


class DynamicSlicer:
    """Computes dynamic slices over one recorded trace."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def backward(
        self, criterion: SliceCriterion, occurrence: Optional[int] = None
    ) -> Set[int]:
        """Dynamic backward slice; returns the set of *sids* involved.

        ``occurrence`` selects which execution of the criterion
        statement to slice from (default: the last one).
        """
        event = self._criterion_event(criterion, occurrence)
        if event is None:
            return set()

        needed: Set[int] = set()
        variables = criterion.variables
        if variables is None:
            seeds = [idx for idx in event.use_defs.values() if idx is not None]
        else:
            seeds = [
                idx
                for var, idx in event.use_defs.items()
                if var in variables and idx is not None
            ]
        if event.ctrl is not None:
            seeds.append(event.ctrl)

        work = list(seeds)
        while work:
            idx = work.pop()
            if idx in needed:
                continue
            needed.add(idx)
            ev = self.trace.events[idx]
            for dep in ev.use_defs.values():
                if dep is not None and dep not in needed:
                    work.append(dep)
            if ev.ctrl is not None and ev.ctrl not in needed:
                work.append(ev.ctrl)

        sids = {self.trace.events[idx].sid for idx in needed}
        sids.add(event.sid)
        return sids

    def _criterion_event(
        self, criterion: SliceCriterion, occurrence: Optional[int]
    ) -> Optional[TraceEvent]:
        events = self.trace.occurrences(criterion.sid)
        if not events:
            return None
        if occurrence is None:
            return events[-1]
        if not 0 <= occurrence < len(events):
            raise IndexError(
                f"criterion sid {criterion.sid} ran {len(events)} times; "
                f"occurrence {occurrence} requested"
            )
        return events[occurrence]


def dynamic_slice(
    trace: Trace, criterion: SliceCriterion, occurrence: Optional[int] = None
) -> Set[int]:
    """One-shot dynamic backward slice."""
    return DynamicSlicer(trace).backward(criterion, occurrence)
