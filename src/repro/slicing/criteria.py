"""Slicing criteria.

A criterion is Weiser's ``<statement, variables>`` pair: the slice must
preserve the values of those variables at that statement.  With
``variables=None`` the criterion covers every variable the statement
uses (the common case for "slice from this packet-output call").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.lang.ir import Stmt, stmt_uses


@dataclass(frozen=True)
class SliceCriterion:
    """``<sid, vars>`` — slice on the values of ``vars`` at statement ``sid``."""

    sid: int
    variables: Optional[FrozenSet[str]] = None

    @classmethod
    def at(cls, stmt: Stmt, *variables: str) -> "SliceCriterion":
        """Criterion at ``stmt`` for the named variables (or all its uses)."""
        if variables:
            return cls(stmt.sid, frozenset(variables))
        return cls(stmt.sid, None)

    def effective_vars(self, stmt: Stmt) -> FrozenSet[str]:
        """The variables the criterion actually constrains at ``stmt``."""
        if self.variables is not None:
            return self.variables
        return frozenset(stmt_uses(stmt))
