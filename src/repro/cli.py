"""Command-line interface: ``python -m repro <command> ...``.

Turns the library into the tool the paper describes — a vendor runs it
on NF source and ships the resulting model::

    python -m repro list
    python -m repro synthesize loadbalancer
    python -m repro synthesize path/to/my_nf.py --entry my_handler --json
    python -m repro batch --all -j 4
    python -m repro slice loadbalancer
    python -m repro categories snortlite
    python -m repro difftest nat -n 1000
    python -m repro testgen firewall
    python -m repro fsm loadbalancer --dot
    python -m repro workload loadbalancer out.pcap -n 200
    python -m repro profile nat
    python -m repro cache stats
    python -m repro serve --port 8000 --workers 4
    python -m repro query synthesize nat --port 8000
    python -m repro trace tail --port 8000
    python -m repro trace show req-1a2b3c4d5e6f --port 8000

Positional NF arguments accept either a corpus name (see ``list``) or a
path to an NFPy source file.

Synthesis results are memoized in a persistent artifact cache
(:mod:`repro.cache`; ``REPRO_CACHE_DIR``, default ``~/.cache/repro``),
so re-running ``synthesize``/``batch`` on unchanged sources is
near-instant.  The global ``--no-cache`` flag (before the subcommand)
disables it for one run; ``repro cache stats|clear|path`` inspects it.

Observability (see :mod:`repro.obs`) is available on every subcommand
through two global flags, given *before* the subcommand::

    python -m repro --trace out.jsonl synthesize nat   # JSONL span events
    python -m repro --profile difftest nat             # per-phase table after

``profile <nf>`` is the one-stop profiling run: it synthesizes the NF
with tracing and metrics enabled and prints the full per-phase/metric
breakdown.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional, Tuple

from repro import cache as artifact_cache
from repro import obs
from repro.apps.testing import generate_tests, validate_suite
from repro.equiv.differential import differential_test
from repro.model.fsm import build_fsm
from repro.model.serialize import model_to_json, render_model
from repro.nfactor.algorithm import (
    NFactor,
    NFactorConfig,
    SynthesisResult,
    synthesize_model_cached,
)
from repro.symbolic.engine import EngineConfig
from repro.nfs import get_nf, nf_names
from repro.nfs.registry import NFSpec


def _version() -> str:
    """The installed distribution version, else the source-tree one."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # not pip-installed (e.g. PYTHONPATH=src runs)
        import repro

        return repro.__version__


def load_spec(target: str, entry: Optional[str] = None) -> NFSpec:
    """Resolve a corpus name or a source-file path to an NFSpec."""
    path = Path(target)
    if path.suffix == ".py" and path.exists():
        return NFSpec(
            name=path.stem,
            source=path.read_text(),
            description=f"user NF from {path}",
            entry=entry,
        )
    try:
        return get_nf(target)
    except KeyError:
        raise SystemExit(
            f"error: {target!r} is neither a corpus NF ({', '.join(nf_names())}) "
            "nor an existing .py file"
        )


def synthesize(spec: NFSpec, entry: Optional[str] = None) -> SynthesisResult:
    return NFactor(spec.source, name=spec.name, entry=entry or spec.entry).synthesize()


# -- subcommands -------------------------------------------------------------


def cmd_list(args: argparse.Namespace) -> int:
    for name in nf_names():
        spec = get_nf(name)
        print(f"{name:14s} {spec.description}")
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    print(load_spec(args.nf).source)
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    spec = load_spec(args.nf, args.entry)
    config = None
    if args.parallel_paths > 1:
        # Perf-only knob: frontier exploration partitions path suffixes
        # across worker processes and produces the same bytes as
        # sequential DFS, so the artifact-cache key is unaffected.
        config = NFactorConfig(
            engine=EngineConfig(
                strategy="frontier", parallel_paths=args.parallel_paths
            )
        )
    ms = synthesize_model_cached(
        spec.source, name=spec.name, entry=args.entry or spec.entry, config=config
    )
    if args.json:
        print(ms.model_json)
    else:
        print(render_model(ms.model))
    if args.stats:
        stats = ms.stats
        print(
            f"LoC {stats.source_loc} -> slice {stats.slice_loc}; "
            f"slicing {stats.slicing_time_s * 1000:.1f} ms; "
            f"{stats.n_paths} paths in {stats.se_time_s * 1000:.1f} ms SE "
            f"({stats.solver_checks} solver checks, "
            f"{stats.solver_cache_hits} cache hits)"
            + ("; served from artifact cache" if ms.cached else "")
        )
    return 0


def cmd_slice(args: argparse.Namespace) -> int:
    spec = load_spec(args.nf, args.entry)
    result = synthesize(spec, args.entry)
    lines = result.slice_source_lines()
    for lineno, line in enumerate(result.program.source.splitlines(), start=1):
        marker = ">> " if lineno in lines else "   "
        print(marker + line)
    print(
        f"\n{len(lines)} of "
        f"{result.stats.source_loc} source lines in the packet+state slice"
    )
    return 0


def cmd_categories(args: argparse.Namespace) -> int:
    spec = load_spec(args.nf, args.entry)
    result = synthesize(spec, args.entry)
    for category, variables in result.categories.as_table().items():
        print(f"{category:8s}: {', '.join(sorted(variables)) or '-'}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run packets through a synthesized model locally (compiled by default)."""
    import json

    from repro.net.packet import Packet

    spec = load_spec(args.nf, args.entry)
    result = synthesize(spec, args.entry)
    packets = []
    if args.packet:
        for text in args.packet:
            fields = {}
            for assign in text.split(","):
                name, sep, value = assign.partition("=")
                if not sep:
                    raise SystemExit(
                        f"error: bad --packet field {assign!r} (want name=value)"
                    )
                fields[name.strip()] = int(value, 0)
            try:
                packets.append(Packet.from_dict(fields))
            except (AttributeError, TypeError, ValueError) as exc:
                raise SystemExit(f"error: bad packet {text!r}: {exc}")
    else:
        from repro.net.generator import TrafficGenerator, WorkloadSpec

        workload = WorkloadSpec(
            n_packets=args.packets, seed=args.seed,
            interesting=spec.interesting or {},
        )
        packets = list(TrafficGenerator(workload).packets())

    compiled = not args.no_compile
    if compiled:
        sim = result.make_compiled_simulator()
        sent_lists = sim.process_many(packets)
    else:
        sim = result.make_simulator()
        sent_lists = [sim.process(pkt) for pkt in packets]
    stats = sim.stats
    payload = {
        "name": result.model.name,
        "compiled": compiled,
        "stats": {
            "packets": stats.packets,
            "forwarded": stats.forwarded,
            "dropped_default": stats.dropped_default,
            "dropped_entry": stats.dropped_entry,
            "guard_evals": stats.guard_evals,
            "compiled_dispatches": stats.compiled_dispatches,
        },
    }
    if compiled:
        cm = result._compiled_model
        payload["compile"] = {
            "n_entries": cm.n_entries,
            "n_live": cm.n_live,
            "n_pruned": cm.n_pruned,
            "tree_depth": cm.tree_depth,
            "compile_seconds": round(cm.compile_seconds, 6),
        }
    if args.json:
        payload["outputs"] = [
            {
                "forwarded": bool(sent),
                "sent": [
                    {"packet": out.to_dict(), "port": port}
                    for out, port in sent
                ],
            }
            for sent in sent_lists
        ]
        print(json.dumps(payload, indent=2))
        return 0
    mode = "compiled" if compiled else "interpreted"
    print(f"{result.model.name}: {stats.packets} packets ({mode})")
    print(
        f"  forwarded {stats.forwarded}  dropped(default) "
        f"{stats.dropped_default}  dropped(entry) {stats.dropped_entry}"
    )
    print(f"  guard evals {stats.guard_evals}", end="")
    if compiled:
        cm = result._compiled_model
        print(
            f"  dispatches {stats.compiled_dispatches}  "
            f"[{cm.n_live}/{cm.n_entries} live entries, "
            f"tree depth {cm.tree_depth}, "
            f"compiled in {cm.compile_seconds * 1000:.1f} ms]"
        )
    else:
        print()
    if args.packet:
        for pkt, sent in zip(packets, sent_lists):
            verdict = (
                ", ".join(f"{out} -> port {port}" for out, port in sent)
                if sent else "drop"
            )
            print(f"  {pkt}: {verdict}")
    return 0


def cmd_difftest(args: argparse.Namespace) -> int:
    spec = load_spec(args.nf, args.entry)
    result = synthesize(spec, args.entry)
    report = differential_test(
        result, n_packets=args.packets, seed=args.seed,
        interesting=spec.interesting, compiled=args.compiled,
    )
    print(report.summary())
    for mismatch in report.mismatches[:5]:
        print(f"  packet #{mismatch.index}: {mismatch.packet}")
        print(f"    program: {mismatch.reference}")
        print(f"    model:   {mismatch.model}")
    return 0 if report.identical else 1


def cmd_testgen(args: argparse.Namespace) -> int:
    spec = load_spec(args.nf, args.entry)
    result = synthesize(spec, args.entry)
    suite = generate_tests(result)
    print(suite.summary())
    for case in suite.cases:
        pkt = case.packets[-1]
        expect = "forward" if case.expectations[-1] else "drop"
        print(f"  {case.name:24s} -> expect {expect}  ({pkt})")
    report = validate_suite(suite, result)
    print(report.summary())
    return 0 if report.all_passed else 1


def cmd_fsm(args: argparse.Namespace) -> int:
    spec = load_spec(args.nf, args.entry)
    result = synthesize(spec, args.entry)
    fsm = build_fsm(result.model)
    if args.dot:
        print(fsm.to_dot())
        return 0
    print(f"state predicates: {', '.join(fsm.atoms) or '(stateless)'}")
    for state in sorted(fsm.reachable_states(), key=sorted):
        print(f"  {fsm.render_state(state)}")
        for t in fsm.successors(state):
            action = "forward" if t.forwards else "drop"
            print(f"     --entry {t.entry_id} ({action})--> {fsm.render_state(t.dst)}")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.net.generator import TrafficGenerator, WorkloadSpec
    from repro.net.pcap import write_pcap

    spec = load_spec(args.nf, args.entry)
    generator = TrafficGenerator(
        WorkloadSpec(n_packets=args.packets, seed=args.seed, interesting=spec.interesting)
    )
    count = write_pcap(args.output, generator.packets())
    print(f"wrote {count} packets to {args.output}")
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.parallel import BatchTarget, synthesize_many

    names = list(args.nfs)
    if args.all:
        names = nf_names()
    if not names:
        raise SystemExit("error: give NF names or --all")
    targets = []
    for name in names:
        spec = load_spec(name)
        targets.append(BatchTarget(name=spec.name, source=spec.source, entry=spec.entry))

    import time

    t0 = time.perf_counter()
    outcomes = synthesize_many(
        targets, jobs=args.jobs, max_paths=args.max_paths, model_only=True
    )
    wall = time.perf_counter() - t0

    header = (
        f"{'nf':14s} {'paths':>6s} {'entries':>8s} {'time':>9s} "
        f"{'solver':>7s} {'model':>6s} {'disk':>5s} {'mem':>4s}"
    )
    print(header)
    print("-" * len(header))
    failed = 0
    for out in outcomes:
        if not out.ok:
            failed += 1
            reason = out.error.strip().splitlines()[-1] if out.error else "failed"
            print(f"{out.name:14s} {'-':>6s} {'-':>8s} {out.elapsed_s * 1000:7.1f}ms {reason}")
            continue
        stats = out.stats
        tiers = out.cache_tiers
        print(
            f"{out.name:14s} {stats.n_paths:6d} {stats.n_entries:8d} "
            f"{out.elapsed_s * 1000:7.1f}ms "
            f"{tiers.get('solver', 0):7d} {tiers.get('model', 0):6d} "
            f"{tiers.get('disk', 0):5d} {tiers.get('mem', 0):4d}"
        )
    jobs = args.jobs if args.jobs is not None else "auto"
    print(f"\n{len(outcomes) - failed}/{len(outcomes)} synthesized in {wall:.2f}s (jobs={jobs})")

    if args.json:
        import json

        payload = [
            {
                "name": out.name,
                "elapsed_s": out.elapsed_s,
                "error": out.error,
                "model": json.loads(out.model_json) if out.ok else None,
                "model_cached": out.model_cached,
                "cache_tiers": out.cache_tiers,
                "stats": (
                    {
                        "n_paths": out.stats.n_paths,
                        "n_entries": out.stats.n_entries,
                        "solver_checks": out.stats.solver_checks,
                        "solver_cache_hits": out.stats.solver_cache_hits,
                        "solver_cache_misses": out.stats.solver_cache_misses,
                    }
                    if out.ok
                    else None
                ),
            }
            for out in outcomes
        ]
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 1 if failed else 0


def _chain_models_local(names: list) -> list:
    """[(name, model)] for a chain of corpus names / .py paths (local)."""
    chain = []
    for item in names:
        spec = load_spec(item)
        ms = synthesize_model_cached(spec.source, name=spec.name, entry=spec.entry)
        chain.append((spec.name, ms.model))
    return chain


def cmd_verify(args: argparse.Namespace) -> int:
    """Local chain verification (no server needed)."""
    import json

    from repro.apps.verify import NetworkVerifier

    chain = _chain_models_local(list(args.nfs))
    verifier = NetworkVerifier(chain)
    spaces = verifier.reachable()
    payload = {
        "chain": [name for name, _ in chain],
        "can_reach": bool(spaces),
        "n_spaces": len(spaces),
        "traces": [
            [[name, entry_id] for name, entry_id in space.trace]
            for space in spaces[: args.max_traces]
        ],
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    arrow = " -> ".join(payload["chain"])
    verdict = "reachable" if payload["can_reach"] else "BLACKHOLED"
    print(f"{arrow}: {verdict} ({payload['n_spaces']} space(s))")
    for trace in payload["traces"]:
        print("  " + " -> ".join(f"{nf}#{entry}" for nf, entry in trace))
    return 0 if payload["can_reach"] else 1


def cmd_compose(args: argparse.Namespace) -> int:
    """Local chain composition analysis (no server needed)."""
    import json

    from repro.apps.compose import compose_chains

    chain_a = _chain_models_local(args.chain_a.split(","))
    chain_b = _chain_models_local(args.chain_b.split(","))
    ranked = compose_chains(chain_a, chain_b)
    if args.json:
        print(
            json.dumps(
                {
                    "recommended": list(ranked[0].order),
                    "orders": [
                        {
                            "order": list(an.order),
                            "n_conflicts": an.n_conflicts,
                            "conflicts": [
                                {
                                    "upstream": a,
                                    "downstream": b,
                                    "fields": sorted(fields),
                                }
                                for a, b, fields in an.conflicts
                            ],
                        }
                        for an in ranked
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(f"recommended: {' -> '.join(ranked[0].order)}")
    for an in ranked:
        print(f"  {' -> '.join(an.order)}: {an.n_conflicts} conflict(s)")
        for a, b, fields in an.conflicts:
            print(f"    {a} rewrites {{{', '.join(sorted(fields))}}} read by {b}")
    return 0


def cmd_verify_graph(args: argparse.Namespace) -> int:
    """Verify a DAG service graph locally (edge-summary cached)."""
    import json

    from repro.netverify import (
        GraphVerifier,
        GraphVerifyConfig,
        build_graph,
        generate_graph,
    )

    if args.generate:
        graph = generate_graph(args.generate, seed=args.seed, width=args.width)
    else:
        if not args.node:
            raise SystemExit(
                "error: give --node NAME=NF (repeatable) or --generate N"
            )
        nodes = []
        for text in args.node:
            name, sep, nf = text.partition("=")
            if not sep:
                raise SystemExit(f"error: bad --node {text!r} (want NAME=NF)")
            nodes.append((name.strip(), nf.strip()))
        edges = []
        for text in args.edge or []:
            src, sep, dst = text.partition(":")
            if not sep:
                raise SystemExit(f"error: bad --edge {text!r} (want SRC:DST)")
            edges.append((src.strip(), dst.strip()))
        try:
            graph = build_graph(nodes, edges)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")

    config = GraphVerifyConfig(
        use_cache=artifact_cache.is_enabled(), jobs=args.jobs
    )
    try:
        verdict = GraphVerifier(graph, config=config).verify()
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    stats = verdict.stats
    if args.json:
        payload = json.loads(verdict.to_json())
        payload["stats"] = stats.as_dict()
        print(json.dumps(payload, indent=2))
        return 0 if verdict.can_reach else 1
    print(graph.summary())
    print(verdict.summary())
    for witness in verdict.witnesses[:3]:
        path = " -> ".join(f"{nf}#{e}" for nf, e in witness["trace"])
        print(f"  witness @ {witness['sink']}: {path}")
    if stats.truncated_spaces:
        print(f"  (truncated {stats.truncated_spaces} fan-in space(s))")
    return 0 if verdict.can_reach else 1


def cmd_cache(args: argparse.Namespace) -> int:
    store = artifact_cache.get_store()
    if args.action == "path":
        print(store.directory if store.directory else "(no cache directory)")
        return 0
    if args.action == "clear":
        removed = store.clear_disk()
        print(f"removed {removed} cache entries from {store.directory}")
        return 0
    # stats
    stats = store.disk_stats()
    if args.json:
        import json

        print(json.dumps(stats, indent=2))
        return 0
    print(f"directory: {stats['directory']}")
    print(f"enabled:   {stats['enabled']}")
    # Canonical tiers always print (zero rows included) so a watch
    # run's invalidation pattern is inspectable at a glance; any other
    # kinds on disk follow.
    tier_order = ("frontend", "prep", "slices", "model", "sim", "edge")
    kinds = stats["kinds"]
    for kind in tier_order + tuple(sorted(set(kinds) - set(tier_order))):
        entry = kinds.get(kind, {"count": 0, "bytes": 0})
        print(f"  {kind:10s} {entry['count']:6d} entries  {entry['bytes']:10d} bytes")
    for name, size in stats["blobs"].items():
        print(f"  {name + ' (blob)':25s} {size:10d} bytes")
    print(f"total:     {stats['total_bytes']} bytes on disk")
    return 0


def _watch_line(event: dict) -> str:
    """One human-readable line per watch event (non-``--json`` mode)."""
    kind = event["event"]
    if kind == "skip":
        changed = ", ".join(event.get("changed") or []) or "no reachable units"
        return f"skip     {event['name']}  (edit outside target: {changed})"
    parts = [
        f"rebuild  {event['name']}",
        "hit" if event.get("cached") else f"{event['elapsed_s']:.2f}s",
    ]
    if event.get("diff_summary"):
        parts.append(f"diff {event['diff_summary']}")
    for shard in event.get("serve") or []:
        if shard.get("error"):
            parts.append(f"{shard['shard']} ERROR {shard['error']}")
        else:
            parts.append(f"{shard['shard']} v{shard['version']}")
    return "  ".join(parts)


def cmd_watch(args: argparse.Namespace) -> int:
    import json
    import signal
    import threading

    from repro.cache.store import parse_peers
    from repro.watch import WatchDaemon, WatchOptions, parse_target

    targets = []
    for spec in args.targets:
        target = parse_target(spec)
        if not os.path.exists(target.path):
            raise SystemExit(f"error: {target.path}: no such file")
        targets.append(target)
    serve = parse_peers(args.serve) if args.serve else ()

    def emit(event: dict) -> None:
        if args.json:
            print(json.dumps(event, sort_keys=True), flush=True)
        else:
            print(_watch_line(event), flush=True)

    daemon = WatchDaemon(
        targets,
        WatchOptions(
            interval_s=args.interval,
            serve=tuple(serve),
            push_artifacts=not args.no_push,
        ),
        emit=emit,
    )
    daemon.baseline()
    if args.once:
        return 0
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except ValueError:  # pragma: no cover - non-main thread
            pass
    while not stop.is_set():
        stop.wait(args.interval)
        if stop.is_set():
            break
        daemon.poll_once()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.cache.store import parse_peers
    from repro.serve.server import ServeConfig, run_server

    if args.cluster > 0:
        return _cmd_serve_cluster(args)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        default_timeout_s=args.timeout,
        drain_timeout_s=args.drain_timeout,
        compile_sims=not args.no_compile,
        peers=parse_peers(args.join) if args.join else (),
        cache_dir=args.cache_dir,
        warmup=not args.no_warmup,
    )
    return run_server(config)


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    """``repro serve --cluster N``: N shards + router in one process."""
    import signal
    import threading

    from repro.serve.cluster import ClusterHandle
    from repro.serve.server import ServeConfig

    base = ServeConfig(
        default_timeout_s=args.timeout,
        drain_timeout_s=args.drain_timeout,
        compile_sims=not args.no_compile,
    )
    workers = args.workers
    if workers <= 0:
        # Split the CPUs across shards rather than oversubscribing
        # N shards × N cores worth of worker processes.
        workers = max(1, (os.cpu_count() or 1) // args.cluster)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    with ClusterHandle(
        shards=args.cluster,
        workers_per_shard=workers,
        host=args.host,
        cache_root=args.cache_dir,
        warmup=not args.no_warmup,
        queue_size=args.queue_size,
        router_port=args.port,
        base_config=base,
    ) as cluster:
        shards = " ".join(
            f"{args.host}:{p}" for p in cluster.shard_ports
        )
        print(
            f"cluster up: router {args.host}:{cluster.router_port} -> "
            f"{args.cluster} shards ({shards}), {workers} workers each",
            flush=True,
        )
        stop.wait()
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    from repro.cache.store import parse_peers
    from repro.serve.router import RouterConfig, run_router

    shards = parse_peers(args.shards)
    if not shards:
        raise SystemExit(
            f"error: --shards needs host:port[,host:port...], got {args.shards!r}"
        )
    return run_router(
        RouterConfig(
            host=args.host,
            port=args.port,
            shards=shards,
            health_interval_s=args.health_interval,
        )
    )


def _query_spec(target: str) -> Optional[NFSpec]:
    """Resolve a query target locally, or None to send the bare name.

    A name that is neither a corpus NF nor an existing ``.py`` file may
    still be a target registered on the server by ``repro watch``
    (``POST /v1/reload``) — pass it through as ``nf`` and let the
    server's model registry resolve it.
    """
    path = Path(target)
    if path.suffix == ".py" and path.exists():
        return load_spec(target)
    try:
        return get_nf(target)
    except KeyError:
        return None


def cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    if args.wait:
        if not client.wait_until_up(args.wait):
            print(f"error: no server at {args.host}:{args.port} "
                  f"after {args.wait:.0f}s", file=sys.stderr)
            return 1

    def packet_args(pairs: list) -> list:
        packets = []
        for text in pairs:
            fields = {}
            for assign in text.split(","):
                name, sep, value = assign.partition("=")
                if not sep:
                    raise SystemExit(f"error: bad --packet field {assign!r} "
                                     "(want name=value)")
                fields[name.strip()] = int(value, 0)
            packets.append(fields)
        return packets

    try:
        if args.action == "healthz":
            response = client.healthz()
        elif args.action == "metrics":
            print(client.metrics_text(), end="")
            return 0
        elif args.action == "synthesize":
            if not args.nfs:
                raise SystemExit("error: query synthesize needs an NF")
            spec = _query_spec(args.nfs[0])
            if spec is None:
                response = client.synthesize(nf=args.nfs[0])
            else:
                response = client.synthesize(
                    source=spec.source, name=spec.name, entry=spec.entry
                )
        elif args.action == "simulate":
            if not args.nfs:
                raise SystemExit("error: query simulate needs an NF")
            spec = _query_spec(args.nfs[0])
            packets = packet_args(args.packet or []) or [{}]
            if spec is None:
                response = client.simulate(
                    nf=args.nfs[0], packets=packets,
                    compile=False if args.no_compile else None,
                )
            else:
                response = client.simulate(
                    source=spec.source, name=spec.name, entry=spec.entry,
                    packets=packets,
                    compile=False if args.no_compile else None,
                )
        elif args.action == "verify":
            if not args.nfs:
                raise SystemExit("error: query verify needs a chain of NFs")
            response = client.verify(list(args.nfs))
        elif args.action == "compose":
            if not (args.chain_a and args.chain_b):
                raise SystemExit("error: query compose needs --chain-a and --chain-b")
            response = client.compose(
                args.chain_a.split(","), args.chain_b.split(",")
            )
        elif args.action == "testgen":
            if not args.nfs:
                raise SystemExit("error: query testgen needs an NF")
            response = client.testgen(args.nfs[0])
        else:  # pragma: no cover - argparse restricts choices
            raise SystemExit(f"error: unknown query action {args.action!r}")
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    print(json.dumps(response.payload, indent=2))
    return 0 if response.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Inspect a running server's flight recorder (``/debugz``)."""
    import json

    from repro.obs.recorder import render_span_tree, to_chrome_trace
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.action in ("tail", "slow", "errors"):
            kind = "requests" if args.action == "tail" else args.action
            result = client.debugz(kind, n=args.n).raise_for_status().result or {}
            rows = result.get("requests") or []
            if args.json:
                print(json.dumps(rows, indent=2))
                return 0
            if not rows:
                print("(no requests recorded)")
                return 0
            header = (
                f"{'request id':18s} {'op':12s} {'status':>6s} "
                f"{'elapsed':>10s}  trace id"
            )
            print(header)
            print("-" * len(header))
            for row in rows:
                print(
                    f"{row.get('request_id', ''):18s} {row.get('op', ''):12s} "
                    f"{row.get('status', 0):6d} "
                    f"{row.get('elapsed_ms', 0.0):8.1f}ms  "
                    f"{row.get('trace_id', '')}"
                )
                if row.get("error"):
                    print(f"    error: {row['error']}")
            return 0

        request_id = args.request_id
        if not request_id and args.last:
            rows = (
                client.debugz("requests", n=1).raise_for_status().result or {}
            ).get("requests") or []
            if not rows:
                print("error: no requests recorded yet", file=sys.stderr)
                return 1
            request_id = rows[0]["request_id"]
        if not request_id:
            raise SystemExit(
                f"error: trace {args.action} needs a request id (or --last)"
            )
        detail = client.trace_detail(request_id)
        if args.action == "show":
            print(
                f"request {detail.get('request_id')}  "
                f"trace {detail.get('trace_id') or '(tracing off)'}  "
                f"op={detail.get('op')} status={detail.get('status')} "
                f"elapsed={detail.get('elapsed_ms', 0.0):.1f}ms"
            )
            phases = detail.get("phases_ms") or {}
            if phases:
                print(
                    "phases: "
                    + "  ".join(f"{k}={v:.1f}ms" for k, v in phases.items())
                )
            if detail.get("error"):
                print(f"error: {detail['error']}")
            print(render_span_tree(detail))
            return 0
        # export
        out = args.chrome or f"{request_id}.chrome.json"
        Path(out).write_text(
            json.dumps(to_chrome_trace(detail), indent=2) + "\n"
        )
        print(
            f"wrote chrome trace for {request_id} to {out} "
            "(open in chrome://tracing or ui.perfetto.dev)"
        )
        return 0
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_profile(args: argparse.Namespace) -> int:
    spec = load_spec(args.nf, args.entry)
    result = synthesize(spec, args.entry)
    print(_render_ambient_profile(result))
    stats = result.stats
    print(
        f"\n{spec.name}: {stats.n_paths} paths -> {stats.n_entries} entries; "
        f"{stats.solver_checks} solver checks; "
        f"pipeline {sum(stats.phase_timings.values()) * 1000:.1f} ms"
    )
    return 0


def _render_ambient_profile(result: Optional[SynthesisResult] = None) -> str:
    """The profile table from the ambient tracer/registry (CLI view)."""
    profile = obs.collect_profile(
        obs.trace.active(),
        obs.metrics.active() if obs.metrics.active().enabled else None,
        phase_timings=result.stats.phase_timings if result is not None else None,
    )
    return obs.render_profile(profile)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NFactor: synthesize NF forwarding models by program analysis",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="stream span events of this run to FILE as JSONL",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the per-phase/metric profile after the command",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent artifact cache for this run",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def nf_command(name: str, handler, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("nf", help="corpus NF name or path to an NFPy .py file")
        p.add_argument("--entry", help="per-packet entry function (auto-detected)")
        p.set_defaults(func=handler)
        return p

    p = sub.add_parser("list", help="list the corpus NFs")
    p.set_defaults(func=cmd_list)

    nf_command("show", cmd_show, "print an NF's source")

    p = nf_command("synthesize", cmd_synthesize, "synthesize and print the model")
    p.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    p.add_argument("--stats", action="store_true", help="print pipeline statistics")
    p.add_argument(
        "--parallel-paths",
        type=int,
        default=1,
        metavar="N",
        help="explore path suffixes across N worker processes "
        "(frontier strategy; same model bytes as sequential DFS)",
    )

    nf_command("slice", cmd_slice, "print the source with the slice highlighted")
    nf_command("categories", cmd_categories, "print the Table-1 variable categories")

    p = nf_command(
        "simulate", cmd_simulate,
        "run packets through the synthesized model (compiled dataplane)",
    )
    p.add_argument(
        "--packet", action="append", metavar="F=V[,F=V...]",
        help="one packet as field=value pairs (repeatable; default: "
        "a random workload)",
    )
    p.add_argument(
        "-n", "--packets", type=int, default=1000,
        help="random workload size when no --packet is given",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--no-compile", action="store_true",
        help="use the interpreted ModelSimulator instead of the compiler",
    )
    p.add_argument("--json", action="store_true", help="emit JSON")

    p = nf_command("difftest", cmd_difftest, "model vs. program on random packets")
    p.add_argument("-n", "--packets", type=int, default=1000)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--compiled", action="store_true",
        help="run the model side through the compiled simulator",
    )

    nf_command("testgen", cmd_testgen, "generate + validate model-guided tests")

    p = nf_command("fsm", cmd_fsm, "print the model's per-flow state machine")
    p.add_argument("--dot", action="store_true", help="emit Graphviz dot")

    p = sub.add_parser(
        "batch", help="synthesize many NFs across worker processes"
    )
    p.add_argument("nfs", nargs="*", help="corpus NF names or NFPy .py paths")
    p.add_argument("--all", action="store_true", help="the whole corpus")
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: one per NF, capped by CPUs; 1 = in-process)",
    )
    p.add_argument("--max-paths", type=int, default=16384)
    p.add_argument("--json", metavar="FILE", help="also write results to FILE as JSON")
    p.set_defaults(func=cmd_batch)

    p = nf_command("workload", cmd_workload, "generate a pcap workload for an NF")
    p.add_argument("output", help="output .pcap path")
    p.add_argument("-n", "--packets", type=int, default=100)
    p.add_argument("--seed", type=int, default=7)
    # reorder: nf positional already added by nf_command before output

    nf_command(
        "profile", cmd_profile, "synthesize with tracing on, print the profile"
    )

    p = sub.add_parser(
        "verify",
        help="verify a linear NF chain locally (no server needed)",
    )
    p.add_argument(
        "nfs", nargs="+",
        help="the chain, in order: corpus NF names or NFPy .py paths",
    )
    p.add_argument("--max-traces", type=int, default=10)
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "compose",
        help="rank safe interleavings of two NF chains locally",
    )
    p.add_argument("chain_a", help="comma-separated chain A")
    p.add_argument("chain_b", help="comma-separated chain B")
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(func=cmd_compose)

    p = sub.add_parser(
        "verify-graph",
        help="verify a DAG service graph (per-edge summary cache)",
    )
    p.add_argument(
        "--node", action="append", metavar="NAME=NF",
        help="one node bound to a corpus NF (repeatable)",
    )
    p.add_argument(
        "--edge", action="append", metavar="SRC:DST",
        help="one directed edge between named nodes (repeatable)",
    )
    p.add_argument(
        "--generate", type=int, default=0, metavar="N",
        help="instead of --node/--edge: a seeded N-node layered DAG "
        "over the corpus",
    )
    p.add_argument("--seed", type=int, default=7, help="--generate seed")
    p.add_argument(
        "--width", type=int, default=5, help="--generate layer width"
    )
    p.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes for independent edges (same bytes as -j 1)",
    )
    p.add_argument("--json", action="store_true", help="emit JSON")
    p.set_defaults(func=cmd_verify_graph)

    p = sub.add_parser(
        "serve",
        help="run the synthesis & model-query service (JSON over HTTP)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000, help="0 = ephemeral")
    p.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (default: one per CPU)",
    )
    p.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded request queue capacity (full queue -> HTTP 429)",
    )
    p.add_argument(
        "--timeout", type=float, default=60.0,
        help="default per-request deadline in seconds",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=60.0,
        help="max seconds SIGTERM drain waits for in-flight requests",
    )
    p.add_argument(
        "--no-compile", action="store_true",
        help="serve simulate requests with the interpreted simulator "
        "instead of the model compiler",
    )
    p.add_argument(
        "--cluster", type=int, default=0, metavar="N",
        help="run N shard servers behind a consistent-hash router "
        "(--port is the router; shards get ephemeral ports)",
    )
    p.add_argument(
        "--join", metavar="HOST:PORT[,HOST:PORT...]",
        help="cache peers: artifact-cache misses peer-fill from these "
        "shards, and the model registry of the first reachable one "
        "pre-warms this shard on start",
    )
    p.add_argument(
        "--cache-dir", metavar="DIR",
        help="private artifact-cache directory for this shard "
        "(--cluster: the root; each shard gets DIR/shard-<i>)",
    )
    p.add_argument(
        "--no-warmup", action="store_true",
        help="skip replica warm-up from --join peers",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "route",
        help="run the cluster router in front of running shard servers",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8100, help="0 = ephemeral")
    p.add_argument(
        "--shards", required=True, metavar="HOST:PORT[,HOST:PORT...]",
        help="the shard servers to route across",
    )
    p.add_argument(
        "--health-interval", type=float, default=1.0,
        help="seconds between shard health probes (0 disables)",
    )
    p.set_defaults(func=cmd_route)

    p = sub.add_parser(
        "query", help="query a running repro serve instance"
    )
    p.add_argument(
        "action",
        choices=[
            "synthesize", "simulate", "verify", "compose", "testgen",
            "healthz", "metrics",
        ],
    )
    p.add_argument(
        "nfs", nargs="*",
        help="NF name(s)/path(s): one for synthesize/simulate/testgen, "
        "the chain for verify",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000)
    p.add_argument("--timeout", type=float, default=120.0, help="client timeout")
    p.add_argument(
        "--wait", type=float, default=0.0, metavar="SECONDS",
        help="poll /healthz up to SECONDS for the server to come up",
    )
    p.add_argument(
        "--packet", action="append", metavar="F=V[,F=V...]",
        help="simulate: one packet as field=value pairs (repeatable)",
    )
    p.add_argument(
        "--no-compile", action="store_true",
        help="simulate: ask the server for the interpreted simulator",
    )
    p.add_argument("--chain-a", help="compose: comma-separated chain A")
    p.add_argument("--chain-b", help="compose: comma-separated chain B")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "trace",
        help="inspect a running server's request traces (/debugz)",
    )
    p.add_argument(
        "action",
        choices=["tail", "show", "slow", "errors", "export"],
        help="tail: recent requests; show: one request's span tree; "
        "slow/errors: pinned outliers; export: chrome://tracing JSON",
    )
    p.add_argument(
        "request_id", nargs="?",
        help="request id for show/export (from tail or a response envelope)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000)
    p.add_argument("--timeout", type=float, default=30.0, help="client timeout")
    p.add_argument("-n", type=int, default=16, help="list length for tail/slow/errors")
    p.add_argument(
        "--last", action="store_true",
        help="show/export the most recent request instead of naming one",
    )
    p.add_argument(
        "--chrome", metavar="FILE",
        help="export: output path (default <request-id>.chrome.json)",
    )
    p.add_argument("--json", action="store_true", help="emit raw JSON for lists")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("cache", help="inspect or clear the persistent artifact cache")
    p.add_argument(
        "action",
        choices=["stats", "clear", "path"],
        help="stats: entry counts and sizes; clear: delete entries; path: print dir",
    )
    p.add_argument("--json", action="store_true", help="emit stats as JSON")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "watch",
        help="watch NF sources, re-synthesize incrementally, hot-swap serve shards",
    )
    p.add_argument(
        "targets", nargs="+", metavar="PATH[:ENTRY]",
        help="NFPy source files to watch; PATH.py:entry pins the entry "
        "function (several entries in one file are separate targets)",
    )
    p.add_argument(
        "--serve", metavar="HOST:PORT[,...]", default=None,
        help="serve shards to peer-fill and hot-swap on every rebuild",
    )
    p.add_argument(
        "--interval", type=float, default=0.5, help="poll interval in seconds"
    )
    p.add_argument(
        "--once", action="store_true",
        help="baseline build (and push) every target, then exit",
    )
    p.add_argument(
        "--json", action="store_true", help="emit one JSON event per line"
    )
    p.add_argument(
        "--no-push", action="store_true",
        help="hot-swap shards without peer-filling artifacts first",
    )
    p.set_defaults(func=cmd_watch)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.no_cache:
            # override() restores the previous store on exit, so in-process
            # callers (tests) don't leak the disabled state across calls.
            with artifact_cache.override(enabled=False):
                return _dispatch(args)
        return _dispatch(args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `repro query ... | head`).
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    want_obs = bool(args.trace) or args.profile or args.command == "profile"
    if not want_obs:
        return args.func(args)

    writer = obs.JsonlWriter(args.trace) if args.trace else None
    tracer = obs.Tracer(sink=writer)
    registry = obs.MetricsRegistry()
    try:
        with obs.observed(tracer, registry):
            code = args.func(args)
            if args.profile and args.command != "profile":
                print()
                print(_render_ambient_profile())
    finally:
        if writer is not None:
            writer.close()
    return code


if __name__ == "__main__":
    sys.exit(main())
