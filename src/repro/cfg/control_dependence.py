"""Control dependence (Ferrante–Ottenstein–Warren).

Node *n* is control dependent on branch node *b* iff *b* has successors
*s1*, *s2* such that *n* post-dominates *s1* but not *b* itself.  The
standard PDG construction: for each CFG edge ``(a, b)`` where ``b`` does
not post-dominate ``a``, every node on the post-dominator-tree path from
``b`` up to (but excluding) ``ipdom(a)`` is control dependent on ``a``.

This is exactly the notion of control dependence Algorithm 1's backward
slices close over: a sliced statement drags in the conditionals that
decide whether it executes.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.cfg.dominance import immediate_postdominators
from repro.cfg.graph import CFG, ENTRY, EXIT


def control_dependence(cfg: CFG) -> Dict[int, Set[int]]:
    """Map each node to the set of branch nodes it is control dependent on.

    ENTRY/EXIT never appear as dependents.  Virtual exit edges *are*
    followed so that statements after a ``while True`` loop (reachable
    only via ``break``) acquire the right dependences.
    """
    ipdom = immediate_postdominators(cfg)
    deps: Dict[int, Set[int]] = {n: set() for n in cfg.nodes}

    for edge in cfg.edges():
        a, b = edge.src, edge.dst
        if a not in ipdom or b not in ipdom:
            continue
        stop = ipdom.get(a)
        runner = b
        while runner != stop and runner != EXIT:
            # No self-exclusion: a loop header is control dependent on
            # itself (its condition decides whether it runs again).
            deps[runner].add(a)
            nxt = ipdom.get(runner)
            if nxt is None or nxt == runner:
                break
            runner = nxt

    for synthetic in (ENTRY, EXIT):
        deps.pop(synthetic, None)
        for dep_set in deps.values():
            dep_set.discard(ENTRY)
            dep_set.discard(EXIT)
    return deps
