"""Building a CFG from the structured IR.

The builder threads a set of "dangling" labelled exits through the block
structure: each statement consumes the previous dangling exits as its
predecessors and produces its own.  ``break``/``continue`` route their
exits to the enclosing loop's continuation/header; ``return`` routes to
EXIT.  ``while True`` loops additionally get a *virtual* edge from the
header to the loop continuation so that every node can reach EXIT in the
augmented graph (required for post-dominance; see
:mod:`repro.cfg.graph`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.cfg.graph import CFG, ENTRY, EXIT, EdgeLabel
from repro.lang.ir import (
    EConst,
    SBreak,
    SContinue,
    SIf,
    SReturn,
    SWhile,
    Stmt,
)

#: A dangling exit: (source node, label the out-edge should carry).
Dangling = Tuple[int, EdgeLabel]


@dataclass
class _LoopContext:
    """Break/continue routing for one enclosing loop."""

    header: int
    breaks: List[Dangling] = field(default_factory=list)


def build_cfg(block: Sequence[Stmt]) -> CFG:
    """Build the CFG of a statement block (typically a function body)."""
    cfg = CFG()
    loops: List[_LoopContext] = []

    def wire(dangling: List[Dangling], target: int) -> None:
        for src, label in dangling:
            cfg.add_edge(src, target, label)

    def walk(stmts: Sequence[Stmt], incoming: List[Dangling]) -> List[Dangling]:
        dangling = incoming
        for stmt in stmts:
            dangling = walk_stmt(stmt, dangling)
        return dangling

    def walk_stmt(stmt: Stmt, incoming: List[Dangling]) -> List[Dangling]:
        cfg.add_node(stmt.sid)
        wire(incoming, stmt.sid)

        if isinstance(stmt, SIf):
            then_exits = walk(stmt.then, [(stmt.sid, True)])
            if stmt.orelse:
                else_exits = walk(stmt.orelse, [(stmt.sid, False)])
            else:
                else_exits = [(stmt.sid, False)]
            return then_exits + else_exits

        if isinstance(stmt, SWhile):
            ctx = _LoopContext(header=stmt.sid)
            loops.append(ctx)
            body_exits = walk(stmt.body, [(stmt.sid, True)])
            loops.pop()
            wire(body_exits, stmt.sid)  # back edge
            infinite = isinstance(stmt.cond, EConst) and stmt.cond.value is True
            exits: List[Dangling] = list(ctx.breaks)
            if infinite:
                exits.append((stmt.sid, "virtual"))
            else:
                exits.append((stmt.sid, False))
            return exits

        if isinstance(stmt, SReturn):
            cfg.add_edge(stmt.sid, EXIT)
            # Ball–Horwitz pseudo-fallthrough: makes the jump a
            # pseudo-predicate so control dependence on it is computed.
            return [(stmt.sid, "pseudo")]

        if isinstance(stmt, SBreak):
            if not loops:
                raise ValueError(f"break outside loop at sid {stmt.sid}")
            loops[-1].breaks.append((stmt.sid, None))
            return [(stmt.sid, "pseudo")]

        if isinstance(stmt, SContinue):
            if not loops:
                raise ValueError(f"continue outside loop at sid {stmt.sid}")
            cfg.add_edge(stmt.sid, loops[-1].header)
            return [(stmt.sid, "pseudo")]

        return [(stmt.sid, None)]

    final = walk(block, [(ENTRY, None)])
    wire(final, EXIT)
    if not block:
        cfg.add_edge(ENTRY, EXIT)
    return cfg
