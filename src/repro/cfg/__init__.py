"""Control-flow graphs, dominance and control dependence."""

from repro.cfg.graph import CFG, ENTRY, EXIT, Edge
from repro.cfg.builder import build_cfg
from repro.cfg.dominance import dominators, postdominators, immediate_dominators
from repro.cfg.control_dependence import control_dependence

__all__ = [
    "CFG",
    "ENTRY",
    "EXIT",
    "Edge",
    "build_cfg",
    "dominators",
    "postdominators",
    "immediate_dominators",
    "control_dependence",
]
