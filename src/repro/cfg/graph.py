"""The control-flow graph data structure.

Nodes are statement sids; two synthetic nodes :data:`ENTRY` and
:data:`EXIT` bracket the graph.  Edges carry a label:

* ``True`` / ``False`` — branch outcomes of ``if``/``while`` headers;
* ``None`` — unconditional fallthrough;
* ``"virtual"`` — synthetic exit edges added for non-terminating loops
  (``while True``) so post-dominance stays well-defined;
* ``"pseudo"`` — Ball–Horwitz pseudo-fallthrough edges from jump
  statements (``return``/``break``/``continue``) to their textual
  successor.  They make jumps act as pseudo-predicates, so control
  dependence *on* jumps is computed and slices that must preserve a
  jump include it — without this, removing an unsliced ``return``
  would change which statements execute in the sliced program.

Execution layers ignore virtual and pseudo edges; dominance and control
dependence follow them.  Dataflow analyses exclude them (values do not
actually flow along them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

ENTRY = -1
EXIT = -2

EdgeLabel = Union[bool, None, str]


@dataclass(frozen=True)
class Edge:
    """A labelled CFG edge."""

    src: int
    dst: int
    label: EdgeLabel = None

    @property
    def virtual(self) -> bool:
        """True for synthetic edges (virtual exits and pseudo fallthroughs)."""
        return self.label in ("virtual", "pseudo")


@dataclass
class CFG:
    """A directed control-flow graph over statement sids."""

    nodes: Set[int] = field(default_factory=lambda: {ENTRY, EXIT})
    _succs: Dict[int, List[Edge]] = field(default_factory=dict)
    _preds: Dict[int, List[Edge]] = field(default_factory=dict)

    def add_node(self, node: int) -> None:
        """Add a node (idempotent)."""
        self.nodes.add(node)

    def add_edge(self, src: int, dst: int, label: EdgeLabel = None) -> None:
        """Add a labelled edge, creating endpoints as needed."""
        self.nodes.add(src)
        self.nodes.add(dst)
        edge = Edge(src, dst, label)
        self._succs.setdefault(src, []).append(edge)
        self._preds.setdefault(dst, []).append(edge)

    def succ_edges(self, node: int, virtual: bool = True) -> List[Edge]:
        """Outgoing edges (optionally excluding virtual ones)."""
        edges = self._succs.get(node, [])
        if virtual:
            return list(edges)
        return [e for e in edges if not e.virtual]

    def pred_edges(self, node: int, virtual: bool = True) -> List[Edge]:
        """Incoming edges (optionally excluding virtual ones)."""
        edges = self._preds.get(node, [])
        if virtual:
            return list(edges)
        return [e for e in edges if not e.virtual]

    def succs(self, node: int, virtual: bool = True) -> List[int]:
        """Successor node ids."""
        return [e.dst for e in self.succ_edges(node, virtual)]

    def preds(self, node: int, virtual: bool = True) -> List[int]:
        """Predecessor node ids."""
        return [e.src for e in self.pred_edges(node, virtual)]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        for edges in self._succs.values():
            yield from edges

    def branch_label(self, src: int, dst: int) -> EdgeLabel:
        """Label of the (first) edge from ``src`` to ``dst``."""
        for e in self._succs.get(src, []):
            if e.dst == dst:
                return e.label
        raise KeyError(f"no edge {src} -> {dst}")

    def reverse_postorder(self, start: int = ENTRY) -> List[int]:
        """Nodes in reverse postorder from ``start`` (virtual edges included)."""
        seen: Set[int] = set()
        order: List[int] = []
        stack: List[Tuple[int, Iterator[int]]] = [(start, iter(self.succs(start)))]
        seen.add(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(self.succs(succ))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def reachable(self, start: int = ENTRY, virtual: bool = True) -> Set[int]:
        """Nodes reachable from ``start``."""
        seen: Set[int] = {start}
        work = [start]
        while work:
            node = work.pop()
            for succ in self.succs(node, virtual):
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    def reversed_view(self) -> "CFG":
        """A new CFG with every edge reversed (for post-dominance)."""
        rev = CFG(nodes=set(self.nodes))
        for edge in self.edges():
            rev.add_edge(edge.dst, edge.src, edge.label)
        return rev

    def to_dot(self, names: Optional[Dict[int, str]] = None) -> str:
        """Render as Graphviz dot (debug aid)."""
        lines = ["digraph cfg {"]
        for node in sorted(self.nodes):
            label = (names or {}).get(node) or {ENTRY: "ENTRY", EXIT: "EXIT"}.get(node, str(node))
            lines.append(f'  n{node & 0xFFFFFFFF} [label="{label}"];')
        for edge in self.edges():
            attr = "" if edge.label is None else f' [label="{edge.label}"]'
            lines.append(f"  n{edge.src & 0xFFFFFFFF} -> n{edge.dst & 0xFFFFFFFF}{attr};")
        lines.append("}")
        return "\n".join(lines)
