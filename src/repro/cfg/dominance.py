"""Dominator and post-dominator computation.

Uses the Cooper–Harvey–Kennedy iterative algorithm over reverse
postorder — simple, and fast enough at the CFG sizes NF programs reach.
Post-dominators are dominators of the reversed graph rooted at EXIT;
the virtual exit edges added by the builder guarantee EXIT reaches
every node in that reversed view.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cfg.graph import CFG, ENTRY, EXIT


def immediate_dominators(cfg: CFG, root: int = ENTRY) -> Dict[int, int]:
    """Immediate dominator of every node reachable from ``root``.

    The root maps to itself.  Unreachable nodes are absent.
    """
    order = cfg.reverse_postorder(root)
    index = {node: i for i, node in enumerate(order)}
    idom: Dict[int, Optional[int]] = {node: None for node in order}
    idom[root] = root

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == root:
                continue
            preds = [p for p in cfg.preds(node) if p in index and idom[p] is not None]
            if not preds:
                continue
            new = preds[0]
            for p in preds[1:]:
                new = intersect(new, p)
            if idom[node] != new:
                idom[node] = new
                changed = True
    return {n: d for n, d in idom.items() if d is not None}


def dominators(cfg: CFG, root: int = ENTRY) -> Dict[int, Set[int]]:
    """Full dominator sets (computed from the idom tree)."""
    idom = immediate_dominators(cfg, root)
    doms: Dict[int, Set[int]] = {}
    for node in idom:
        chain = {node}
        cur = node
        while idom[cur] != cur:
            cur = idom[cur]
            chain.add(cur)
        doms[node] = chain
    return doms


def immediate_postdominators(cfg: CFG) -> Dict[int, int]:
    """Immediate post-dominator of every node (EXIT maps to itself)."""
    return immediate_dominators(cfg.reversed_view(), EXIT)


def postdominators(cfg: CFG) -> Dict[int, Set[int]]:
    """Full post-dominator sets."""
    return dominators(cfg.reversed_view(), EXIT)
