"""Symbolic execution over the IR (the KLEE substitute — DESIGN.md §2).

The engine explores execution paths of a flat block with symbolic packet
fields, configuration scalars and state variables; each finished path
carries its path condition, the packets it emitted and the state writes
it performed.  NFactor turns those paths into model table entries.
"""

from repro.symbolic.expr import (
    SVar,
    SApp,
    SDictVal,
    Sym,
    SymPacket,
    SymDict,
    canon,
    eval_sym,
    is_concrete,
    sym_vars,
)
from repro.symbolic.solver import (
    ConstraintCache,
    Solver,
    SolverContext,
    SolverResult,
    clear_global_cache,
    global_cache,
)
from repro.symbolic.state import SymState, PathResult
from repro.symbolic.engine import SymbolicEngine, EngineConfig

__all__ = [
    "SVar",
    "SApp",
    "SDictVal",
    "Sym",
    "SymPacket",
    "SymDict",
    "canon",
    "eval_sym",
    "is_concrete",
    "sym_vars",
    "Solver",
    "SolverResult",
    "SolverContext",
    "ConstraintCache",
    "global_cache",
    "clear_global_cache",
    "SymState",
    "PathResult",
    "SymbolicEngine",
    "EngineConfig",
]
