"""Symbolic execution state and finished-path records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.symbolic.expr import Sym, SymDict, SymPacket, canon

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.symbolic.solver import SolverContext


def sym_copy(value: Any) -> Any:
    """Fork-copy a symbolic runtime value.

    Immutable symbolic trees are shared; containers, packets and state
    dicts are copied so forked paths cannot see each other's writes.
    """
    if isinstance(value, SymPacket):
        return value.copy()
    if isinstance(value, SymDict):
        return value.copy()
    if isinstance(value, list):
        return [sym_copy(v) for v in value]
    if isinstance(value, dict):
        return {k: sym_copy(v) for k, v in value.items()}
    if isinstance(value, tuple):
        return tuple(sym_copy(v) for v in value)
    return value


@dataclass
class SymState:
    """One in-flight symbolic execution path."""

    pc: int
    env: Dict[str, Any]
    constraints: List[Any] = field(default_factory=list)
    executed: List[int] = field(default_factory=list)
    branches: List[Tuple[int, bool]] = field(default_factory=list)
    sent: List[Tuple[Dict[str, Any], Optional[Any]]] = field(default_factory=list)
    state_writes: List[Tuple[int, str]] = field(default_factory=list)
    loop_counts: Dict[int, int] = field(default_factory=dict)
    steps: int = 0
    status: str = "live"  # live | done | pruned | truncated | error
    note: str = ""
    #: Incrementally-propagated solver knowledge covering a prefix of
    #: ``constraints`` (see :class:`repro.symbolic.solver.SolverContext`).
    #: Owned by this state: never shared between live paths.  The engine
    #: installs the branch-arm context after each fork, so it is *not*
    #: copied here (a fork's context differs from its parent's by
    #: exactly the committed arm).
    solver_ctx: Optional["SolverContext"] = field(default=None, repr=False, compare=False)
    #: A concrete assignment known to satisfy the whole path condition
    #: (every constraint evaluates true under it, unassigned leaves
    #: taking :func:`repro.symbolic.expr.eval_sym`'s defaults), or None
    #: when the last feasibility answer was "unknown".  Maintained by
    #: the engine's witness shortcut; never mutated in place (always
    #: replaced), so forks may share the reference.
    witness: Optional[Dict[str, Any]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def fork(self) -> "SymState":
        """An independent copy for the other branch arm.

        ``witness`` is deliberately *not* inherited: the fork's path
        condition will gain the opposite branch arm, which the parent's
        witness need not satisfy.  The engine assigns both sides'
        witnesses right after the fork.
        """
        return SymState(
            pc=self.pc,
            env={k: sym_copy(v) for k, v in self.env.items()},
            constraints=list(self.constraints),
            executed=list(self.executed),
            branches=list(self.branches),
            sent=[(dict(fields), port) for fields, port in self.sent],
            state_writes=list(self.state_writes),
            loop_counts=dict(self.loop_counts),
            steps=self.steps,
            status=self.status,
            note=self.note,
            witness=None,
        )

    def __getstate__(self) -> Dict[str, Any]:
        # Solver contexts are in-process propagation caches — cheap to
        # rebuild and not designed to cross a process boundary (frontier
        # workers re-derive them from the constraint prefix).
        state = dict(self.__dict__)
        state["solver_ctx"] = None
        return state


@dataclass
class PathResult:
    """A finished execution path (one model-table-entry candidate).

    ``constraints`` is the path condition; ``sent`` the symbolic packets
    emitted (empty ⇒ the path's action is the implicit *drop*, paper
    §3.2); ``state_writes`` the (sid, var) writes to watched state;
    ``env`` the final environment (symbolic state values included).
    """

    path_id: int
    status: str
    constraints: List[Any]
    executed: List[int]
    branches: List[Tuple[int, bool]]
    sent: List[Tuple[Dict[str, Any], Optional[Any]]]
    state_writes: List[Tuple[int, str]]
    env: Dict[str, Any]
    note: str = ""

    @property
    def drops(self) -> bool:
        """True when the path emits nothing (implicit drop)."""
        return not self.sent

    def executed_set(self) -> frozenset:
        return frozenset(self.executed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "drop" if self.drops else f"send×{len(self.sent)}"
        return (
            f"PathResult(#{self.path_id} {self.status} {kind} "
            f"|pc|={len(self.constraints)} |stmts|={len(self.executed)})"
        )


# ---------------------------------------------------------------------------
# State signatures (duplicate-state detection)
# ---------------------------------------------------------------------------


class _Unsignable(Exception):
    """The environment holds a value the signature cannot canonicalize."""


def state_signature(state: SymState) -> Optional[Tuple[Any, ...]]:
    """A canonical signature of everything that steers future execution.

    Two live states with equal signatures — same program counter, same
    loop counters, and deeply-canonical-equal environments with
    *isomorphic aliasing* of mutable containers — execute identically
    from here on (up to solver feasibility of their differing path
    conditions, which the subsumption replay re-checks).  The path
    prefix (constraints/executed/sent/…) is deliberately excluded: it
    is history, not future.

    Aliasing matters because two env slots can reference the *same*
    ``SymDict``/list/dict object: a write through one is visible through
    the other.  Mutable objects are therefore numbered in traversal
    order and revisits emit a back-reference, so signatures agree only
    when the object graphs are isomorphic.

    Returns ``None`` when the environment holds a value the signature
    cannot soundly canonicalize (such states are simply never deduped).
    """
    parts: List[str] = []
    memo: Dict[int, int] = {}
    try:
        for name in sorted(state.env):
            parts.append(f"n:{name}")
            _sig_value(state.env[name], parts, memo)
    except _Unsignable:
        return None
    return (
        state.pc,
        tuple(sorted(state.loop_counts.items())),
        tuple(parts),
    )


def _sig_ref(value: Any, parts: List[str], memo: Dict[int, int]) -> bool:
    """Emit a back-reference for an already-seen mutable; True if seen."""
    index = memo.get(id(value))
    if index is not None:
        parts.append(f"ref:{index}")
        return True
    memo[id(value)] = len(memo)
    return False


_SIG_SCALARS = (bool, int, float, str, type(None))


def _all_scalar(values: Any) -> bool:
    return all(isinstance(v, _SIG_SCALARS) for v in values)


def _sig_value(value: Any, parts: List[str], memo: Dict[int, int]) -> None:
    from repro.net.packet import Packet

    if isinstance(value, Sym):
        # Immutable trees: structural identity is the whole story.
        parts.append(canon(value))
        return
    # Fast paths: scalars and flat scalar containers (counters and
    # configuration tables — rule lists, port maps — dominate NF
    # environments) stringify via one C-level repr instead of the
    # generic recursion.  repr keeps types apart (True/1/'1'/1.0).
    if isinstance(value, _SIG_SCALARS):
        parts.append(repr(value))
        return
    if isinstance(value, tuple) and _all_scalar(value):
        parts.append(f"tu:{value!r}")
        return
    if isinstance(value, list) and _all_scalar(value):
        if not _sig_ref(value, parts, memo):
            parts.append(f"li:{value!r}")
        return
    if isinstance(value, list) and all(
        type(v) is tuple and _all_scalar(v) for v in value
    ):
        if not _sig_ref(value, parts, memo):
            parts.append(f"lt:{value!r}")
        return
    if isinstance(value, SymDict):
        if _sig_ref(value, parts, memo):
            return
        parts.append(f"sd:{value.name}:{int(value.cleared)}")
        for key, val in value.entries:  # order-sensitive: newest wins
            parts.append(f"e:{canon(key)}")
            _sig_value(val, parts, memo)
        for key_c, present in sorted(value.assumed.items()):
            parts.append(f"a:{key_c}={int(present)}")
        for key_c in sorted(set(value.deleted)):
            parts.append(f"x:{key_c}")
        return
    if isinstance(value, SymPacket):
        if _sig_ref(value, parts, memo):
            return
        parts.append(f"sp:{value.label}")
        for fname in sorted(value.fields):
            parts.append(f"f:{fname}")
            _sig_value(value.fields[fname], parts, memo)
        return
    if isinstance(value, Packet):
        if _sig_ref(value, parts, memo):
            return
        parts.append("pk")
        for fname, fval in sorted(value.to_dict().items()):
            parts.append(f"f:{fname}={fval!r}")
        return
    if isinstance(value, list):
        if _sig_ref(value, parts, memo):
            return
        parts.append(f"li:{len(value)}")
        for item in value:
            _sig_value(item, parts, memo)
        return
    if isinstance(value, dict):
        if _sig_ref(value, parts, memo):
            return
        parts.append(f"di:{len(value)}")
        for key, val in value.items():  # insertion order: .keys() order matters
            if not isinstance(key, (str, int, bool, float, tuple, frozenset, type(None))):
                raise _Unsignable(f"dict key {type(key).__name__}")
            parts.append(f"k:{key!r}")
            _sig_value(val, parts, memo)
        return
    if isinstance(value, tuple):
        parts.append(f"tu:{len(value)}")
        for item in value:
            _sig_value(item, parts, memo)
        return
    if value is None or isinstance(value, (bool, int, float, str)):
        parts.append(canon(value))
        return
    raise _Unsignable(type(value).__name__)
