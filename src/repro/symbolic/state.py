"""Symbolic execution state and finished-path records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.symbolic.expr import Sym, SymDict, SymPacket

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.symbolic.solver import SolverContext


def sym_copy(value: Any) -> Any:
    """Fork-copy a symbolic runtime value.

    Immutable symbolic trees are shared; containers, packets and state
    dicts are copied so forked paths cannot see each other's writes.
    """
    if isinstance(value, SymPacket):
        return value.copy()
    if isinstance(value, SymDict):
        return value.copy()
    if isinstance(value, list):
        return [sym_copy(v) for v in value]
    if isinstance(value, dict):
        return {k: sym_copy(v) for k, v in value.items()}
    if isinstance(value, tuple):
        return tuple(sym_copy(v) for v in value)
    return value


@dataclass
class SymState:
    """One in-flight symbolic execution path."""

    pc: int
    env: Dict[str, Any]
    constraints: List[Any] = field(default_factory=list)
    executed: List[int] = field(default_factory=list)
    branches: List[Tuple[int, bool]] = field(default_factory=list)
    sent: List[Tuple[Dict[str, Any], Optional[Any]]] = field(default_factory=list)
    state_writes: List[Tuple[int, str]] = field(default_factory=list)
    loop_counts: Dict[int, int] = field(default_factory=dict)
    steps: int = 0
    status: str = "live"  # live | done | pruned | truncated | error
    note: str = ""
    #: Incrementally-propagated solver knowledge covering a prefix of
    #: ``constraints`` (see :class:`repro.symbolic.solver.SolverContext`).
    #: Owned by this state: never shared between live paths.  The engine
    #: installs the branch-arm context after each fork, so it is *not*
    #: copied here (a fork's context differs from its parent's by
    #: exactly the committed arm).
    solver_ctx: Optional["SolverContext"] = field(default=None, repr=False, compare=False)

    def fork(self) -> "SymState":
        """An independent copy for the other branch arm."""
        return SymState(
            pc=self.pc,
            env={k: sym_copy(v) for k, v in self.env.items()},
            constraints=list(self.constraints),
            executed=list(self.executed),
            branches=list(self.branches),
            sent=[(dict(fields), port) for fields, port in self.sent],
            state_writes=list(self.state_writes),
            loop_counts=dict(self.loop_counts),
            steps=self.steps,
            status=self.status,
            note=self.note,
        )


@dataclass
class PathResult:
    """A finished execution path (one model-table-entry candidate).

    ``constraints`` is the path condition; ``sent`` the symbolic packets
    emitted (empty ⇒ the path's action is the implicit *drop*, paper
    §3.2); ``state_writes`` the (sid, var) writes to watched state;
    ``env`` the final environment (symbolic state values included).
    """

    path_id: int
    status: str
    constraints: List[Any]
    executed: List[int]
    branches: List[Tuple[int, bool]]
    sent: List[Tuple[Dict[str, Any], Optional[Any]]]
    state_writes: List[Tuple[int, str]]
    env: Dict[str, Any]
    note: str = ""

    @property
    def drops(self) -> bool:
        """True when the path emits nothing (implicit drop)."""
        return not self.sent

    def executed_set(self) -> frozenset:
        return frozenset(self.executed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "drop" if self.drops else f"send×{len(self.sent)}"
        return (
            f"PathResult(#{self.path_id} {self.status} {kind} "
            f"|pc|={len(self.constraints)} |stmts|={len(self.executed)})"
        )
