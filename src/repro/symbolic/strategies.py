"""Path-exploration strategies for the symbolic engine.

KLEE's searcher heuristics matter when exploration is budgeted (the
engine's ``max_paths`` cap): the order states are scheduled decides
*which* paths make it into the model when the budget runs out.  Three
strategies are provided:

* **dfs** (default) — LIFO; cheapest, best cache behaviour, and on NF
  code (shallow branch trees) it enumerates complete path sets fastest;
* **bfs** — FIFO; explores all short paths first, so a truncated run
  still covers every "early" behaviour (decode errors, ACL rejects);
* **random** — seeded random scheduling; useful to detect order
  dependence (a correct model must not depend on exploration order —
  the property tests rely on this);
* **frontier** — the parallel intra-NF strategy: the engine expands an
  initial branch frontier depth-first in-process, partitions the
  pending states across a process pool, and merges the workers' path
  lists in canonical path-id order (docs/internals.md §9).  In-process
  scheduling is LIFO, so with ``parallel_paths=1`` it degenerates to
  ``dfs`` exactly.

The engine canonicalizes finished-path order (and therefore path ids)
before building results, so *complete* explorations produce
byte-identical models under every strategy; the order above only
decides which paths survive when ``max_paths`` truncates the run.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.symbolic.state import SymState


class Strategy:
    """Scheduling discipline for pending symbolic states."""

    name = "base"

    def __init__(self) -> None:
        self._states: List[SymState] = []

    def push(self, state: SymState) -> None:
        self._states.append(state)

    def pop(self) -> SymState:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self._states)

    def __bool__(self) -> bool:
        return bool(self._states)

    def drain(self) -> List[SymState]:
        """Remove and return all pending states (frontier hand-off)."""
        states, self._states = self._states, []
        return states


class DepthFirst(Strategy):
    """LIFO — the default."""

    name = "dfs"

    def pop(self) -> SymState:
        return self._states.pop()


class BreadthFirst(Strategy):
    """FIFO — shortest paths first."""

    name = "bfs"

    def pop(self) -> SymState:
        return self._states.pop(0)


class RandomOrder(Strategy):
    """Seeded random scheduling."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def pop(self) -> SymState:
        index = self._rng.randrange(len(self._states))
        return self._states.pop(index)


#: The names :func:`make_strategy` accepts (and EngineConfig validates).
VALID_STRATEGIES = ("dfs", "bfs", "random", "frontier")


def make_strategy(name: str, seed: int = 0) -> Strategy:
    """Build a strategy by name (one of :data:`VALID_STRATEGIES`).

    ``frontier`` returns the LIFO discipline: it is the in-process
    scheduling order of the frontier driver (the pool fan-out lives in
    the engine, not in the scheduling object).
    """
    if name in ("dfs", "frontier"):
        return DepthFirst()
    if name == "bfs":
        return BreadthFirst()
    if name == "random":
        return RandomOrder(seed)
    raise ValueError(
        f"unknown strategy {name!r} (valid: {', '.join(VALID_STRATEGIES)})"
    )
