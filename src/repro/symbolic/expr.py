"""Symbolic values and expressions.

A *symbolic value* flowing through the engine is one of:

* a concrete Python value (int/bool/str/None/float),
* a :class:`Sym` expression tree (:class:`SVar`, :class:`SApp`,
  :class:`SDictVal`),
* a structural container — tuple/list of symbolic values — kept
  componentwise so indexing with concrete indices stays precise,
* a :class:`SymPacket` (per-field symbolic packet), or
* a :class:`SymDict` (state dictionary with lazy membership — §2.4's
  "whether a flow's 4-tuple is stored in the dictionary is a state").

``eval_sym`` evaluates a tree under an assignment of symbolic leaves to
concrete values — used both for witness checking in the solver and for
test-packet generation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.util.hashing import stable_hash

# ---------------------------------------------------------------------------
# Symbolic expression trees
# ---------------------------------------------------------------------------


class Sym:
    """Base class of symbolic expression nodes (immutable)."""

    __slots__ = ()

    def __getstate__(self) -> Dict[str, Any]:
        # The hash-consed memos (see canon / _leaves_of) are derived
        # state, and a leaf's _leaves_memo frozenset contains the leaf
        # itself — a cycle through a hashable container that pickle
        # cannot rebuild. Ship nodes bare; memos regrow on first use.
        state = dict(self.__dict__)
        state.pop("_canon_memo", None)
        state.pop("_leaves_memo", None)
        return state


@dataclass(frozen=True)
class SVar(Sym):
    """A free symbolic variable with an integer (or boolean) domain."""

    name: str
    lo: int = 0
    hi: int = (1 << 32) - 1
    boolean: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"${self.name}"


@dataclass(frozen=True)
class SApp(Sym):
    """An operator applied to symbolic/concrete arguments."""

    op: str
    args: Tuple[Any, ...]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"({self.op} {' '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class SDictVal(Sym):
    """The unknown value stored in a state dict under an assumed key.

    ``path`` records component selection: ``d[k][2]`` is
    ``SDictVal(d, canon(k), (2,))``.  Each distinct (dict, key, path)
    triple is an independent solver variable.  ``key`` carries the
    symbolic key expression itself (identity is still the canonical
    string) so the model simulator can evaluate the read concretely.
    """

    dict_name: str
    key_canon: str
    path: Tuple[int, ...] = ()
    key: Any = field(default=None, compare=False, hash=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        suffix = "".join(f"[{i}]" for i in self.path)
        return f"${self.dict_name}[{self.key_canon}]{suffix}"


# ---------------------------------------------------------------------------
# Hash-consing (expression interning)
# ---------------------------------------------------------------------------


class InternTable:
    """A hash-consing table making structurally-equal nodes pointer-equal.

    Installed per engine run (:func:`interning`); while active, every
    node built through :func:`mk_app` (or passed to :func:`intern_node`)
    is deduplicated against the table, so equal subtrees share one
    object.  Sharing means each node's ``canon``/leaf-set memo is
    computed once per *unique* tree instead of once per copy, structural
    comparisons degenerate to pointer comparisons, and solver-cache keys
    are built from already-memoized strings.

    Lookup keys use child object identity, not deep equality: children
    are interned first, so a parent's key is ``(op, ids of args)`` —
    O(arity) per node.  The table keeps every interned node alive, which
    is what makes the ``id()``-based keys sound (a live object's id is
    never reused).
    """

    __slots__ = ("_nodes", "hits", "misses")

    def __init__(self) -> None:
        self._nodes: Dict[Any, Sym] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._nodes)

    def intern(self, node: Sym) -> Sym:
        if isinstance(node, SApp):
            key: Any = (node.op,) + tuple(
                ("s", id(a)) if isinstance(a, Sym) else ("c", type(a).__name__, a)
                for a in node.args
            )
        elif isinstance(node, SVar):
            key = ("v", node.name, node.lo, node.hi, node.boolean)
        elif isinstance(node, SDictVal):
            key = ("d", node.dict_name, node.key_canon, node.path)
        else:
            return node
        try:
            found = self._nodes.get(key)
        except TypeError:
            return node  # unhashable embedded arg (e.g. a list): skip
        if found is not None:
            self.hits += 1
            return found
        self._nodes[key] = node
        self.misses += 1
        return node

    def stats(self) -> Dict[str, int]:
        return {"size": len(self._nodes), "hits": self.hits, "misses": self.misses}


#: The ambient table; ``None`` disables interning (the seed behaviour).
_INTERN: Optional[InternTable] = None


@contextmanager
def interning(table: Optional[InternTable]) -> Iterator[Optional[InternTable]]:
    """Install ``table`` as the ambient intern table for the duration."""
    global _INTERN
    prev = _INTERN
    _INTERN = table
    try:
        yield table
    finally:
        _INTERN = prev


def intern_node(node: Sym) -> Sym:
    """Dedup one node against the ambient table (identity when none)."""
    table = _INTERN
    if table is None:
        return node
    return table.intern(node)


# ---------------------------------------------------------------------------
# Structured runtime containers
# ---------------------------------------------------------------------------


class SymPacket:
    """A packet whose fields are symbolic values.

    Unlike :class:`repro.net.packet.Packet` there is no domain check on
    writes — fields may hold arbitrary symbolic trees.
    """

    __slots__ = ("fields", "label")

    def __init__(self, fields: Dict[str, Any], label: str = "pkt") -> None:
        self.fields = fields
        self.label = label

    @classmethod
    def fresh(cls, label: str = "pkt") -> "SymPacket":
        """A packet with every field an independent symbolic variable."""
        from repro.net.packet import FIELD_DOMAINS

        return cls(
            {
                name: SVar(f"{label}.{name}", lo, hi)
                for name, (lo, hi) in FIELD_DOMAINS.items()
            },
            label,
        )

    def get(self, name: str) -> Any:
        if name not in self.fields:
            raise KeyError(f"unknown packet field {name!r}")
        return self.fields[name]

    def set(self, name: str, value: Any) -> None:
        if name not in self.fields:
            raise KeyError(f"unknown packet field {name!r}")
        self.fields[name] = value

    def copy(self) -> "SymPacket":
        return SymPacket(dict(self.fields), self.label)

    def snapshot(self) -> Dict[str, Any]:
        """An immutable view of the current fields."""
        return dict(self.fields)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SymPacket({self.label})"


class SymDict:
    """A state dictionary with lazily-decided membership.

    ``entries`` are writes performed along the current path (ordered,
    newest wins).  ``assumed`` records membership decisions taken for
    keys *not* written on the path: canonical key → bool.  Reads of an
    assumed-present key produce :class:`SDictVal` placeholders.
    """

    __slots__ = ("name", "entries", "assumed", "deleted", "cleared")

    def __init__(
        self,
        name: str,
        entries: Optional[List[Tuple[Any, Any]]] = None,
        assumed: Optional[Dict[str, bool]] = None,
        deleted: Optional[List[str]] = None,
        cleared: bool = False,
    ) -> None:
        self.name = name
        self.entries: List[Tuple[Any, Any]] = entries if entries is not None else []
        self.assumed: Dict[str, bool] = assumed if assumed is not None else {}
        self.deleted: List[str] = deleted if deleted is not None else []
        #: True once the path executed ``clear()``: membership of any
        #: key not re-written afterwards is definitely False.
        self.cleared = cleared

    def copy(self) -> "SymDict":
        return SymDict(
            self.name,
            [(k, v) for k, v in self.entries],
            dict(self.assumed),
            list(self.deleted),
            self.cleared,
        )

    def clear(self) -> None:
        """Empty the dict on this path (``d.clear()``)."""
        self.entries = []
        self.assumed = {}
        self.deleted = []
        self.cleared = True

    def written_value(self, key: Any) -> Optional[Tuple[bool, Any]]:
        """Latest write for a syntactically-equal key, if any.

        Returns ``(True, value)`` when found, ``None`` otherwise.  A
        delete of the key after the write hides it.
        """
        key_c = canon(key)
        for entry_key, value in reversed(self.entries):
            if canon(entry_key) == key_c:
                return (True, value)
        return None

    def store(self, key: Any, value: Any) -> None:
        self.entries.append((key, value))
        key_c = canon(key)
        if key_c in self.deleted:
            self.deleted.remove(key_c)

    def delete(self, key: Any) -> None:
        key_c = canon(key)
        self.entries = [(k, v) for k, v in self.entries if canon(k) != key_c]
        self.deleted.append(key_c)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SymDict({self.name}, {len(self.entries)} writes)"


# ---------------------------------------------------------------------------
# Canonicalisation and inspection
# ---------------------------------------------------------------------------


def canon(value: Any) -> str:
    """A canonical string for a symbolic value (structural identity).

    Results are hash-consed onto the (immutable) expression nodes
    themselves: ``canon``/``leaf_key`` run in the solver's innermost
    loops (cache keying, complement detection, domain lookup), and a
    node's canonical form never changes, so each tree is stringified at
    most once per node.
    """
    if isinstance(value, Sym):
        memo = getattr(value, "_canon_memo", None)
        if memo is not None:
            return memo
        if isinstance(value, SVar):
            result = f"v:{value.name}"
        elif isinstance(value, SDictVal):
            path = ",".join(map(str, value.path))
            result = f"dv:{value.dict_name}:{value.key_canon}:{path}"
        else:  # SApp (or a future Sym node with args)
            inner = ",".join(canon(a) for a in value.args)
            result = f"a:{value.op}({inner})"
        # Frozen dataclasses forbid plain attribute writes; the memo is
        # derived state, not a field, so bypassing is sound.
        object.__setattr__(value, "_canon_memo", result)
        return result
    if isinstance(value, tuple):
        return "t(" + ",".join(canon(v) for v in value) + ")"
    if isinstance(value, list):
        return "l(" + ",".join(canon(v) for v in value) + ")"
    if isinstance(value, SymPacket):
        inner = ",".join(f"{k}={canon(v)}" for k, v in sorted(value.fields.items()))
        return f"p({inner})"
    if isinstance(value, SymDict):
        return f"d:{value.name}"
    if isinstance(value, bool):
        return f"b:{value}"
    return f"c:{type(value).__name__}:{value!r}"


def is_concrete(value: Any) -> bool:
    """True if ``value`` contains no symbolic leaves."""
    if isinstance(value, Sym):
        return False
    if isinstance(value, (tuple, list)):
        return all(is_concrete(v) for v in value)
    if isinstance(value, SymPacket):
        return all(is_concrete(v) for v in value.fields.values())
    if isinstance(value, SymDict):
        return False
    if isinstance(value, dict):
        return all(is_concrete(k) and is_concrete(v) for k, v in value.items())
    return True


def sym_vars(value: Any) -> Set[Sym]:
    """All symbolic leaves (SVar / SDictVal / member atoms) in ``value``.

    Per-node results are hash-consed (like :func:`canon`): subtrees are
    shared heavily across path constraints, so each node's leaf set is
    computed once and reused as a frozen set.
    """
    if isinstance(value, Sym):
        return set(_leaves_of(value))
    out: Set[Sym] = set()
    _collect_leaves(value, out)
    return out


def _leaves_of(node: Sym) -> frozenset:
    memo = getattr(node, "_leaves_memo", None)
    if memo is not None:
        return memo
    out: Set[Sym] = set()
    if isinstance(node, (SVar, SDictVal)):
        out.add(node)
    elif isinstance(node, SApp):
        if node.op in ("member", "dictlen"):
            out.add(node)
        for a in node.args:
            _collect_leaves(a, out)
    result = frozenset(out)
    object.__setattr__(node, "_leaves_memo", result)
    return result


def _collect_leaves(value: Any, out: Set[Sym]) -> None:
    if isinstance(value, Sym):
        out |= _leaves_of(value)
    elif isinstance(value, (tuple, list)):
        for v in value:
            _collect_leaves(v, out)
    elif isinstance(value, SymPacket):
        for v in value.fields.values():
            _collect_leaves(v, out)


# ---------------------------------------------------------------------------
# Construction with constant folding
# ---------------------------------------------------------------------------


_ARITH: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "**": lambda a, b: a**b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


_NEG = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def mk_app(op: str, *args: Any) -> Any:
    """Build ``SApp(op, args)``, folding when all arguments are concrete.

    Construction applies eager simplification: constant folding,
    ``not``-pushing, boolean identity/absorption, duplicate-literal and
    complement elimination inside ``and``/``or``, syntactic-identity
    comparisons (``x == x``) and degenerate conditionals.  Every rule
    is semantics-preserving AND representation-preserving for the
    serialized model (guard text is printed from these trees, so rules
    that rewrite arithmetic shapes — ``x + 0 → x`` — are deliberately
    absent: they would change model bytes).
    """
    if all(is_concrete(a) for a in args):
        return _apply_concrete(op, args)
    if op in ("==", "<=", ">=", "!=", "<", ">") and len(args) == 2:
        # Syntactic identity: leaves are deterministic, so x == x.
        if canon(args[0]) == canon(args[1]):
            return op in ("==", "<=", ">=")
    if op == "not":
        (a,) = args
        if isinstance(a, SApp) and a.op == "not":
            return a.args[0]
        if isinstance(a, SApp) and a.op in _NEG:
            return intern_node(SApp(_NEG[a.op], a.args))
        return intern_node(SApp("not", (a,)))
    if op in ("and", "or"):
        flat: List[Any] = []
        seen: Set[str] = set()
        for a in args:
            if isinstance(a, bool):
                if op == "and":
                    if not a:
                        return False
                    continue  # True is the identity of `and`
                if a:
                    return True
                continue  # False is the identity of `or`
            key = canon(a)
            if key in seen:
                continue  # idempotence: a ∧ a = a, a ∨ a = a
            seen.add(key)
            flat.append(a)
        for a in flat:
            negated = mk_app("not", a)
            if not isinstance(negated, bool) and canon(negated) in seen:
                return op == "or"  # complement: a ∧ ¬a / a ∨ ¬a
        if not flat:
            return op == "and"
        if len(flat) == 1:
            return flat[0]
        return intern_node(SApp(op, tuple(flat)))
    if op == "cond" and len(args) == 3 and canon(args[1]) == canon(args[2]):
        return args[1]  # both arms equal: the test is irrelevant
    return intern_node(SApp(op, tuple(args)))


def _apply_concrete(op: str, args: Tuple[Any, ...]) -> Any:
    if op in _ARITH:
        return _ARITH[op](args[0], args[1])
    if op == "neg":
        return -args[0]
    if op == "~":
        return ~args[0]
    if op == "not":
        return not args[0]
    if op == "and":
        result: Any = True
        for a in args:
            result = a
            if not a:
                return a
        return result
    if op == "or":
        result = False
        for a in args:
            result = a
            if a:
                return a
        return result
    if op == "getitem":
        return args[0][args[1]]
    if op == "len":
        return len(args[0])
    if op == "hash":
        return stable_hash(_hashable(args[0]))
    if op == "abs":
        return abs(args[0])
    if op == "min":
        return min(*args)
    if op == "max":
        return max(*args)
    if op == "cond":
        return args[1] if args[0] else args[2]
    raise ValueError(f"cannot fold operator {op!r}")


def _hashable(value: Any) -> Any:
    if isinstance(value, tuple):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


# ---------------------------------------------------------------------------
# Evaluation under an assignment
# ---------------------------------------------------------------------------

Assignment = Dict[str, Any]  # canonical leaf name → concrete value


def leaf_key(leaf: Sym) -> str:
    """The assignment key for a symbolic leaf."""
    return canon(leaf)


def eval_sym(value: Any, assignment: Assignment) -> Any:
    """Evaluate a symbolic value to a concrete one under ``assignment``.

    Unassigned leaves evaluate to 0 (False for member atoms), which is
    harmless for witness *checking* because the solver always samples
    every leaf it collected.
    """
    if isinstance(value, SVar):
        return assignment.get(leaf_key(value), value.lo)
    if isinstance(value, SDictVal):
        return assignment.get(leaf_key(value), 0)
    if isinstance(value, SApp):
        if value.op == "member":
            return bool(assignment.get(leaf_key(value), False))
        if value.op == "dictlen":
            return assignment.get(leaf_key(value), 0)
        args = tuple(eval_sym(a, assignment) for a in value.args)
        return _apply_concrete(value.op, args)
    if isinstance(value, tuple):
        return tuple(eval_sym(v, assignment) for v in value)
    if isinstance(value, list):
        return [eval_sym(v, assignment) for v in value]
    if isinstance(value, SymPacket):
        return {k: eval_sym(v, assignment) for k, v in value.fields.items()}
    return value
