"""Path-condition satisfiability and witness generation.

This is the constraint-solving layer under symbolic execution — the
role KLEE delegates to an SMT solver.  NF path conditions are shallow:
(in)equalities between packet fields and constants, arithmetic over
counters, membership decisions for state dictionaries, and occasional
hash/modulo expressions.  The solver therefore combines

1. **structural propagation** — intervals, pinned values and forbidden
   sets per symbolic leaf, plus a union-find over leaf equalities;
2. **guided concrete sampling** — deterministic randomized assignments
   drawn from the propagated domains, checked by direct evaluation
   (:func:`repro.symbolic.expr.eval_sym`).

The result is *sound for UNSAT* only when propagation finds a direct
conflict; otherwise sampling either proves SAT with a witness or
returns ``unknown``.  Callers treat ``unknown`` as feasible, which can
only add spurious paths, never lose real ones.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import Histogram, TIME_BUCKETS
from repro.symbolic.expr import (
    Assignment,
    SApp,
    SDictVal,
    SVar,
    Sym,
    canon,
    eval_sym,
    is_concrete,
    leaf_key,
    mk_app,
    sym_vars,
)

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


@dataclass
class _Domain:
    """Propagated knowledge about one symbolic leaf."""

    lo: int = 0
    hi: int = (1 << 32) - 1
    forbidden: Set[int] = field(default_factory=set)
    boolean: bool = False
    #: ``(mask, required)`` pairs from ``(x & mask) == required`` atoms:
    #: samples are adjusted to satisfy them (prefix-match constraints).
    masks: List[Tuple[int, int]] = field(default_factory=list)
    #: candidate values harvested from disjunctions (``x == c or ...``):
    #: uniform sampling would almost never hit them.
    suggestions: Set[int] = field(default_factory=set)

    def apply_masks(self, value: int) -> int:
        for mask, required in self.masks:
            value = (value & ~mask) | required
        return value

    def pin(self, value: int) -> bool:
        """Constrain to exactly ``value``; False on conflict."""
        if value < self.lo or value > self.hi or value in self.forbidden:
            return False
        self.lo = self.hi = value
        return True

    def exclude(self, value: int) -> bool:
        if self.lo == self.hi == value:
            return False
        self.forbidden.add(value)
        return True

    def upper(self, value: int) -> bool:
        self.hi = min(self.hi, value)
        return self.lo <= self.hi

    def lower(self, value: int) -> bool:
        self.lo = max(self.lo, value)
        return self.lo <= self.hi

    def consistent(self) -> bool:
        if self.lo > self.hi:
            return False
        span = self.hi - self.lo + 1
        if span <= len(self.forbidden):
            # Small enough to check exhaustively: is any value allowed?
            if all(v in self.forbidden for v in range(self.lo, self.hi + 1)):
                return False
        return True

    def sample_pool(self) -> List[int]:
        """Interesting candidate values inside the domain."""
        pool = [v for v in sorted(self.suggestions) if self.lo <= v <= self.hi]
        pool += [self.lo, self.hi, (self.lo + self.hi) // 2]
        for delta in (1, 2, 3):
            pool.append(min(self.hi, self.lo + delta))
            pool.append(max(self.lo, self.hi - delta))
        return [v for v in dict.fromkeys(pool) if v not in self.forbidden]


@dataclass
class SolverResult:
    """Outcome of a satisfiability check."""

    status: str  # "sat" | "unsat" | "unknown"
    assignment: Optional[Assignment] = None

    @property
    def feasible(self) -> bool:
        """Treat unknown as feasible (see module docstring)."""
        return self.status != "unsat"


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, key: str) -> str:
        parent = self._parent.setdefault(key, key)
        if parent != key:
            root = self.find(parent)
            self._parent[key] = root
            return root
        return key

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


class Solver:
    """A deterministic propagate-and-sample constraint solver."""

    def __init__(self, seed: int = 0, max_samples: int = 200) -> None:
        self.seed = seed
        self.max_samples = max_samples
        #: Per-check latency histogram; its count doubles as the old
        #: ``checks`` counter (kept below as a compatibility property).
        self.check_hist = Histogram("solver.check_seconds", buckets=TIME_BUCKETS)
        self.sat_hits = 0
        self.unsat_hits = 0
        self.unknown_hits = 0

    @property
    def checks(self) -> int:
        """Number of ``check()`` calls (compatibility view of the histogram)."""
        return self.check_hist.count

    # -- public -----------------------------------------------------------

    def check(self, constraints: Sequence[Any]) -> SolverResult:
        """Decide satisfiability of a conjunction of symbolic booleans.

        Every call is timed into ``check_hist`` and, when an ambient
        metrics registry is installed (:mod:`repro.obs.metrics`), into
        the ``solver.checks`` counter / ``solver.check_seconds``
        histogram plus a per-status counter.
        """
        t0 = time.perf_counter()
        result = self._check(constraints)
        elapsed = time.perf_counter() - t0
        self.check_hist.observe(elapsed)
        registry = obs_metrics.active()
        if registry.enabled:
            registry.counter("solver.checks").inc()
            registry.counter(f"solver.{result.status}").inc()
            registry.histogram("solver.check_seconds", TIME_BUCKETS).observe(elapsed)
        return result

    def _check(self, constraints: Sequence[Any]) -> SolverResult:
        residual: List[Any] = []
        for c in constraints:
            if isinstance(c, bool):
                if not c:
                    self.unsat_hits += 1
                    return SolverResult("unsat")
                continue
            if is_concrete(c):
                if not c:
                    self.unsat_hits += 1
                    return SolverResult("unsat")
                continue
            residual.append(c)
        if not residual:
            self.sat_hits += 1
            return SolverResult("sat", {})

        # Expose conjuncts to propagation and complement detection.
        expanded: List[Any] = []
        for c in residual:
            _expand_conjunction(c, expanded)
        residual = []
        for c in expanded:
            if isinstance(c, bool) or is_concrete(c):
                if not c:
                    self.unsat_hits += 1
                    return SolverResult("unsat")
                continue
            if not sym_vars(c):
                # Leaf-free tree (e.g. after substitution): decidable
                # by direct evaluation.
                if not bool(eval_sym(c, {})):
                    self.unsat_hits += 1
                    return SolverResult("unsat")
                continue
            residual.append(c)
        if not residual:
            self.sat_hits += 1
            return SolverResult("sat", {})

        canon_set = {canon(c) for c in residual}
        for c in residual:
            if _complement_present(c, canon_set):
                self.unsat_hits += 1
                return SolverResult("unsat")

        leaves: Set[Sym] = set()
        for c in residual:
            leaves |= sym_vars(c)

        domains, members, uf, conflict = self._propagate(residual, leaves)
        if conflict:
            self.unsat_hits += 1
            return SolverResult("unsat")

        witness = self._search(residual, leaves, domains, members, uf)
        if witness is not None:
            self.sat_hits += 1
            return SolverResult("sat", witness)
        self.unknown_hits += 1
        return SolverResult("unknown")

    def model(self, constraints: Sequence[Any]) -> Optional[Assignment]:
        """A concrete witness for the constraints, or None."""
        result = self.check(constraints)
        return result.assignment if result.status == "sat" else None

    # -- propagation ------------------------------------------------------

    def _propagate(
        self, constraints: List[Any], leaves: Set[Sym]
    ) -> Tuple[Dict[str, _Domain], Dict[str, bool], _UnionFind, bool]:
        domains: Dict[str, _Domain] = {}
        for leaf in leaves:
            if isinstance(leaf, SVar):
                domains[leaf_key(leaf)] = _Domain(leaf.lo, leaf.hi, boolean=leaf.boolean)
            elif isinstance(leaf, SDictVal):
                domains[leaf_key(leaf)] = _Domain(0, (1 << 32) - 1)
            # member atoms handled separately

        members: Dict[str, bool] = {}
        uf = _UnionFind()

        for c in constraints:
            if not self._propagate_one(c, domains, members, uf):
                return domains, members, uf, True

        # Merge domains across equality classes.
        roots: Dict[str, List[str]] = {}
        for key in domains:
            roots.setdefault(uf.find(key), []).append(key)
        for keys in roots.values():
            if len(keys) < 2:
                continue
            lo = max(domains[k].lo for k in keys)
            hi = min(domains[k].hi for k in keys)
            forbidden: Set[int] = set()
            for k in keys:
                forbidden |= domains[k].forbidden
            for k in keys:
                domains[k].lo, domains[k].hi = lo, hi
                domains[k].forbidden = forbidden
                if not domains[k].consistent():
                    return domains, members, uf, True

        for dom in domains.values():
            if not dom.consistent():
                return domains, members, uf, True
        return domains, members, uf, False

    def _propagate_one(
        self,
        c: Any,
        domains: Dict[str, _Domain],
        members: Dict[str, bool],
        uf: _UnionFind,
    ) -> bool:
        """Absorb one constraint; returns False on direct conflict."""
        if isinstance(c, SApp) and c.op == "member":
            key = leaf_key(c)
            if members.get(key) is False:
                return False
            members[key] = True
            return True
        if isinstance(c, SApp) and c.op == "not":
            inner = c.args[0]
            if isinstance(inner, SApp) and inner.op == "member":
                key = leaf_key(inner)
                if members.get(key) is True:
                    return False
                members[key] = False
            return True
        if isinstance(c, SApp) and c.op == "or":
            # Harvest equality disjuncts as sampling suggestions.
            for arm in c.args:
                if isinstance(arm, SApp) and arm.op == "==":
                    left, right = arm.args
                    if _is_leaf(right) and isinstance(left, (int, bool)):
                        left, right = right, left
                    if _is_leaf(left) and isinstance(right, (int, bool)):
                        dom = domains.get(leaf_key(left))
                        if dom is not None:
                            dom.suggestions.add(int(right))
            return True
        if isinstance(c, (SVar, SDictVal)):
            dom = domains.get(leaf_key(c))
            if dom is not None and dom.boolean:
                return dom.pin(1)
            return True
        if not isinstance(c, SApp) or c.op not in _FLIP:
            return True

        left, right = c.args
        op = c.op
        # Mask-equality hint: (leaf & M) == C — guide sampling to values
        # whose masked bits equal C (subnet matches, flag tests).
        if op == "==":
            for a, b in ((left, right), (right, left)):
                if (
                    isinstance(a, SApp)
                    and a.op == "&"
                    and isinstance(b, int)
                    and len(a.args) == 2
                ):
                    base, mask = a.args
                    if isinstance(mask, int) and _is_leaf(base):
                        dom = domains.get(leaf_key(base))
                        if dom is not None:
                            if (b & ~mask) != 0:
                                return False  # required bits outside mask
                            dom.masks.append((mask, b))
                        return True
        if _is_leaf(right) and is_concrete(left):
            left, right = right, left
            op = _FLIP[op]
        if not (_is_leaf(left) and is_concrete(right) and isinstance(right, (int, bool))):
            if _is_leaf(left) and _is_leaf(right) and op == "==":
                uf.union(leaf_key(left), leaf_key(right))
            return True

        dom = domains.get(leaf_key(left))
        if dom is None:
            return True
        value = int(right)
        if op == "==":
            return dom.pin(value)
        if op == "!=":
            return dom.exclude(value)
        if op == "<":
            return dom.upper(value - 1)
        if op == "<=":
            return dom.upper(value)
        if op == ">":
            return dom.lower(value + 1)
        if op == ">=":
            return dom.lower(value)
        return True

    # -- witness search -----------------------------------------------------

    def _search(
        self,
        constraints: List[Any],
        leaves: Set[Sym],
        domains: Dict[str, _Domain],
        members: Dict[str, bool],
        uf: _UnionFind,
    ) -> Optional[Assignment]:
        leaf_keys = sorted({leaf_key(l) for l in leaves if not _is_member(l)})
        member_keys = sorted({leaf_key(l) for l in leaves if _is_member(l)})

        # Representative-per-class assignment honouring the union-find.
        def assign(draw) -> Assignment:
            by_root: Dict[str, int] = {}
            assignment: Assignment = {}
            for key in leaf_keys:
                root = uf.find(key)
                if root not in by_root:
                    dom = domains.get(key) or domains.get(root) or _Domain()
                    by_root[root] = draw(key, dom)
                assignment[key] = by_root[root]
            for key in member_keys:
                assignment[key] = members.get(key, False)
            return assignment

        def ok(assignment: Assignment) -> bool:
            return all(bool(eval_sym(c, assignment)) for c in constraints)

        # Attempt 1: the deterministic "pool" assignment.
        def pool_draw(key: str, dom: _Domain) -> int:
            pool = dom.sample_pool()
            value = pool[0] if pool else dom.lo
            return dom.apply_masks(value)

        candidate = assign(pool_draw)
        if ok(candidate):
            return candidate

        # Randomized attempts, seeded deterministically.
        rng = random.Random((self.seed, len(constraints), tuple(leaf_keys)).__repr__())
        for _ in range(self.max_samples):
            def rand_draw(key: str, dom: _Domain) -> int:
                if dom.boolean:
                    return rng.randint(0, 1)
                pool = dom.sample_pool()
                if pool and rng.random() < 0.5:
                    return dom.apply_masks(rng.choice(pool))
                span = dom.hi - dom.lo
                if span <= 0:
                    return dom.apply_masks(dom.lo)
                for _ in range(4):
                    value = dom.apply_masks(dom.lo + rng.randint(0, span))
                    if value not in dom.forbidden and dom.lo <= value <= dom.hi:
                        return value
                return dom.apply_masks(dom.lo)

            candidate = assign(rand_draw)
            if ok(candidate):
                return candidate
        return None


def _expand_conjunction(c: Any, out: List[Any]) -> None:
    """Flatten asserted conjunctions (and de-Morgan'd disjunctions)."""
    if isinstance(c, SApp) and c.op == "and":
        for a in c.args:
            _expand_conjunction(a, out)
        return
    if isinstance(c, SApp) and c.op == "not":
        inner = c.args[0]
        if isinstance(inner, SApp) and inner.op == "or":
            for a in inner.args:
                _expand_conjunction(mk_app("not", a), out)
            return
    out.append(c)


def _complement_present(c: Any, canon_set: Set[str]) -> bool:
    """Syntactic UNSAT: the set also asserts the negation of ``c``.

    Handles three shapes: a directly negated twin; ``not (A and B)``
    while every conjunct is separately asserted; ``A or B`` while every
    disjunct's negation is separately asserted.
    """
    negated = mk_app("not", c)
    if not isinstance(negated, bool) and canon(negated) in canon_set:
        return True
    if isinstance(c, SApp) and c.op == "not":
        inner = c.args[0]
        if isinstance(inner, SApp) and inner.op == "and":
            if all(
                (canon(a) in canon_set)
                for a in inner.args
                if not isinstance(a, bool)
            ):
                return True
    if isinstance(c, SApp) and c.op == "or":
        negs = [mk_app("not", a) for a in c.args]
        if all(
            (isinstance(n, bool) and not n) or (canon(n) in canon_set)
            for n in negs
        ):
            return True
    return False


def _is_leaf(value: Any) -> bool:
    return isinstance(value, (SVar, SDictVal))


def _is_member(leaf: Sym) -> bool:
    return isinstance(leaf, SApp) and leaf.op == "member"
