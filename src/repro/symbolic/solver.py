"""Path-condition satisfiability and witness generation.

This is the constraint-solving layer under symbolic execution — the
role KLEE delegates to an SMT solver.  NF path conditions are shallow:
(in)equalities between packet fields and constants, arithmetic over
counters, membership decisions for state dictionaries, and occasional
hash/modulo expressions.  The solver therefore combines

1. **structural propagation** — intervals, pinned values and forbidden
   sets per symbolic leaf, plus a union-find over leaf equalities;
2. **guided concrete sampling** — deterministic randomized assignments
   drawn from the propagated domains, checked by direct evaluation
   (:func:`repro.symbolic.expr.eval_sym`).

The result is *sound for UNSAT* only when propagation finds a direct
conflict; otherwise sampling either proves SAT with a witness or
returns ``unknown``.  Callers treat ``unknown`` as feasible, which can
only add spurious paths, never lose real ones.

Performance layer (docs/internals.md §7):

* **Constraint-set memoization** — every non-trivial check is keyed by
  the ordered, deduplicated canonical forms of its conjuncts (plus the
  solver's seed/sample-budget fingerprint) and served from a bounded
  process-wide LRU (:class:`ConstraintCache`).  A fresh solve is a
  pure function of that key, so cached and re-solved results are
  identical — models are byte-identical with the cache on and off.
  The process-wide instance additionally persists through the artifact
  store (:mod:`repro.cache`): solved answers are loaded on first miss
  and flushed write-behind, so they survive process restarts
  (docs/internals.md §8).
* **Incremental propagation** — a :class:`SolverContext` carries the
  expanded conjuncts, canonical set, propagated domains and union-find
  of a path's constraint prefix, so each branch check extends the
  parent's context with one atom (:meth:`Solver.check_extended`)
  instead of re-propagating the whole prefix.  The context falls back
  to full re-propagation whenever leaf-equality classes merge, because
  class-wide domain intersection is not expressible as a single-atom
  update.
"""

from __future__ import annotations

import atexit
import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro import cache as artifact_cache
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import Histogram, TIME_BUCKETS
from repro.symbolic.expr import (
    Assignment,
    SApp,
    SDictVal,
    SVar,
    Sym,
    canon,
    eval_sym,
    is_concrete,
    leaf_key,
    mk_app,
    sym_vars,
)

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}

#: Default randomized-sampling budget per check.  The single source of
#: truth: :class:`repro.symbolic.engine.EngineConfig.solver_samples`
#: defaults to this same constant.
DEFAULT_MAX_SAMPLES = 120

#: Default capacity of the process-wide constraint cache.
DEFAULT_CACHE_SIZE = 4096


@dataclass
class _Domain:
    """Propagated knowledge about one symbolic leaf."""

    lo: int = 0
    hi: int = (1 << 32) - 1
    forbidden: Set[int] = field(default_factory=set)
    boolean: bool = False
    #: ``(mask, required)`` pairs from ``(x & mask) == required`` atoms:
    #: samples are adjusted to satisfy them (prefix-match constraints).
    masks: List[Tuple[int, int]] = field(default_factory=list)
    #: candidate values harvested from disjunctions (``x == c or ...``):
    #: uniform sampling would almost never hit them.
    suggestions: Set[int] = field(default_factory=set)

    def copy(self) -> "_Domain":
        return _Domain(
            self.lo,
            self.hi,
            set(self.forbidden),
            self.boolean,
            list(self.masks),
            set(self.suggestions),
        )

    def apply_masks(self, value: int) -> int:
        for mask, required in self.masks:
            value = (value & ~mask) | required
        return value

    def pin(self, value: int) -> bool:
        """Constrain to exactly ``value``; False on conflict."""
        if value < self.lo or value > self.hi or value in self.forbidden:
            return False
        self.lo = self.hi = value
        return True

    def exclude(self, value: int) -> bool:
        if self.lo == self.hi == value:
            return False
        self.forbidden.add(value)
        return True

    def upper(self, value: int) -> bool:
        self.hi = min(self.hi, value)
        return self.lo <= self.hi

    def lower(self, value: int) -> bool:
        self.lo = max(self.lo, value)
        return self.lo <= self.hi

    def consistent(self) -> bool:
        if self.lo > self.hi:
            return False
        span = self.hi - self.lo + 1
        if span <= len(self.forbidden):
            # Small enough to check exhaustively: is any value allowed?
            if all(v in self.forbidden for v in range(self.lo, self.hi + 1)):
                return False
        return True

    def sample_pool(self) -> List[int]:
        """Interesting candidate values inside the domain."""
        pool = [v for v in sorted(self.suggestions) if self.lo <= v <= self.hi]
        pool += [self.lo, self.hi, (self.lo + self.hi) // 2]
        for delta in (1, 2, 3):
            pool.append(min(self.hi, self.lo + delta))
            pool.append(max(self.lo, self.hi - delta))
        return [v for v in dict.fromkeys(pool) if v not in self.forbidden]


@dataclass
class SolverResult:
    """Outcome of a satisfiability check.

    ``cached`` is provenance: True when the result was served from the
    constraint cache rather than solved afresh (the payload is
    identical either way — solving is deterministic per cache key).
    """

    status: str  # "sat" | "unsat" | "unknown"
    assignment: Optional[Assignment] = None
    cached: bool = False

    @property
    def feasible(self) -> bool:
        """Treat unknown as feasible (see module docstring)."""
        return self.status != "unsat"


class _UnionFind:
    __slots__ = ("_parent", "merges")

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}
        #: Number of class merges performed; non-zero means domains may
        #: need class-wide intersection (see SolverContext.dirty).
        self.merges = 0

    def find(self, key: str) -> str:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        # Iterative path walk + compression: deep equality chains would
        # blow Python's recursion limit with the naive recursive form.
        root = parent
        while True:
            nxt = self._parent.setdefault(root, root)
            if nxt == root:
                break
            root = nxt
        while key != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb
            self.merges += 1

    def copy(self) -> "_UnionFind":
        out = _UnionFind()
        out._parent = dict(self._parent)
        out.merges = self.merges
        return out


#: Write-behind flush threshold for persistent caches: after this many
#: new entries the in-memory state is merged onto disk.  A final flush
#: runs at interpreter exit (and after every synthesis, see
#: :meth:`repro.nfactor.algorithm.NFactor.synthesize`).
PERSIST_FLUSH_EVERY = 256

#: Sentinel: "no persistence load has been attempted yet".
_NEVER_LOADED = object()


class ConstraintCache:
    """A bounded, thread-safe LRU of solver results.

    Keys are ``(seed, max_samples, canonical conjunct tuple)``; values
    are ``(status, assignment)`` pairs.  One process-wide instance
    (:func:`global_cache`) is shared by default so repeated syntheses —
    warm benchmark runs, batch mode, re-checks of finished path
    conditions during model refactoring — hit instead of re-solving.

    With ``persistent=True`` (the process-wide instance) the cache is
    backed by the artifact store (:mod:`repro.cache`): the first miss
    loads the on-disk snapshot (lazily, and again after the store is
    reconfigured), and writes flush behind — every
    :data:`PERSIST_FLUSH_EVERY` new entries, on :meth:`flush`, and at
    interpreter exit.  Flushing merges with the current disk contents
    before the atomic replace, so concurrent processes lose at most a
    race's worth of freshly-solved entries, never the file's
    consistency.  Persisted answers are pure functions of their keys,
    so loading them can only skip work, never change results.
    """

    __slots__ = (
        "maxsize",
        "_data",
        "_lock",
        "hits",
        "misses",
        "persistent",
        "_persist_token",
        "_dirty",
        "_atexit_registered",
    )

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE, persistent: bool = False) -> None:
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict[Any, Tuple[str, Optional[Assignment]]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.persistent = persistent
        self._persist_token: Any = _NEVER_LOADED
        self._dirty = 0
        self._atexit_registered = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: Any) -> Optional[Tuple[str, Optional[Assignment]]]:
        with self._lock:
            entry = self._data.get(key)
            if entry is None and self.persistent and self._load_locked():
                entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Any, status: str, assignment: Optional[Assignment]) -> None:
        with self._lock:
            self._data[key] = (status, dict(assignment) if assignment is not None else None)
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
            if self.persistent:
                self._dirty += 1
                if not self._atexit_registered:
                    atexit.register(self.flush)
                    self._atexit_registered = True
                if self._dirty >= PERSIST_FLUSH_EVERY:
                    self._flush_locked()

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self._dirty = 0
            self._persist_token = _NEVER_LOADED

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> Tuple[int, int, int]:
        """One atomic snapshot of ``(hits, misses, entries)``."""
        with self._lock:
            return self.hits, self.misses, len(self._data)

    # -- persistence (write-behind through repro.cache) ---------------------

    @staticmethod
    def _blob_name() -> str:
        return f"solver-constraints-v{artifact_cache.SCHEMA_VERSION}"

    def _load_locked(self) -> bool:
        """Load the disk snapshot on first miss (or after reconfiguration).

        Returns True when a load actually merged entries, so the caller
        can retry its lookup.  Already-present entries win over disk
        ones (they are identical by determinism anyway).
        """
        token = artifact_cache.store_token()
        if token == self._persist_token:
            return False
        self._persist_token = token
        if token is None:
            return False
        payload = artifact_cache.get_store().load_blob(self._blob_name())
        if not isinstance(payload, dict) or not payload:
            return False
        for key, value in payload.items():
            self._data.setdefault(key, value)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
        return True

    def flush(self) -> None:
        """Write-behind flush: merge in-memory entries onto disk now."""
        if not self.persistent:
            return
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if self._dirty == 0:
            return
        token = artifact_cache.store_token()
        if token is None:
            return
        store = artifact_cache.get_store()
        existing = store.load_blob(self._blob_name())
        merged: Dict[Any, Tuple[str, Optional[Assignment]]] = (
            dict(existing) if isinstance(existing, dict) else {}
        )
        merged.update(self._data)
        if len(merged) > self.maxsize:
            overflow = len(merged) - self.maxsize
            for key in list(merged):
                if overflow == 0:
                    break
                if key not in self._data:
                    del merged[key]
                    overflow -= 1
        store.save_blob(self._blob_name(), merged)
        self._dirty = 0
        self._persist_token = token


_GLOBAL_CACHE = ConstraintCache(persistent=True)


def global_cache() -> ConstraintCache:
    """The process-wide constraint cache shared by default."""
    return _GLOBAL_CACHE


def clear_global_cache() -> None:
    """Empty the process-wide cache (cold-start for benchmarks/tests)."""
    _GLOBAL_CACHE.clear()


class SolverContext:
    """Incrementally-propagated solver state for one constraint prefix.

    Covers ``covered`` leading entries of a path's raw constraint list.
    ``residual`` is the expanded, canonically-deduplicated conjunct
    list; ``domains``/``members``/``uf`` the propagated knowledge.

    Invariants (the incrementality contract, docs/internals.md §7):

    * absorbing the same raw constraints in the same order always
      produces the same ``residual`` — so a context-extended check and
      a from-scratch :meth:`Solver.check` of the full list share one
      cache key and one (deterministic) answer;
    * once leaf-equality classes merge (``uf.merges > 0``), per-atom
      domain updates stop being exact and the context marks itself
      ``dirty``; the next check re-propagates everything from
      ``residual``, restoring class-wide domain intersection.
    """

    __slots__ = (
        "covered",
        "residual",
        "canon_set",
        "canon_list",
        "leaves",
        "domains",
        "members",
        "uf",
        "conflict",
        "dirty",
        "ors",
        "notands",
    )

    def __init__(self) -> None:
        self.covered = 0
        self.residual: List[Any] = []
        self.canon_set: Set[str] = set()
        self.canon_list: List[str] = []
        self.leaves: Set[Sym] = set()
        self.domains: Dict[str, _Domain] = {}
        self.members: Dict[str, bool] = {}
        self.uf = _UnionFind()
        self.conflict = False
        self.dirty = False
        #: Watched complement shapes: asserted ``or``/``not(and ..)``
        #: conjuncts whose syntactic refutation may be completed by a
        #: later atom (see _absorb_piece).
        self.ors: List[SApp] = []
        self.notands: List[SApp] = []

    def copy(self) -> "SolverContext":
        out = SolverContext.__new__(SolverContext)
        out.covered = self.covered
        out.residual = list(self.residual)
        out.canon_set = set(self.canon_set)
        out.canon_list = list(self.canon_list)
        out.leaves = set(self.leaves)
        out.domains = {k: d.copy() for k, d in self.domains.items()}
        out.members = dict(self.members)
        out.uf = self.uf.copy()
        out.conflict = self.conflict
        out.dirty = self.dirty
        out.ors = list(self.ors)
        out.notands = list(self.notands)
        return out


class Solver:
    """A deterministic propagate-and-sample constraint solver."""

    def __init__(
        self,
        seed: int = 0,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        cache: Union[ConstraintCache, bool, None] = True,
    ) -> None:
        self.seed = seed
        self.max_samples = max_samples
        #: ``True`` → the shared process-wide cache; ``False``/``None``
        #: → caching off; a ConstraintCache instance → use that one.
        if cache is True:
            self.cache: Optional[ConstraintCache] = _GLOBAL_CACHE
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        #: Per-check latency histogram; its count doubles as the old
        #: ``checks`` counter (kept below as a compatibility property).
        self.check_hist = Histogram("solver.check_seconds", buckets=TIME_BUCKETS)
        self.sat_hits = 0
        self.unsat_hits = 0
        self.unknown_hits = 0
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def checks(self) -> int:
        """Number of ``check()`` calls (compatibility view of the histogram)."""
        return self.check_hist.count

    # -- public -----------------------------------------------------------

    def check(self, constraints: Sequence[Any]) -> SolverResult:
        """Decide satisfiability of a conjunction of symbolic booleans.

        Every call is timed into ``check_hist`` and, when an ambient
        metrics registry is installed (:mod:`repro.obs.metrics`), into
        the ``solver.checks`` counter / ``solver.check_seconds``
        histogram plus a per-status counter.
        """
        t0 = time.perf_counter()
        ctx = SolverContext()
        for c in constraints:
            self._absorb(ctx, c)
            if ctx.conflict:
                break
        return self._finish(ctx, t0)

    def context(self) -> SolverContext:
        """A fresh (empty-prefix) incremental context."""
        return SolverContext()

    def check_extended(
        self,
        prefix: Sequence[Any],
        ctx: SolverContext,
        extra: Any,
    ) -> Tuple[SolverResult, SolverContext]:
        """Check ``prefix + [extra]`` by extending an incremental context.

        ``ctx`` is caught up in place over any raw constraints appended
        to ``prefix`` since it was last used; the returned child context
        covers ``prefix + [extra]`` and can be installed on the state
        that commits ``extra`` to its path condition.
        """
        t0 = time.perf_counter()
        if not ctx.conflict:
            for c in prefix[ctx.covered:]:
                self._absorb(ctx, c)
                if ctx.conflict:
                    break
        ctx.covered = len(prefix)
        child = ctx.copy()
        if not child.conflict:
            self._absorb(child, extra)
        child.covered += 1
        return self._finish(child, t0), child

    def model(self, constraints: Sequence[Any]) -> Optional[Assignment]:
        """A concrete witness for the constraints, or None."""
        result = self.check(constraints)
        return result.assignment if result.status == "sat" else None

    def absorb_into(self, ctx: SolverContext, constraints: Sequence[Any]) -> None:
        """Fold ``constraints`` into ``ctx`` in order (stops on conflict).

        Lets a caller build a reusable propagated base for a shared
        constraint prefix — the engine's subsumption validator absorbs
        a state's path condition once and re-checks many recorded
        branch arms against copies (:meth:`check_assuming`).
        """
        for c in constraints:
            if ctx.conflict:
                return
            self._absorb(ctx, c)

    def check_assuming(self, ctx: SolverContext, extra: Any) -> SolverResult:
        """Decide ``ctx``'s absorbed conjunction extended by ``extra``.

        ``ctx`` is left untouched (the check runs on a copy), so one
        propagated prefix can serve any number of assumption probes.
        The result is identical to :meth:`check` on the full list —
        absorption order is prefix-then-extra either way.
        """
        t0 = time.perf_counter()
        child = ctx.copy()
        if not child.conflict:
            self._absorb(child, extra)
        return self._finish(child, t0)

    # -- incremental absorption -------------------------------------------

    def _absorb(self, ctx: SolverContext, c: Any) -> None:
        """Fold one raw constraint into the context (expand + propagate)."""
        if isinstance(c, bool):
            if not c:
                ctx.conflict = True
            return
        if is_concrete(c):
            if not c:
                ctx.conflict = True
            return
        pieces: List[Any] = []
        _expand_conjunction(c, pieces)
        for piece in pieces:
            self._absorb_piece(ctx, piece)
            if ctx.conflict:
                return

    def _absorb_piece(self, ctx: SolverContext, piece: Any) -> None:
        if isinstance(piece, bool) or is_concrete(piece):
            if not piece:
                ctx.conflict = True
            return
        if not sym_vars(piece):
            # Leaf-free tree (e.g. after substitution): decidable by
            # direct evaluation.
            if not _eval_bool(piece, {}):
                ctx.conflict = True
            return
        key = canon(piece)
        if key in ctx.canon_set:
            return  # structurally identical conjunct already absorbed

        # Syntactic complement detection, incremental form: adding this
        # piece refutes the set iff (a) its negated twin is present,
        # (b) it completes an ``or``/``not(and ..)`` complement — its
        # own shape against the set, or a previously watched shape.
        negated = mk_app("not", piece)
        if not isinstance(negated, bool) and canon(negated) in ctx.canon_set:
            ctx.conflict = True
            return

        ctx.canon_set.add(key)
        ctx.canon_list.append(key)
        ctx.residual.append(piece)

        if isinstance(piece, SApp) and piece.op == "not":
            inner = piece.args[0]
            if isinstance(inner, SApp) and inner.op == "and":
                ctx.notands.append(piece)
        elif isinstance(piece, SApp) and piece.op == "or":
            ctx.ors.append(piece)
        if self._complement_watch(ctx):
            ctx.conflict = True
            return

        new_leaves = sym_vars(piece) - ctx.leaves
        for leaf in new_leaves:
            ctx.leaves.add(leaf)
            if isinstance(leaf, SVar):
                ctx.domains[leaf_key(leaf)] = _Domain(
                    leaf.lo, leaf.hi, boolean=leaf.boolean
                )
            elif isinstance(leaf, SDictVal):
                ctx.domains[leaf_key(leaf)] = _Domain(0, (1 << 32) - 1)
            # member atoms handled separately

        if ctx.dirty:
            # Equality classes already merged: single-atom updates are
            # no longer exact.  Leave propagation to the next check's
            # full rebuild (_repropagate).
            return
        merges_before = ctx.uf.merges
        if not self._propagate_one(piece, ctx.domains, ctx.members, ctx.uf):
            ctx.conflict = True
            return
        if ctx.uf.merges != merges_before or ctx.uf.merges:
            # A class merged (or had merged before): class-wide domain
            # intersection is pending — fall back to full propagation.
            ctx.dirty = True

    def _complement_watch(self, ctx: SolverContext) -> bool:
        """True when a watched ``or``/``not(and ..)`` shape is refuted."""
        for watched in ctx.notands:
            inner = watched.args[0]
            if all(
                (canon(a) in ctx.canon_set)
                for a in inner.args
                if not isinstance(a, bool)
            ):
                return True
        for watched in ctx.ors:
            negs = [mk_app("not", a) for a in watched.args]
            if all(
                (isinstance(n, bool) and not n) or (canon(n) in ctx.canon_set)
                for n in negs
            ):
                return True
        return False

    def _repropagate(self, ctx: SolverContext) -> None:
        """Full re-propagation of ``ctx.residual`` (the merge fallback)."""
        domains, members, uf, conflict = self._propagate(ctx.residual, ctx.leaves)
        ctx.domains, ctx.members, ctx.uf = domains, members, uf
        ctx.dirty = False
        if conflict:
            ctx.conflict = True

    # -- finishing a check -------------------------------------------------

    def _finish(self, ctx: SolverContext, t0: float) -> SolverResult:
        result = self._decide(ctx)
        elapsed = time.perf_counter() - t0
        self.check_hist.observe(elapsed)
        registry = obs_metrics.active()
        if registry.enabled:
            registry.counter("solver.checks").inc()
            registry.counter(f"solver.{result.status}").inc()
            registry.histogram("solver.check_seconds", TIME_BUCKETS).observe(elapsed)
        return result

    def _decide(self, ctx: SolverContext) -> SolverResult:
        if ctx.conflict:
            self.unsat_hits += 1
            return SolverResult("unsat")
        if not ctx.residual:
            self.sat_hits += 1
            return SolverResult("sat", {})

        key = None
        if self.cache is not None:
            key = (self.seed, self.max_samples, tuple(ctx.canon_list))
            entry = self.cache.get(key)
            if entry is not None:
                self.cache_hits += 1
                registry = obs_metrics.active()
                if registry.enabled:
                    registry.counter("solver.cache_hits").inc()
                status, assignment = entry
                self._count_status(status)
                return SolverResult(
                    status,
                    dict(assignment) if assignment is not None else None,
                    cached=True,
                )
            self.cache_misses += 1
            registry = obs_metrics.active()
            if registry.enabled:
                registry.counter("solver.cache_misses").inc()

        if ctx.dirty:
            self._repropagate(ctx)
            if ctx.conflict:
                # Deterministic per key: a rebuilt-and-conflicting
                # context is unsat however it was reached.
                if key is not None:
                    self.cache.put(key, "unsat", None)
                self.unsat_hits += 1
                return SolverResult("unsat")
        for dom in ctx.domains.values():
            if not dom.consistent():
                if key is not None:
                    self.cache.put(key, "unsat", None)
                self.unsat_hits += 1
                return SolverResult("unsat")

        witness = self._search(ctx.residual, ctx.leaves, ctx.domains, ctx.members, ctx.uf)
        if witness is not None:
            if key is not None:
                self.cache.put(key, "sat", witness)
            self.sat_hits += 1
            return SolverResult("sat", witness)
        if key is not None:
            self.cache.put(key, "unknown", None)
        self.unknown_hits += 1
        return SolverResult("unknown")

    def _count_status(self, status: str) -> None:
        if status == "sat":
            self.sat_hits += 1
        elif status == "unsat":
            self.unsat_hits += 1
        else:
            self.unknown_hits += 1

    # -- propagation ------------------------------------------------------

    def _propagate(
        self, constraints: List[Any], leaves: Set[Sym]
    ) -> Tuple[Dict[str, _Domain], Dict[str, bool], _UnionFind, bool]:
        domains: Dict[str, _Domain] = {}
        for leaf in leaves:
            if isinstance(leaf, SVar):
                domains[leaf_key(leaf)] = _Domain(leaf.lo, leaf.hi, boolean=leaf.boolean)
            elif isinstance(leaf, SDictVal):
                domains[leaf_key(leaf)] = _Domain(0, (1 << 32) - 1)
            # member atoms handled separately

        members: Dict[str, bool] = {}
        uf = _UnionFind()

        for c in constraints:
            if not self._propagate_one(c, domains, members, uf):
                return domains, members, uf, True

        # Merge domains across equality classes.
        roots: Dict[str, List[str]] = {}
        for key in domains:
            roots.setdefault(uf.find(key), []).append(key)
        for keys in roots.values():
            if len(keys) < 2:
                continue
            lo = max(domains[k].lo for k in keys)
            hi = min(domains[k].hi for k in keys)
            forbidden: Set[int] = set()
            for k in keys:
                forbidden |= domains[k].forbidden
            for k in keys:
                domains[k].lo, domains[k].hi = lo, hi
                domains[k].forbidden = forbidden
                if not domains[k].consistent():
                    return domains, members, uf, True

        for dom in domains.values():
            if not dom.consistent():
                return domains, members, uf, True
        return domains, members, uf, False

    def _propagate_one(
        self,
        c: Any,
        domains: Dict[str, _Domain],
        members: Dict[str, bool],
        uf: _UnionFind,
    ) -> bool:
        """Absorb one constraint; returns False on direct conflict."""
        if isinstance(c, SApp) and c.op == "member":
            key = leaf_key(c)
            if members.get(key) is False:
                return False
            members[key] = True
            return True
        if isinstance(c, SApp) and c.op == "not":
            inner = c.args[0]
            if isinstance(inner, SApp) and inner.op == "member":
                key = leaf_key(inner)
                if members.get(key) is True:
                    return False
                members[key] = False
            return True
        if isinstance(c, SApp) and c.op == "or":
            # Harvest equality disjuncts as sampling suggestions.
            for arm in c.args:
                if isinstance(arm, SApp) and arm.op == "==":
                    left, right = arm.args
                    if _is_leaf(right) and isinstance(left, (int, bool)):
                        left, right = right, left
                    if _is_leaf(left) and isinstance(right, (int, bool)):
                        dom = domains.get(leaf_key(left))
                        if dom is not None:
                            dom.suggestions.add(int(right))
            return True
        if isinstance(c, (SVar, SDictVal)):
            dom = domains.get(leaf_key(c))
            if dom is not None and dom.boolean:
                return dom.pin(1)
            return True
        if not isinstance(c, SApp) or c.op not in _FLIP:
            return True

        left, right = c.args
        op = c.op
        # Mask-equality hint: (leaf & M) == C — guide sampling to values
        # whose masked bits equal C (subnet matches, flag tests).
        if op == "==":
            for a, b in ((left, right), (right, left)):
                if (
                    isinstance(a, SApp)
                    and a.op == "&"
                    and isinstance(b, int)
                    and len(a.args) == 2
                ):
                    base, mask = a.args
                    if isinstance(mask, int) and _is_leaf(base):
                        dom = domains.get(leaf_key(base))
                        if dom is not None:
                            if (b & ~mask) != 0:
                                return False  # required bits outside mask
                            dom.masks.append((mask, b))
                        return True
        if _is_leaf(right) and is_concrete(left):
            left, right = right, left
            op = _FLIP[op]
        if not (_is_leaf(left) and is_concrete(right) and isinstance(right, (int, bool))):
            if _is_leaf(left) and _is_leaf(right) and op == "==":
                uf.union(leaf_key(left), leaf_key(right))
            return True

        dom = domains.get(leaf_key(left))
        if dom is None:
            return True
        value = int(right)
        if op == "==":
            return dom.pin(value)
        if op == "!=":
            return dom.exclude(value)
        if op == "<":
            return dom.upper(value - 1)
        if op == "<=":
            return dom.upper(value)
        if op == ">":
            return dom.lower(value + 1)
        if op == ">=":
            return dom.lower(value)
        return True

    # -- witness search -----------------------------------------------------

    def _search(
        self,
        constraints: List[Any],
        leaves: Set[Sym],
        domains: Dict[str, _Domain],
        members: Dict[str, bool],
        uf: _UnionFind,
    ) -> Optional[Assignment]:
        leaf_keys = sorted({leaf_key(l) for l in leaves if not _is_member(l)})
        member_keys = sorted({leaf_key(l) for l in leaves if _is_member(l)})

        # Per-key domain resolution, roots and candidate pools computed
        # once per search: domains are immutable while sampling, so
        # rebuilding pools inside every draw (the old hot spot — ~50%
        # of solver time) only repeated identical work.
        default_dom = _Domain()
        doms: Dict[str, _Domain] = {}
        roots: Dict[str, str] = {}
        pools: Dict[str, List[int]] = {}
        for key in leaf_keys:
            root = uf.find(key)
            roots[key] = root
            dom = domains.get(key) or domains.get(root) or default_dom
            doms[key] = dom
            pools[key] = dom.sample_pool()

        # Representative-per-class assignment honouring the union-find.
        def assign(draw) -> Assignment:
            by_root: Dict[str, int] = {}
            assignment: Assignment = {}
            for key in leaf_keys:
                root = roots[key]
                if root not in by_root:
                    by_root[root] = draw(key, doms[key])
                assignment[key] = by_root[root]
            for key in member_keys:
                assignment[key] = members.get(key, False)
            return assignment

        def ok(assignment: Assignment) -> bool:
            return all(_eval_bool(c, assignment) for c in constraints)

        # Attempt 1: the deterministic "pool" assignment.
        def pool_draw(key: str, dom: _Domain) -> int:
            pool = pools[key]
            value = pool[0] if pool else dom.lo
            return dom.apply_masks(value)

        candidate = assign(pool_draw)
        if ok(candidate):
            return candidate

        # Randomized attempts, seeded deterministically.  The seed is a
        # function of the canonical conjunct set only (leaf keys +
        # residual size), so any two checks of the same set — plain,
        # incremental or cached — draw identical samples.
        rng = random.Random((self.seed, len(constraints), tuple(leaf_keys)).__repr__())

        def rand_draw(key: str, dom: _Domain) -> int:
            if dom.boolean:
                return rng.randint(0, 1)
            pool = pools[key]
            if pool and rng.random() < 0.5:
                return dom.apply_masks(rng.choice(pool))
            span = dom.hi - dom.lo
            if span <= 0:
                return dom.apply_masks(dom.lo)
            for _ in range(4):
                value = dom.apply_masks(dom.lo + rng.randint(0, span))
                if value not in dom.forbidden and dom.lo <= value <= dom.hi:
                    return value
            return dom.apply_masks(dom.lo)

        for _ in range(self.max_samples):
            candidate = assign(rand_draw)
            if ok(candidate):
                return candidate
        return None


def _eval_bool(c: Any, assignment: Assignment) -> bool:
    """``bool(eval_sym(...))`` with evaluation failures counting as False.

    A sampled candidate can drive a concrete fold outside its partial
    function's domain — e.g. a ``getitem`` whose index draw exceeds the
    tuple it indexes (deep NF compositions substitute free index
    expressions into concrete backend tuples).  Such a candidate does
    not satisfy the constraint; rejecting it is the correct and
    deterministic outcome, crashing the check is not.
    """
    try:
        return bool(eval_sym(c, assignment))
    except Exception:
        return False


def _expand_conjunction(c: Any, out: List[Any]) -> None:
    """Flatten asserted conjunctions (and de-Morgan'd disjunctions)."""
    if isinstance(c, SApp) and c.op == "and":
        for a in c.args:
            _expand_conjunction(a, out)
        return
    if isinstance(c, SApp) and c.op == "not":
        inner = c.args[0]
        if isinstance(inner, SApp) and inner.op == "or":
            for a in inner.args:
                _expand_conjunction(mk_app("not", a), out)
            return
    out.append(c)


def _complement_present(c: Any, canon_set: Set[str]) -> bool:
    """Syntactic UNSAT: the set also asserts the negation of ``c``.

    Handles three shapes: a directly negated twin; ``not (A and B)``
    while every conjunct is separately asserted; ``A or B`` while every
    disjunct's negation is separately asserted.  (Kept as the reference
    form of the incremental detection in ``Solver._absorb_piece``.)
    """
    negated = mk_app("not", c)
    if not isinstance(negated, bool) and canon(negated) in canon_set:
        return True
    if isinstance(c, SApp) and c.op == "not":
        inner = c.args[0]
        if isinstance(inner, SApp) and inner.op == "and":
            if all(
                (canon(a) in canon_set)
                for a in inner.args
                if not isinstance(a, bool)
            ):
                return True
    if isinstance(c, SApp) and c.op == "or":
        negs = [mk_app("not", a) for a in c.args]
        if all(
            (isinstance(n, bool) and not n) or (canon(n) in canon_set)
            for n in negs
        ):
            return True
    return False


def _is_leaf(value: Any) -> bool:
    return isinstance(value, (SVar, SDictVal))


def _is_member(leaf: Sym) -> bool:
    return isinstance(leaf, SApp) and leaf.op == "member"
