"""The symbolic executor.

Explores every execution path of a flat IR block (paper Algorithm 1,
line 10: ``FindExecPaths``).  Execution proceeds over the CFG: at each
branch whose condition is symbolic the state forks, feasibility of each
arm checked by the :class:`~repro.symbolic.solver.Solver`.  Loops are
bounded (paper §3.2: "NF programs typically will not contain
input-dependent loops, or they can be written or modified ... to ensure
loops are bounded"): a path that revisits a loop header with a symbolic
condition more than ``loop_bound`` times is truncated.

State dictionaries use lazy membership (SymNF-style "lazy
initialization"): ``key in table`` on an unwritten key forks into
assumed-present and assumed-absent worlds, which is exactly how the
paper's model distinguishes "first packet of a flow" from "existing
flow" entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cfg.builder import build_cfg
from repro.cfg.graph import CFG, ENTRY, EXIT
from repro.lang.ir import (
    Block,
    EAttr,
    EBin,
    EBool,
    ECall,
    ECmp,
    ECond,
    EConst,
    EDict,
    EList,
    EName,
    ESub,
    ETuple,
    EUn,
    Expr,
    LAttr,
    LName,
    LSub,
    LTuple,
    LValue,
    SAssign,
    SBreak,
    SContinue,
    SDelete,
    SExpr,
    SIf,
    SPass,
    SReturn,
    SWhile,
    Stmt,
    iter_block,
)
from repro.net.packet import Packet
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.symbolic.expr import (
    SApp,
    SDictVal,
    SVar,
    Sym,
    SymDict,
    SymPacket,
    canon,
    is_concrete,
    mk_app,
)
from repro.symbolic.solver import DEFAULT_MAX_SAMPLES, Solver, SolverContext
from repro.symbolic.state import PathResult, SymState, sym_copy
from repro.symbolic.strategies import Strategy
from repro.util.timer import Stopwatch

_BOOL_OPS = frozenset({"==", "!=", "<", "<=", ">", ">=", "and", "or", "not", "member"})


class _PathError(Exception):
    """Aborts one path (unsupported construct or runtime error)."""


@dataclass
class EngineConfig:
    """Tunables for one exploration.

    ``loop_bound`` is the symbolic-branch bound per loop header (the
    paper's loop-bounding discipline); ``concrete_loop_bound`` guards
    concrete loops against runaway iteration; ``max_paths`` caps the
    total number of finished paths (exploration stops afterwards and
    the run is flagged as exhausted).

    ``solver_samples`` is the per-check randomized witness budget; its
    default is :data:`repro.symbolic.solver.DEFAULT_MAX_SAMPLES` — the
    single source of truth shared with a bare ``Solver()``.
    ``solver_cache`` toggles the process-wide constraint cache; results
    are byte-identical either way (caching only skips re-deriving a
    deterministic answer).
    """

    loop_bound: int = 6
    concrete_loop_bound: int = 4096
    max_paths: int = 4096
    max_steps_per_path: int = 100_000
    solver_seed: int = 0
    solver_samples: int = DEFAULT_MAX_SAMPLES
    solver_cache: bool = True
    keep_pruned: bool = False
    #: Exploration order: "dfs" (default), "bfs" or "random".
    strategy: str = "dfs"
    strategy_seed: int = 0


@dataclass
class ExploreStats:
    """Statistics of one exploration run."""

    paths_done: int = 0
    paths_pruned: int = 0
    paths_truncated: int = 0
    paths_error: int = 0
    forks: int = 0
    steps: int = 0
    solver_checks: int = 0
    solver_cache_hits: int = 0
    solver_cache_misses: int = 0
    elapsed_s: float = 0.0
    exhausted: bool = False


class SymbolicEngine:
    """Symbolically executes flat IR blocks."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self.solver = Solver(
            seed=self.config.solver_seed,
            max_samples=self.config.solver_samples,
            cache=self.config.solver_cache,
        )
        self.stats = ExploreStats()

    # -- public -------------------------------------------------------------

    def explore(
        self,
        block: Block,
        init_env: Optional[Dict[str, Any]] = None,
        watched: Optional[Set[str]] = None,
    ) -> List[PathResult]:
        """Enumerate execution paths of ``block``.

        ``init_env`` seeds the environment (symbolic packets, symbolic
        state variables, concrete configuration).  ``watched`` names the
        variables whose writes should be recorded per path (the
        output-impacting state variables).
        """
        self.stats = ExploreStats()
        watched = watched or set()
        cfg = build_cfg(block)
        stmts = {s.sid: s for s in iter_block(block)}

        entry_succs = cfg.succs(ENTRY, virtual=False)
        first = entry_succs[0] if entry_succs else EXIT
        initial = SymState(pc=first, env=dict(init_env or {}))
        results: List[PathResult] = []
        from repro.symbolic.strategies import make_strategy

        stack = make_strategy(self.config.strategy, self.config.strategy_seed)
        stack.push(initial)
        path_counter = 0

        span = obs_trace.span("se.explore", stmts=len(stmts), strategy=self.config.strategy)
        with span, Stopwatch() as sw:
            while stack:
                if self.stats.paths_done >= self.config.max_paths:
                    self.stats.exhausted = True
                    break
                state = stack.pop()
                finished = self._run_state(state, cfg, stmts, watched, stack)
                if finished is None:
                    continue
                path_counter += 1
                result = PathResult(
                    path_id=path_counter,
                    status=finished.status,
                    constraints=list(finished.constraints),
                    executed=list(finished.executed),
                    branches=list(finished.branches),
                    sent=list(finished.sent),
                    state_writes=list(finished.state_writes),
                    env=finished.env,
                    note=finished.note,
                )
                if finished.status == "done":
                    self.stats.paths_done += 1
                    obs_metrics.counter("se.paths_done").inc()
                    results.append(result)
                elif finished.status == "truncated":
                    self.stats.paths_truncated += 1
                    obs_metrics.counter("se.paths_truncated").inc()
                    if self.config.keep_pruned:
                        results.append(result)
                elif finished.status == "error":
                    self.stats.paths_error += 1
                    obs_metrics.counter("se.paths_error").inc()
                    if self.config.keep_pruned:
                        results.append(result)
                else:
                    self.stats.paths_pruned += 1
                    obs_metrics.counter("se.paths_infeasible").inc()
            span.set(
                paths_done=self.stats.paths_done,
                paths_pruned=self.stats.paths_pruned,
                paths_truncated=self.stats.paths_truncated,
                paths_error=self.stats.paths_error,
                forks=self.stats.forks,
                steps=self.stats.steps,
                exhausted=self.stats.exhausted,
            )
        self.stats.elapsed_s = sw.elapsed
        self.stats.solver_checks = self.solver.checks
        self.stats.solver_cache_hits = self.solver.cache_hits
        self.stats.solver_cache_misses = self.solver.cache_misses
        obs_metrics.counter("se.steps").inc(self.stats.steps)
        return results

    # -- per-state loop -------------------------------------------------------

    def _run_state(
        self,
        state: SymState,
        cfg: CFG,
        stmts: Dict[int, Stmt],
        watched: Set[str],
        stack: "Strategy",
    ) -> Optional[SymState]:
        """Advance ``state`` until it finishes or forks.

        Forked siblings are pushed onto ``stack``; the surviving state is
        returned when it reaches EXIT (or is pruned — then with a
        non-live status).
        """
        while True:
            if state.pc == EXIT:
                state.status = "done"
                return state
            stmt = stmts.get(state.pc)
            if stmt is None:
                state.status = "error"
                state.note = f"pc {state.pc} has no statement"
                return state

            state.steps += 1
            self.stats.steps += 1
            if state.steps > self.config.max_steps_per_path:
                state.status = "truncated"
                state.note = "per-path step budget exceeded"
                return state

            if isinstance(stmt, (SIf, SWhile)):
                follow = self._branch(state, stmt, cfg, stack)
                if follow is None:
                    return state  # pruned/truncated inside _branch
                state.pc = follow
                continue

            state.executed.append(stmt.sid)
            try:
                self._exec_straight(state, stmt, watched)
            except _PathError as exc:
                state.status = "error"
                state.note = str(exc)
                return state
            nxt = self._next_node(cfg, state.pc)
            if nxt is None:
                state.status = "error"
                state.note = f"no successor for sid {state.pc}"
                return state
            state.pc = nxt

    def _next_node(self, cfg: CFG, node: int) -> Optional[int]:
        succs = cfg.succs(node, virtual=False)
        if len(succs) != 1:
            return None
        return succs[0]

    def _branch_target(self, cfg: CFG, node: int, outcome: bool) -> Optional[int]:
        for edge in cfg.succ_edges(node, virtual=False):
            if edge.label is outcome:
                return edge.dst
        return None

    # -- branching ---------------------------------------------------------------

    def _branch(
        self,
        state: SymState,
        stmt: Stmt,
        cfg: CFG,
        stack: "Strategy",
    ) -> Optional[int]:
        """Handle a branch node; returns the pc to follow, or None."""
        assert isinstance(stmt, (SIf, SWhile))
        is_loop = isinstance(stmt, SWhile)
        if is_loop:
            count = state.loop_counts.get(stmt.sid, 0) + 1
            state.loop_counts[stmt.sid] = count

        try:
            cond = self._truth(self.eval_expr(stmt.cond, state))
        except _PathError as exc:
            state.status = "error"
            state.note = str(exc)
            return None

        state.executed.append(stmt.sid)

        if isinstance(cond, bool):
            if is_loop and cond and state.loop_counts[stmt.sid] > self.config.concrete_loop_bound:
                state.status = "truncated"
                state.note = f"concrete loop bound exceeded at sid {stmt.sid}"
                return None
            state.branches.append((stmt.sid, cond))
            target = self._branch_target(cfg, stmt.sid, cond)
            if target is None:
                state.status = "error"
                state.note = f"missing {cond}-edge at sid {stmt.sid}"
                return None
            return target

        # Symbolic condition.  Feasibility checks extend the state's
        # incremental solver context (propagated knowledge of the
        # constraint prefix) with one arm each, instead of
        # re-propagating the whole prefix per check; the arm's context
        # is installed on whichever state commits that arm.
        ctx = state.solver_ctx
        if ctx is None:
            ctx = state.solver_ctx = self.solver.context()

        if is_loop and state.loop_counts[stmt.sid] > self.config.loop_bound:
            # Force the exit arm if feasible; otherwise truncate.
            exit_cond = mk_app("not", cond)
            result, exit_ctx = self.solver.check_extended(
                state.constraints, ctx, exit_cond
            )
            if result.feasible:
                self._take(state, stmt, cond, False, cfg)
                state.solver_ctx = exit_ctx
                return self._branch_target(cfg, stmt.sid, False)
            state.status = "truncated"
            state.note = f"symbolic loop bound exceeded at sid {stmt.sid}"
            return None

        feasible: List[bool] = []
        arm_ctxs: Dict[bool, SolverContext] = {}
        for outcome in (True, False):
            arm = cond if outcome else mk_app("not", cond)
            if isinstance(arm, bool):
                if arm:
                    feasible.append(outcome)
                continue
            result, arm_ctx = self.solver.check_extended(state.constraints, ctx, arm)
            if result.feasible:
                feasible.append(outcome)
                arm_ctxs[outcome] = arm_ctx

        if not feasible:
            state.status = "pruned"
            state.note = f"both arms infeasible at sid {stmt.sid}"
            return None

        if len(feasible) == 2:
            self.stats.forks += 1
            obs_metrics.counter("se.paths_forked").inc()
            other = state.fork()
            self._take(other, stmt, cond, False, cfg)
            other.solver_ctx = arm_ctxs.get(False, other.solver_ctx)
            target_false = self._branch_target(cfg, stmt.sid, False)
            if target_false is not None:
                other.pc = target_false
                stack.push(other)
            outcome = True
        else:
            outcome = feasible[0]

        self._take(state, stmt, cond, outcome, cfg)
        if outcome in arm_ctxs:
            state.solver_ctx = arm_ctxs[outcome]
        return self._branch_target(cfg, stmt.sid, outcome)

    def _take(
        self, state: SymState, stmt: Stmt, cond: Any, outcome: bool, cfg: CFG
    ) -> None:
        """Commit one branch outcome to ``state``."""
        arm = cond if outcome else mk_app("not", cond)
        if not isinstance(arm, bool):
            state.constraints.append(arm)
        state.branches.append((stmt.sid, outcome))
        self._apply_membership(state, cond, outcome)

    def _apply_membership(self, state: SymState, cond: Any, outcome: bool) -> None:
        """Record dict-membership assumptions decided by this branch."""
        if isinstance(cond, SApp) and cond.op == "not":
            self._apply_membership(state, cond.args[0], not outcome)
            return
        if isinstance(cond, SApp) and cond.op == "member":
            dict_name, key = cond.args
            holder = state.env.get(dict_name)
            if isinstance(holder, SymDict):
                holder.assumed[canon(key)] = outcome

    # -- straight-line execution ----------------------------------------------

    def _exec_straight(self, state: SymState, stmt: Stmt, watched: Set[str]) -> None:
        if isinstance(stmt, SAssign):
            value = self.eval_expr(stmt.value, state)
            if stmt.aug is not None:
                old = self._load_lvalue(stmt.targets[0], state)
                value = self._binop(stmt.aug, old, value)
            for target in stmt.targets:
                self._store_lvalue(target, value, state, stmt.sid, watched)
            return
        if isinstance(stmt, SExpr):
            self.eval_expr(stmt.value, state)
            from repro.lang.ir import call_mutated_names

            for var in call_mutated_names(stmt.value) & watched:
                state.state_writes.append((stmt.sid, var))
            return
        if isinstance(stmt, (SReturn, SBreak, SContinue, SPass)):
            return
        if isinstance(stmt, SDelete):
            assert stmt.target is not None
            base = self._load_name(stmt.target.base, state)
            key = self.eval_expr(stmt.target.index, state)
            if isinstance(base, SymDict):
                base.delete(key)
                if stmt.target.base in watched:
                    state.state_writes.append((stmt.sid, stmt.target.base))
                return
            if isinstance(base, dict) and is_concrete(key):
                base.pop(self._dict_key(key), None)
                return
            raise _PathError(f"unsupported delete target at sid {stmt.sid}")
        raise _PathError(f"cannot execute {type(stmt).__name__}")

    # -- l-values -----------------------------------------------------------------

    def _load_name(self, name: str, state: SymState) -> Any:
        if name not in state.env:
            raise _PathError(f"name {name!r} is not defined")
        return state.env[name]

    def _load_lvalue(self, target: LValue, state: SymState) -> Any:
        if isinstance(target, LName):
            return self._load_name(target.id, state)
        if isinstance(target, LSub):
            base = self._load_name(target.base, state)
            index = self.eval_expr(target.index, state)
            return self._subscript(base, index, state)
        if isinstance(target, LAttr):
            base = self._load_name(target.base, state)
            return self._attr_get(base, target.attr)
        raise _PathError("cannot read this assignment target")

    def _store_lvalue(
        self, target: LValue, value: Any, state: SymState, sid: int, watched: Set[str]
    ) -> None:
        if isinstance(target, LName):
            state.env[target.id] = value
            if target.id in watched:
                state.state_writes.append((sid, target.id))
            return
        if isinstance(target, LSub):
            base = self._load_name(target.base, state)
            index = self.eval_expr(target.index, state)
            if isinstance(base, SymDict):
                base.store(index, value)
            elif isinstance(base, dict):
                if not is_concrete(index):
                    raise _PathError(
                        f"symbolic key write into concrete dict {target.base!r}"
                    )
                base[self._dict_key(index)] = value
            elif isinstance(base, list):
                if not isinstance(index, int):
                    raise _PathError("symbolic index write into list")
                try:
                    base[index] = value
                except IndexError:
                    raise _PathError("list index out of range") from None
            else:
                raise _PathError(f"cannot subscript-store into {type(base).__name__}")
            if target.base in watched:
                state.state_writes.append((sid, target.base))
            return
        if isinstance(target, LAttr):
            base = self._load_name(target.base, state)
            if isinstance(base, SymPacket):
                try:
                    base.set(target.attr, value)
                except KeyError as exc:
                    raise _PathError(str(exc)) from None
            elif isinstance(base, Packet):
                if not is_concrete(value):
                    raise _PathError("symbolic write into concrete packet")
                setattr(base, target.attr, value)
            else:
                raise _PathError(f"cannot set attribute on {type(base).__name__}")
            if target.base in watched:
                state.state_writes.append((sid, target.base))
            return
        if isinstance(target, LTuple):
            items = self._unpack(value, len(target.elts))
            for sub, item in zip(target.elts, items):
                self._store_lvalue(sub, item, state, sid, watched)
            return
        raise _PathError("cannot store to this target")

    def _unpack(self, value: Any, arity: int) -> List[Any]:
        if isinstance(value, (tuple, list)):
            if len(value) != arity:
                raise _PathError(
                    f"unpack mismatch: {arity} targets, {len(value)} values"
                )
            return list(value)
        if isinstance(value, Sym):
            return [mk_app("getitem", value, i) for i in range(arity)]
        raise _PathError(f"cannot unpack {type(value).__name__}")

    # -- expression evaluation -------------------------------------------------

    def eval_expr(self, expr: Expr, state: SymState) -> Any:
        if isinstance(expr, EConst):
            return expr.value
        if isinstance(expr, EName):
            return self._load_name(expr.id, state)
        if isinstance(expr, ETuple):
            return tuple(self.eval_expr(e, state) for e in expr.elts)
        if isinstance(expr, EList):
            return [self.eval_expr(e, state) for e in expr.elts]
        if isinstance(expr, EDict):
            out: Dict[Any, Any] = {}
            for k, v in expr.items:
                key = self.eval_expr(k, state)
                if not is_concrete(key):
                    raise _PathError("symbolic key in dict literal")
                out[self._dict_key(key)] = self.eval_expr(v, state)
            return out
        if isinstance(expr, EBin):
            return self._binop(
                expr.op,
                self.eval_expr(expr.left, state),
                self.eval_expr(expr.right, state),
            )
        if isinstance(expr, EUn):
            operand = self.eval_expr(expr.operand, state)
            if expr.op == "not":
                return mk_app("not", self._truth(operand))
            if expr.op == "-":
                if is_concrete(operand):
                    return -operand
                return mk_app("-", 0, operand)
            if expr.op == "+":
                return operand
            if expr.op == "~":
                if is_concrete(operand):
                    return ~operand
                return mk_app("-", mk_app("-", 0, operand), 1)
            raise _PathError(f"unknown unary {expr.op}")
        if isinstance(expr, ECmp):
            return self._compare(
                expr.op,
                self.eval_expr(expr.left, state),
                self.eval_expr(expr.right, state),
                state,
            )
        if isinstance(expr, EBool):
            return self._boolop(expr, state)
        if isinstance(expr, ECall):
            return self._call(expr, state)
        if isinstance(expr, ESub):
            base = self.eval_expr(expr.base, state)
            index = self.eval_expr(expr.index, state)
            return self._subscript(base, index, state)
        if isinstance(expr, EAttr):
            base = self.eval_expr(expr.base, state)
            return self._attr_get(base, expr.attr)
        if isinstance(expr, ECond):
            test = self._truth(self.eval_expr(expr.test, state))
            if isinstance(test, bool):
                return self.eval_expr(expr.body if test else expr.orelse, state)
            return mk_app(
                "cond",
                test,
                self.eval_expr(expr.body, state),
                self.eval_expr(expr.orelse, state),
            )
        raise _PathError(f"cannot evaluate {type(expr).__name__}")

    # -- operator helpers ------------------------------------------------------

    def _binop(self, op: str, left: Any, right: Any) -> Any:
        if op == "+" and isinstance(left, (tuple, list)) and isinstance(right, (tuple, list)):
            if isinstance(left, tuple):
                return tuple(left) + tuple(right)
            return list(left) + list(right)
        if is_concrete(left) and is_concrete(right):
            try:
                return mk_app(op, left, right)
            except (TypeError, ZeroDivisionError, ValueError) as exc:
                raise _PathError(f"operator {op} failed: {exc}") from None
        return mk_app(op, left, right)

    def _compare(self, op: str, left: Any, right: Any, state: SymState) -> Any:
        if op in ("in", "notin"):
            result = self._membership(left, right, state)
            return mk_app("not", result) if op == "notin" else result
        if op in ("is", "isnot"):
            if is_concrete(left) and is_concrete(right):
                return (left is right) if op == "is" else (left is not right)
            raise _PathError("`is` on symbolic values")
        if op in ("==", "!="):
            eq = self._equality(left, right)
            return mk_app("not", eq) if op == "!=" else eq
        if is_concrete(left) and is_concrete(right):
            try:
                return mk_app(op, left, right)
            except TypeError as exc:
                raise _PathError(f"comparison {op} failed: {exc}") from None
        return mk_app(op, left, right)

    def _equality(self, left: Any, right: Any) -> Any:
        lt = isinstance(left, (tuple, list))
        rt = isinstance(right, (tuple, list))
        if lt and rt:
            if len(left) != len(right):
                return False
            parts = [self._equality(a, b) for a, b in zip(left, right)]
            return mk_app("and", *parts)
        if lt != rt and (is_concrete(left) and is_concrete(right)):
            return left == right
        if lt != rt:
            # structured vs opaque symbolic: compare componentwise
            seq, other = (left, right) if lt else (right, left)
            if isinstance(other, Sym):
                parts = [
                    self._equality(seq[i], mk_app("getitem", other, i))
                    for i in range(len(seq))
                ]
                return mk_app("and", *parts)
            return False
        return mk_app("==", left, right)

    def _membership(self, needle: Any, haystack: Any, state: SymState) -> Any:
        if isinstance(haystack, SymDict):
            hit = haystack.written_value(needle)
            if hit is not None:
                return True
            # The probe key may *alias* a key written on this path even
            # though the expressions differ syntactically (e.g. a frame
            # with eth_dst == eth_src probing a table just filled under
            # eth_src).  Membership is the disjunction of equality with
            # each written key and pre-state membership.
            alias_parts = [
                self._equality(needle, wk)
                for wk, _ in _newest_entries(haystack)
            ]
            key_c = canon(needle)
            if key_c in haystack.assumed:
                pre: Any = haystack.assumed[key_c]
            elif key_c in haystack.deleted or haystack.cleared:
                pre = False
            else:
                pre = SApp("member", (haystack.name, _freeze(needle)))
            if alias_parts:
                return mk_app("or", *alias_parts, pre)
            return pre
        if isinstance(haystack, dict):
            if is_concrete(needle):
                return self._dict_key(needle) in haystack
            parts = [self._equality(needle, k) for k in haystack.keys()]
            return mk_app("or", *parts) if parts else False
        if isinstance(haystack, (tuple, list)):
            if is_concrete(needle) and all(is_concrete(v) for v in haystack):
                return needle in list(haystack)
            parts = [self._equality(needle, v) for v in haystack]
            return mk_app("or", *parts) if parts else False
        raise _PathError(f"membership test on {type(haystack).__name__}")

    def _boolop(self, expr: EBool, state: SymState) -> Any:
        parts: List[Any] = []
        for sub in expr.values:
            value = self._truth(self.eval_expr(sub, state))
            if isinstance(value, bool):
                if expr.op == "and" and not value:
                    return False
                if expr.op == "or" and value:
                    return True
                continue
            parts.append(value)
        if not parts:
            return expr.op == "and"
        return mk_app(expr.op, *parts)

    def _truth(self, value: Any) -> Any:
        """Coerce a value into a boolean (symbolic if necessary)."""
        if isinstance(value, bool):
            return value
        if is_concrete(value):
            return bool(value)
        if isinstance(value, SVar) and value.boolean:
            return value
        if isinstance(value, SApp) and value.op in _BOOL_OPS:
            return value
        return mk_app("!=", value, 0)

    # -- subscripts / attributes -----------------------------------------------

    def _subscript(self, base: Any, index: Any, state: SymState) -> Any:
        if isinstance(base, SymDict):
            hit = base.written_value(index)
            if hit is not None:
                return hit[1]
            key_c = canon(index)
            fallback_ok = True
            assumed = base.assumed.get(key_c)
            if assumed is False or key_c in base.deleted or base.cleared:
                fallback_ok = False
            aliases = _newest_entries(base)
            if not aliases:
                if not fallback_ok:
                    raise _PathError(
                        f"read of key assumed absent from {base.name!r}"
                    )
                if assumed is None:
                    # Implicit assume-present: record it so later
                    # membership tests on the same key agree, and
                    # constrain the path.
                    base.assumed[key_c] = True
                    atom = SApp("member", (base.name, _freeze(index)))
                    state.constraints.append(atom)
                return SDictVal(base.name, key_c, key=_freeze(index))
            # Written entries with syntactically different keys may alias
            # the probe: the read is a conditional chain, newest first.
            if fallback_ok:
                result: Any = SDictVal(base.name, key_c, key=_freeze(index))
            else:
                # Pre-state read is impossible; any concrete value is
                # unreachable unless one of the aliases matches.
                result = 0
            for wk, wv in reversed(aliases):  # oldest first → newest wins
                result = mk_app(
                    "cond", self._equality(index, wk), _freeze(wv), result
                )
            return result
        if isinstance(base, dict):
            if is_concrete(index):
                key = self._dict_key(index)
                if key not in base:
                    raise _PathError(f"KeyError: {key!r}")
                return base[key]
            raise _PathError("symbolic key into concrete dict")
        if isinstance(base, (tuple, list)):
            if isinstance(index, int):
                try:
                    return base[index]
                except IndexError:
                    raise _PathError("sequence index out of range") from None
            return mk_app("getitem", _freeze(tuple(base)), index)
        if isinstance(base, SDictVal):
            if isinstance(index, int):
                return SDictVal(
                    base.dict_name, base.key_canon, base.path + (index,), key=base.key
                )
            return mk_app("getitem", base, index)
        if isinstance(base, Sym):
            return mk_app("getitem", base, index)
        raise _PathError(f"cannot subscript {type(base).__name__}")

    def _attr_get(self, base: Any, attr: str) -> Any:
        if isinstance(base, SymPacket):
            try:
                return base.get(attr)
            except KeyError as exc:
                raise _PathError(str(exc)) from None
        if isinstance(base, Packet):
            try:
                return getattr(base, attr)
            except AttributeError as exc:
                raise _PathError(str(exc)) from None
        raise _PathError(f"cannot read attribute of {type(base).__name__}")

    # -- calls -------------------------------------------------------------------

    def _call(self, expr: ECall, state: SymState) -> Any:
        name = expr.func
        if expr.method:
            receiver = self.eval_expr(expr.args[0], state)
            args = [self.eval_expr(a, state) for a in expr.args[1:]]
            return self._method(name, receiver, args)

        args = [self.eval_expr(a, state) for a in expr.args]
        if name == "send_packet":
            pkt = args[0]
            port = args[1] if len(args) > 1 else None
            if isinstance(pkt, SymPacket):
                state.sent.append((pkt.snapshot(), port))
            elif isinstance(pkt, Packet):
                state.sent.append((pkt.to_dict(), port))
            else:
                raise _PathError("send_packet() argument is not a packet")
            return None
        if name == "recv_packet":
            return SymPacket.fresh(f"pkt{len(state.executed)}")
        if name == "len":
            (arg,) = args
            if isinstance(arg, (tuple, list, dict, str)):
                return len(arg)
            if isinstance(arg, SymDict):
                if arg.cleared:
                    # Conservative lower bound: writes since the clear.
                    return len(arg.entries)
                return mk_app("+", SApp("dictlen", (arg.name,)), len(arg.entries))
            return mk_app("len", arg)
        if name == "hash":
            return mk_app("hash", _freeze(args[0]))
        if name in ("abs", "min", "max"):
            if all(is_concrete(a) for a in args):
                return {"abs": abs, "min": min, "max": max}[name](*args)
            return mk_app(name, *args)
        if name == "int":
            (arg,) = args
            if is_concrete(arg):
                return int(arg)
            return arg
        if name == "bool":
            return self._truth(args[0])
        if name == "range":
            if all(isinstance(a, int) for a in args):
                return list(range(*args))
            raise _PathError("range() over symbolic bounds")
        if name in ("tuple", "list"):
            (arg,) = args
            if isinstance(arg, (tuple, list)):
                return tuple(arg) if name == "tuple" else list(arg)
            raise _PathError(f"{name}() of non-sequence")
        if name == "sum":
            (arg,) = args
            if isinstance(arg, (tuple, list)):
                total: Any = 0
                for v in arg:
                    total = self._binop("+", total, v)
                return total
            raise _PathError("sum() of non-sequence")
        if name == "sorted":
            (arg,) = args
            if isinstance(arg, (tuple, list)) and all(is_concrete(v) for v in arg):
                return sorted(arg)
            raise _PathError("sorted() of symbolic sequence")
        raise _PathError(f"unknown function {name!r} (user calls must be inlined)")

    def _method(self, name: str, receiver: Any, args: List[Any]) -> Any:
        if name == "append":
            if isinstance(receiver, list):
                receiver.append(args[0])
                return None
            raise _PathError("append() on non-list")
        if name == "get":
            if isinstance(receiver, dict) and is_concrete(args[0]):
                return receiver.get(self._dict_key(args[0]), *args[1:])
            if isinstance(receiver, SymDict):
                raise _PathError("get() on symbolic dict (use `in` + indexing)")
            raise _PathError("get() on unsupported receiver")
        if name == "pop":
            if isinstance(receiver, list) and all(isinstance(a, int) for a in args):
                try:
                    return receiver.pop(*args)
                except IndexError:
                    raise _PathError("pop from empty list") from None
            raise _PathError("pop() on unsupported receiver")
        if name == "keys" and isinstance(receiver, dict):
            return list(receiver.keys())
        if name == "values" and isinstance(receiver, dict):
            return list(receiver.values())
        if name == "clear":
            if isinstance(receiver, SymDict):
                receiver.clear()
                return None
            if isinstance(receiver, (dict, list)):
                receiver.clear()
                return None
            raise _PathError("clear() on unsupported receiver")
        raise _PathError(f"unsupported method {name!r} in symbolic mode")

    def _dict_key(self, key: Any) -> Any:
        if isinstance(key, list):
            return tuple(key)
        return key


def _newest_entries(sym_dict: SymDict) -> List[Tuple[Any, Any]]:
    """Written (key, value) pairs, newest-wins, one per canonical key."""
    seen: Set[str] = set()
    out: List[Tuple[Any, Any]] = []
    for key, value in reversed(sym_dict.entries):
        key_c = canon(key)
        if key_c in seen:
            continue
        seen.add(key_c)
        out.append((key, value))
    return out


def _freeze(value: Any) -> Any:
    """Make a symbolic value immutable for storage inside SApp args."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, tuple):
        return tuple(_freeze(v) for v in value)
    return value
