"""The symbolic executor.

Explores every execution path of a flat IR block (paper Algorithm 1,
line 10: ``FindExecPaths``).  Execution proceeds over the CFG: at each
branch whose condition is symbolic the state forks, feasibility of each
arm checked by the :class:`~repro.symbolic.solver.Solver`.  Loops are
bounded (paper §3.2: "NF programs typically will not contain
input-dependent loops, or they can be written or modified ... to ensure
loops are bounded"): a path that revisits a loop header with a symbolic
condition more than ``loop_bound`` times is truncated.

State dictionaries use lazy membership (SymNF-style "lazy
initialization"): ``key in table`` on an unwritten key forks into
assumed-present and assumed-absent worlds, which is exactly how the
paper's model distinguishes "first packet of a flow" from "existing
flow" entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cfg.builder import build_cfg
from repro.cfg.graph import CFG, ENTRY, EXIT
from repro.lang.ir import (
    Block,
    EAttr,
    EBin,
    EBool,
    ECall,
    ECmp,
    ECond,
    EConst,
    EDict,
    EList,
    EName,
    ESub,
    ETuple,
    EUn,
    Expr,
    LAttr,
    LName,
    LSub,
    LTuple,
    LValue,
    SAssign,
    SBreak,
    SContinue,
    SDelete,
    SExpr,
    SIf,
    SPass,
    SReturn,
    SWhile,
    Stmt,
    iter_block,
)
from repro.net.packet import Packet
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.symbolic.expr import (
    InternTable,
    SApp,
    SDictVal,
    SVar,
    Sym,
    SymDict,
    SymPacket,
    canon,
    eval_sym,
    interning,
    is_concrete,
    mk_app,
)
from repro.symbolic.solver import DEFAULT_MAX_SAMPLES, Solver, SolverContext
from repro.symbolic.state import PathResult, SymState, state_signature, sym_copy
from repro.symbolic.strategies import VALID_STRATEGIES, Strategy, make_strategy
from repro.util.timer import Stopwatch

_BOOL_OPS = frozenset({"==", "!=", "<", "<=", ">", ">=", "and", "or", "not", "member"})


class _PathError(Exception):
    """Aborts one path (unsupported construct or runtime error)."""


@dataclass
class EngineConfig:
    """Tunables for one exploration.

    ``loop_bound`` is the symbolic-branch bound per loop header (the
    paper's loop-bounding discipline); ``concrete_loop_bound`` guards
    concrete loops against runaway iteration; ``max_paths`` caps the
    total number of finished paths (exploration stops afterwards and
    the run is flagged as exhausted).

    ``solver_samples`` is the per-check randomized witness budget; its
    default is :data:`repro.symbolic.solver.DEFAULT_MAX_SAMPLES` — the
    single source of truth shared with a bare ``Solver()``.
    ``solver_cache`` toggles the process-wide constraint cache; results
    are byte-identical either way (caching only skips re-deriving a
    deterministic answer).
    """

    loop_bound: int = 6
    concrete_loop_bound: int = 4096
    max_paths: int = 4096
    max_steps_per_path: int = 100_000
    solver_seed: int = 0
    solver_samples: int = DEFAULT_MAX_SAMPLES
    solver_cache: bool = True
    keep_pruned: bool = False
    #: Exploration order: one of
    #: :data:`repro.symbolic.strategies.VALID_STRATEGIES`.
    strategy: str = "dfs"
    strategy_seed: int = 0
    #: Cold-path performance toggles (docs/internals.md §9).  All three
    #: are behaviour-preserving: synthesized models are byte-identical
    #: with them on or off, so none participates in cache fingerprints.
    intern_exprs: bool = True
    witness_shortcut: bool = True
    subsumption: bool = True
    #: Worker processes for the "frontier" strategy; 1 = in-process
    #: (degenerates to dfs).  Ignored by the other strategies.
    parallel_paths: int = 1

    def __post_init__(self) -> None:
        if self.strategy not in VALID_STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r} "
                f"(valid: {', '.join(VALID_STRATEGIES)})"
            )
        if self.parallel_paths < 1:
            raise ValueError("parallel_paths must be >= 1")


@dataclass
class ExploreStats:
    """Statistics of one exploration run."""

    paths_done: int = 0
    paths_pruned: int = 0
    paths_truncated: int = 0
    paths_error: int = 0
    forks: int = 0
    steps: int = 0
    solver_checks: int = 0
    solver_cache_hits: int = 0
    solver_cache_misses: int = 0
    elapsed_s: float = 0.0
    exhausted: bool = False
    #: States actually executed to completion (finishing done, pruned
    #: or error) — the work subsumption saves shows up here.
    states_explored: int = 0
    #: States grafted from a recorded twin instead of being re-executed.
    pruned_subsumed: int = 0
    #: Branch arms decided by witness propagation (no solver call).
    witness_hits: int = 0
    #: Hash-consing table statistics (0 when interning is off).
    intern_size: int = 0
    intern_hits: int = 0
    intern_misses: int = 0

    @property
    def states_total(self) -> int:
        """Conservation check: every state is explored, subsumed or
        truncated — pruning can never silently drop one."""
        return self.states_explored + self.pruned_subsumed + self.paths_truncated


@dataclass
class _Leaf:
    """One finished path of a recorded subtree, delta-sliced at the
    frame root so it can be replayed under a different prefix."""

    status: str
    note: str
    c_delta: Tuple[Any, ...]
    e_delta: Tuple[int, ...]
    b_delta: Tuple[Tuple[int, bool], ...]
    sent_delta: Tuple[Tuple[Dict[str, Any], Optional[Any]], ...]
    w_delta: Tuple[Tuple[int, str], ...]
    env: Dict[str, Any]
    steps_delta: int


@dataclass
class _Frame:
    """A recording of the whole DFS subtree under one popped state.

    Opened the first time a state signature is seen; closed (and
    registered for grafting) once the DFS stack height drops back to
    ``depth``, meaning every descendant has finished.  ``events``
    capture each solver-relevant branch decision as (constraint delta
    since the root, ((arm, feasible), …)); ``leaves`` the finished
    paths.  Both are deltas against the root's list lengths
    (``c0``/``e0``/…), so a later signature twin can splice its own
    prefix in front.
    """

    sig: Tuple[Any, ...]
    depth: int
    c0: int
    e0: int
    b0: int
    s0: int
    w0: int
    steps0: int
    events: List[Tuple[Tuple[Any, ...], Tuple[Tuple[Any, bool], ...]]] = field(
        default_factory=list
    )
    leaves: List[_Leaf] = field(default_factory=list)
    #: Unreplayable: the subtree called recv_packet (fresh-variable
    #: names embed the execution-trace length) or truncated on the
    #: absolute per-path step budget.
    poisoned: bool = False
    done_count: int = 0
    max_steps_delta: int = 0


class SymbolicEngine:
    """Symbolically executes flat IR blocks."""

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self.solver = Solver(
            seed=self.config.solver_seed,
            max_samples=self.config.solver_samples,
            cache=self.config.solver_cache,
        )
        self.stats = ExploreStats()
        #: Completed recordings keyed by state signature.
        self._frames: Dict[Tuple[Any, ...], _Frame] = {}
        #: Recordings still accumulating (ancestors of the current pop).
        self._open_frames: List[_Frame] = []
        self._intern_table: Optional[InternTable] = None

    # -- public -------------------------------------------------------------

    def explore(
        self,
        block: Block,
        init_env: Optional[Dict[str, Any]] = None,
        watched: Optional[Set[str]] = None,
    ) -> List[PathResult]:
        """Enumerate execution paths of ``block``.

        ``init_env`` seeds the environment (symbolic packets, symbolic
        state variables, concrete configuration).  ``watched`` names the
        variables whose writes should be recorded per path (the
        output-impacting state variables).

        Finished paths are numbered and ordered *canonically* (by their
        branch-decision sequence, True before False), so every strategy
        — and the parallel frontier merge — yields byte-identical
        results on a complete exploration.
        """
        self.stats = ExploreStats()
        watched = watched or set()
        cfg = build_cfg(block)
        stmts = {s.sid: s for s in iter_block(block)}

        entry_succs = cfg.succs(ENTRY, virtual=False)
        first = entry_succs[0] if entry_succs else EXIT
        initial = SymState(pc=first, env=dict(init_env or {}))
        worker_solver = {"checks": 0, "hits": 0, "misses": 0}

        table = InternTable() if self.config.intern_exprs else None
        span = obs_trace.span(
            "se.explore", stmts=len(stmts), strategy=self.config.strategy
        )
        with interning(table):
            self._intern_table = table
            with span, Stopwatch() as sw:
                finished: List[SymState] = []
                if (
                    self.config.strategy == "frontier"
                    and self.config.parallel_paths > 1
                ):
                    self._explore_frontier(
                        block, initial, cfg, stmts, watched, finished, worker_solver
                    )
                else:
                    stack = make_strategy(
                        self.config.strategy, self.config.strategy_seed
                    )
                    stack.push(initial)
                    self._drive(stack, cfg, stmts, watched, finished)
                results = self._finalize(finished)
                span.set(
                    paths_done=self.stats.paths_done,
                    paths_pruned=self.stats.paths_pruned,
                    paths_truncated=self.stats.paths_truncated,
                    paths_error=self.stats.paths_error,
                    forks=self.stats.forks,
                    steps=self.stats.steps,
                    pruned_subsumed=self.stats.pruned_subsumed,
                    witness_hits=self.stats.witness_hits,
                    exhausted=self.stats.exhausted,
                )
            self._intern_table = None
        self.stats.elapsed_s = sw.elapsed
        self.stats.solver_checks = self.solver.checks + worker_solver["checks"]
        self.stats.solver_cache_hits = self.solver.cache_hits + worker_solver["hits"]
        self.stats.solver_cache_misses = (
            self.solver.cache_misses + worker_solver["misses"]
        )
        if table is not None:
            tstats = table.stats()
            self.stats.intern_size += tstats["size"]
            self.stats.intern_hits += tstats["hits"]
            self.stats.intern_misses += tstats["misses"]
            obs_metrics.counter("se.intern_hits").inc(tstats["hits"])
            obs_metrics.counter("se.intern_misses").inc(tstats["misses"])
        obs_metrics.counter("se.steps").inc(self.stats.steps)
        return results

    def explore_seeds(
        self,
        block: Block,
        seeds: Sequence[SymState],
        watched: Optional[Set[str]] = None,
    ) -> Tuple[List[SymState], ExploreStats]:
        """Depth-first explore from pre-forked seed states (frontier
        workers).  Returns raw finished states — the parent performs the
        canonical merge/numbering across all partitions."""
        self.stats = ExploreStats()
        watched = watched or set()
        cfg = build_cfg(block)
        stmts = {s.sid: s for s in iter_block(block)}
        table = InternTable() if self.config.intern_exprs else None
        finished: List[SymState] = []
        with interning(table):
            self._intern_table = table
            stack = make_strategy("dfs", self.config.strategy_seed)
            for seed in seeds:
                stack.push(seed)
            self._drive(stack, cfg, stmts, watched, finished)
            self._intern_table = None
        self.stats.solver_checks = self.solver.checks
        self.stats.solver_cache_hits = self.solver.cache_hits
        self.stats.solver_cache_misses = self.solver.cache_misses
        if table is not None:
            tstats = table.stats()
            self.stats.intern_size = tstats["size"]
            self.stats.intern_hits = tstats["hits"]
            self.stats.intern_misses = tstats["misses"]
        return finished, self.stats

    # -- drive loop ----------------------------------------------------------

    def _drive(
        self,
        stack: Strategy,
        cfg: CFG,
        stmts: Dict[int, Stmt],
        watched: Set[str],
        finished: List[SymState],
        stop_at: Optional[int] = None,
        frames: Optional[bool] = None,
    ) -> None:
        """Pop-and-run until the stack drains (or ``stop_at`` pending
        states accumulate — the frontier hand-off point)."""
        # Subsumption recording assumes LIFO scheduling (a frame closes
        # when the stack height returns to its open depth); bfs/random
        # interleave subtrees, so recording is disabled there.  Callers
        # driving a non-LIFO stack (the frontier's phase A) pass
        # ``frames=False`` explicitly.
        if frames is None:
            frames = self.config.strategy in ("dfs", "frontier")
        frames_on = self.config.subsumption and frames
        self._frames = {}
        self._open_frames = []
        while stack:
            if self.stats.paths_done >= self.config.max_paths:
                self.stats.exhausted = True
                break
            if stop_at is not None and len(stack) >= stop_at:
                break  # hand the pending frontier to the process pool
            while self._open_frames and len(stack) <= self._open_frames[-1].depth:
                frame = self._open_frames.pop()
                if not frame.poisoned:
                    self._frames.setdefault(frame.sig, frame)
            state = stack.pop()
            obs_metrics.counter("se.states_popped").inc()
            if frames_on:
                sig = state_signature(state)
                if sig is not None:
                    frame = self._frames.get(sig)
                    if frame is not None and self._try_graft(state, frame, finished):
                        continue
                    if frame is None:
                        self._open_frames.append(
                            _Frame(
                                sig=sig,
                                depth=len(stack),
                                c0=len(state.constraints),
                                e0=len(state.executed),
                                b0=len(state.branches),
                                s0=len(state.sent),
                                w0=len(state.state_writes),
                                steps0=state.steps,
                            )
                        )
            result = self._run_state(state, cfg, stmts, watched, stack)
            if result is None:
                continue
            self._finish_state(result, finished, from_graft=False)
        # Frames still open here (budget break, hand-off, or simply the
        # last subtree) are never needed again: drop them.
        self._open_frames = []

    def _finish_state(
        self, state: SymState, finished: List[SymState], from_graft: bool
    ) -> None:
        """Account for one finished path and record it into open frames."""
        finished.append(state)
        if state.status == "done":
            self.stats.paths_done += 1
            obs_metrics.counter("se.paths_done").inc()
        elif state.status == "truncated":
            self.stats.paths_truncated += 1
            obs_metrics.counter("se.paths_truncated").inc()
        elif state.status == "error":
            self.stats.paths_error += 1
            obs_metrics.counter("se.paths_error").inc()
        else:
            self.stats.paths_pruned += 1
            obs_metrics.counter("se.paths_infeasible").inc()
        if not from_graft and state.status != "truncated":
            self.stats.states_explored += 1
        if state.status == "truncated" and "step budget" in state.note:
            # Truncation point depends on the *absolute* step count,
            # which a signature twin does not share.
            for frame in self._open_frames:
                frame.poisoned = True
            return
        for frame in self._open_frames:
            steps_delta = state.steps - frame.steps0
            frame.leaves.append(
                _Leaf(
                    status=state.status,
                    note=state.note,
                    c_delta=tuple(state.constraints[frame.c0:]),
                    e_delta=tuple(state.executed[frame.e0:]),
                    b_delta=tuple(state.branches[frame.b0:]),
                    sent_delta=tuple(state.sent[frame.s0:]),
                    w_delta=tuple(state.state_writes[frame.w0:]),
                    env=state.env,
                    steps_delta=steps_delta,
                )
            )
            frame.done_count += state.status == "done"
            frame.max_steps_delta = max(frame.max_steps_delta, steps_delta)

    def _record_event(self, state: SymState, arms: List[Tuple[Any, bool]]) -> None:
        """Record one branch decision into every open recording frame."""
        if not arms or not self._open_frames:
            return
        packed = tuple(arms)
        for frame in self._open_frames:
            frame.events.append((tuple(state.constraints[frame.c0:]), packed))

    def _try_graft(
        self, state: SymState, frame: _Frame, finished: List[SymState]
    ) -> bool:
        """Replay a recorded subtree under ``state``'s prefix.

        Sound because every recorded feasibility decision is re-checked
        under the new prefix first (the solver is deterministic, and a
        witness-decided arm is truly satisfiable, so re-checking can
        never disagree with what normal execution would have concluded);
        any mismatch bails out to normal execution.  Byte-identical
        because equal signatures mean canonically-equal environments,
        hence identical subtree structure and leaf deltas.
        """
        if frame.poisoned:
            return False
        # Conservative budget guards: bail whenever the path budget
        # could interrupt the subtree mid-way, or a replayed leaf would
        # newly exceed the per-path step budget.
        if self.stats.paths_done + frame.done_count >= self.config.max_paths:
            return False
        if state.steps + frame.max_steps_delta > self.config.max_steps_per_path:
            return False
        # Re-check every recorded branch decision under the new prefix.
        # The prefix is propagated once into a base context; each event
        # extends a copy with its subtree delta, each arm a copy of
        # that — results match Solver.check() on the full conjunction.
        base = self.solver.context()
        self.solver.absorb_into(base, state.constraints)
        for delta, arms in frame.events:
            ctx = base
            if delta:
                ctx = base.copy()
                self.solver.absorb_into(ctx, delta)
            for arm, was_feasible in arms:
                if self.solver.check_assuming(ctx, arm).feasible != was_feasible:
                    return False
        self.stats.pruned_subsumed += 1
        obs_metrics.counter("se.pruned_subsumed").inc()
        # The replayed decisions and leaves are part of every still-open
        # ancestor's subtree too: re-record them rebased on the new
        # prefix so outer frames stay complete.
        if self._open_frames:
            for delta, arms in frame.events:
                for outer in self._open_frames:
                    outer.events.append(
                        (
                            tuple(state.constraints[outer.c0:]) + delta,
                            arms,
                        )
                    )
        for leaf in frame.leaves:
            replayed = SymState(
                pc=EXIT,
                env=leaf.env,
                constraints=state.constraints + list(leaf.c_delta),
                executed=state.executed + list(leaf.e_delta),
                branches=state.branches + list(leaf.b_delta),
                sent=state.sent + [(dict(f), p) for f, p in leaf.sent_delta],
                state_writes=state.state_writes + list(leaf.w_delta),
                loop_counts={},
                steps=state.steps + leaf.steps_delta,
                status=leaf.status,
                note=leaf.note,
                witness=None,
            )
            self._finish_state(replayed, finished, from_graft=True)
        return True

    def _finalize(self, finished: List[SymState]) -> List[PathResult]:
        """Canonically order, number, and filter finished states.

        The key is the branch-decision sequence (True sorts before
        False): depth-first finish order already coincides with it, so
        the sort is the identity for dfs, while bfs/random/frontier
        converge to the same byte stream.  Numbering covers *every*
        finished state (pruned/truncated included) to preserve the
        historical path-id sequence.
        """

        def key(state: SymState) -> Tuple[Tuple[int, int], ...]:
            return tuple((sid, 0 if oc else 1) for sid, oc in state.branches)

        ordered = sorted(finished, key=key)
        # Budget cut: a sequential run stops right after the path that
        # reaches ``max_paths`` finishes, so a frontier merge (whose
        # workers each ran with the full budget) must discard everything
        # past the max-th done path in canonical order.
        done_seen = 0
        for index, state in enumerate(ordered):
            if state.status == "done":
                done_seen += 1
                if done_seen >= self.config.max_paths:
                    dropped = ordered[index + 1:]
                    if dropped:
                        ordered = ordered[: index + 1]
                        self.stats.exhausted = True
                        self.stats.paths_done = done_seen
                        self.stats.paths_pruned = sum(
                            1 for s in ordered if s.status == "pruned"
                        )
                        self.stats.paths_truncated = sum(
                            1 for s in ordered if s.status == "truncated"
                        )
                        self.stats.paths_error = sum(
                            1 for s in ordered if s.status == "error"
                        )
                    break

        results: List[PathResult] = []
        for path_id, state in enumerate(ordered, 1):
            if state.status != "done" and not self.config.keep_pruned:
                continue
            if state.status == "pruned":
                continue  # infeasible states never become results
            results.append(
                PathResult(
                    path_id=path_id,
                    status=state.status,
                    constraints=list(state.constraints),
                    executed=list(state.executed),
                    branches=list(state.branches),
                    sent=list(state.sent),
                    state_writes=list(state.state_writes),
                    env=state.env,
                    note=state.note,
                )
            )
        return results

    # -- frontier parallelism -------------------------------------------------

    def _explore_frontier(
        self,
        block: Block,
        initial: SymState,
        cfg: CFG,
        stmts: Dict[int, Stmt],
        watched: Set[str],
        finished: List[SymState],
        worker_solver: Dict[str, int],
    ) -> None:
        """Phase A: expand the branch frontier in-process until enough
        independent states exist; phase B: partition them across a
        process pool and merge the workers' finished states.  The
        canonical ordering in :meth:`_finalize` makes the merge
        deterministic and byte-identical to sequential DFS.

        Phase A runs *breadth*-first: a DFS stack dives into one subtree
        and rarely holds more than a handful of pending siblings, so it
        may drain the whole program without ever reaching the hand-off
        width.  BFS widens the frontier level by level instead.
        Subsumption recording is LIFO-only, so it is off during phase A
        (the phase is a few dozen pops — the workers, which do the bulk
        of the exploration, still record and graft)."""
        from repro.parallel import explore_frontier_parts

        jobs = self.config.parallel_paths
        stack = make_strategy("bfs", self.config.strategy_seed)
        stack.push(initial)
        self._drive(
            stack, cfg, stmts, watched, finished, stop_at=jobs * 4, frames=False
        )
        pending = stack.drain()
        if not pending:
            return
        if self.stats.exhausted:
            return
        parts = [pending[i::jobs] for i in range(jobs)]
        parts = [part for part in parts if part]
        outcomes = explore_frontier_parts(block, parts, watched, self.config)
        for states, stats in outcomes:
            finished.extend(states)
            self.stats.paths_done += stats["paths_done"]
            self.stats.paths_pruned += stats["paths_pruned"]
            self.stats.paths_truncated += stats["paths_truncated"]
            self.stats.paths_error += stats["paths_error"]
            self.stats.forks += stats["forks"]
            self.stats.steps += stats["steps"]
            self.stats.states_explored += stats["states_explored"]
            self.stats.pruned_subsumed += stats["pruned_subsumed"]
            self.stats.witness_hits += stats["witness_hits"]
            self.stats.intern_size += stats["intern_size"]
            self.stats.intern_hits += stats["intern_hits"]
            self.stats.intern_misses += stats["intern_misses"]
            self.stats.exhausted = self.stats.exhausted or stats["exhausted"]
            worker_solver["checks"] += stats["solver_checks"]
            worker_solver["hits"] += stats["solver_cache_hits"]
            worker_solver["misses"] += stats["solver_cache_misses"]

    # -- per-state loop -------------------------------------------------------

    def _run_state(
        self,
        state: SymState,
        cfg: CFG,
        stmts: Dict[int, Stmt],
        watched: Set[str],
        stack: "Strategy",
    ) -> Optional[SymState]:
        """Advance ``state`` until it finishes or forks.

        Forked siblings are pushed onto ``stack``; the surviving state is
        returned when it reaches EXIT (or is pruned — then with a
        non-live status).
        """
        while True:
            if state.pc == EXIT:
                state.status = "done"
                return state
            stmt = stmts.get(state.pc)
            if stmt is None:
                state.status = "error"
                state.note = f"pc {state.pc} has no statement"
                return state

            state.steps += 1
            self.stats.steps += 1
            if state.steps > self.config.max_steps_per_path:
                state.status = "truncated"
                state.note = "per-path step budget exceeded"
                return state

            if isinstance(stmt, (SIf, SWhile)):
                follow = self._branch(state, stmt, cfg, stack)
                if follow is None:
                    return state  # pruned/truncated inside _branch
                state.pc = follow
                continue

            state.executed.append(stmt.sid)
            try:
                self._exec_straight(state, stmt, watched)
            except _PathError as exc:
                state.status = "error"
                state.note = str(exc)
                return state
            nxt = self._next_node(cfg, state.pc)
            if nxt is None:
                state.status = "error"
                state.note = f"no successor for sid {state.pc}"
                return state
            state.pc = nxt

    def _next_node(self, cfg: CFG, node: int) -> Optional[int]:
        succs = cfg.succs(node, virtual=False)
        if len(succs) != 1:
            return None
        return succs[0]

    def _branch_target(self, cfg: CFG, node: int, outcome: bool) -> Optional[int]:
        for edge in cfg.succ_edges(node, virtual=False):
            if edge.label is outcome:
                return edge.dst
        return None

    # -- branching ---------------------------------------------------------------

    def _branch(
        self,
        state: SymState,
        stmt: Stmt,
        cfg: CFG,
        stack: "Strategy",
    ) -> Optional[int]:
        """Handle a branch node; returns the pc to follow, or None."""
        assert isinstance(stmt, (SIf, SWhile))
        is_loop = isinstance(stmt, SWhile)
        if is_loop:
            count = state.loop_counts.get(stmt.sid, 0) + 1
            state.loop_counts[stmt.sid] = count

        try:
            cond = self._truth(self.eval_expr(stmt.cond, state))
        except _PathError as exc:
            state.status = "error"
            state.note = str(exc)
            return None

        state.executed.append(stmt.sid)

        if isinstance(cond, bool):
            if is_loop and cond and state.loop_counts[stmt.sid] > self.config.concrete_loop_bound:
                state.status = "truncated"
                state.note = f"concrete loop bound exceeded at sid {stmt.sid}"
                return None
            state.branches.append((stmt.sid, cond))
            target = self._branch_target(cfg, stmt.sid, cond)
            if target is None:
                state.status = "error"
                state.note = f"missing {cond}-edge at sid {stmt.sid}"
                return None
            return target

        # Symbolic condition.  Feasibility checks extend the state's
        # incremental solver context (propagated knowledge of the
        # constraint prefix) with one arm each, instead of
        # re-propagating the whole prefix per check; the arm's context
        # is installed on whichever state commits that arm.
        ctx = state.solver_ctx
        if ctx is None:
            ctx = state.solver_ctx = self.solver.context()

        # Witness shortcut: the state carries a concrete assignment
        # known to satisfy its whole path condition.  Whichever arm the
        # witness satisfies is feasible *for free* (prefix ∧ arm is sat
        # by that very witness); only the other arm needs the solver.
        # Feasibility conclusions are witness-independent — a truly-sat
        # arm can never be refuted by the (sound-unsat) solver — so the
        # shortcut cannot change which paths exist, only how many
        # checks it takes to find them.
        wit = state.witness if self.config.witness_shortcut else None
        wtruth: Optional[bool] = None
        if wit is not None:
            try:
                wtruth = bool(eval_sym(cond, wit))
            except Exception:
                wtruth = None

        if is_loop and state.loop_counts[stmt.sid] > self.config.loop_bound:
            # Force the exit arm if feasible; otherwise truncate.
            exit_cond = mk_app("not", cond)
            if wtruth is False:
                self.stats.witness_hits += 1
                obs_metrics.counter("se.witness_hits").inc()
                self._record_event(state, [(exit_cond, True)])
                self._take(state, stmt, cond, False, cfg)
                return self._branch_target(cfg, stmt.sid, False)
            result, exit_ctx = self.solver.check_extended(
                state.constraints, ctx, exit_cond
            )
            self._record_event(state, [(exit_cond, result.feasible)])
            if result.feasible:
                if self.config.witness_shortcut:
                    state.witness = (
                        result.assignment if result.status == "sat" else None
                    )
                self._take(state, stmt, cond, False, cfg)
                state.solver_ctx = exit_ctx
                return self._branch_target(cfg, stmt.sid, False)
            state.status = "truncated"
            state.note = f"symbolic loop bound exceeded at sid {stmt.sid}"
            return None

        feasible: List[bool] = []
        arm_ctxs: Dict[bool, SolverContext] = {}
        arm_wits: Dict[bool, Optional[Dict[str, Any]]] = {}
        events: List[Tuple[Any, bool]] = []
        for outcome in (True, False):
            arm = cond if outcome else mk_app("not", cond)
            if isinstance(arm, bool):
                if arm:
                    feasible.append(outcome)
                    arm_wits[outcome] = wit
                continue
            if wtruth is not None and wtruth == outcome:
                self.stats.witness_hits += 1
                obs_metrics.counter("se.witness_hits").inc()
                feasible.append(outcome)
                arm_wits[outcome] = wit
                events.append((arm, True))
                continue
            result, arm_ctx = self.solver.check_extended(state.constraints, ctx, arm)
            events.append((arm, result.feasible))
            if result.feasible:
                feasible.append(outcome)
                arm_ctxs[outcome] = arm_ctx
                arm_wits[outcome] = (
                    result.assignment if result.status == "sat" else None
                )
        self._record_event(state, events)

        if not feasible:
            state.status = "pruned"
            state.note = f"both arms infeasible at sid {stmt.sid}"
            return None

        if len(feasible) == 2:
            self.stats.forks += 1
            obs_metrics.counter("se.paths_forked").inc()
            other = state.fork()
            self._take(other, stmt, cond, False, cfg)
            other.solver_ctx = arm_ctxs.get(False, other.solver_ctx)
            if self.config.witness_shortcut:
                other.witness = arm_wits.get(False)
            target_false = self._branch_target(cfg, stmt.sid, False)
            if target_false is not None:
                other.pc = target_false
                stack.push(other)
            outcome = True
        else:
            outcome = feasible[0]

        self._take(state, stmt, cond, outcome, cfg)
        if outcome in arm_ctxs:
            state.solver_ctx = arm_ctxs[outcome]
        if self.config.witness_shortcut:
            state.witness = arm_wits.get(outcome)
        return self._branch_target(cfg, stmt.sid, outcome)

    def _take(
        self, state: SymState, stmt: Stmt, cond: Any, outcome: bool, cfg: CFG
    ) -> None:
        """Commit one branch outcome to ``state``."""
        arm = cond if outcome else mk_app("not", cond)
        if not isinstance(arm, bool):
            state.constraints.append(arm)
        state.branches.append((stmt.sid, outcome))
        self._apply_membership(state, cond, outcome)

    def _witness_absorb(self, state: SymState, atom: Any) -> None:
        """Keep the witness invariant across an implicitly-appended
        constraint: extend the assignment if the whole path condition
        still holds, drop the witness otherwise."""
        wit = state.witness
        if wit is None or not self.config.witness_shortcut:
            return
        try:
            if bool(eval_sym(atom, wit)):
                return
            extended = dict(wit)
            extended[canon(atom)] = True
            if all(bool(eval_sym(c, extended)) for c in state.constraints):
                state.witness = extended
                return
        except Exception:
            pass
        state.witness = None

    def _apply_membership(self, state: SymState, cond: Any, outcome: bool) -> None:
        """Record dict-membership assumptions decided by this branch."""
        if isinstance(cond, SApp) and cond.op == "not":
            self._apply_membership(state, cond.args[0], not outcome)
            return
        if isinstance(cond, SApp) and cond.op == "member":
            dict_name, key = cond.args
            holder = state.env.get(dict_name)
            if isinstance(holder, SymDict):
                holder.assumed[canon(key)] = outcome

    # -- straight-line execution ----------------------------------------------

    def _exec_straight(self, state: SymState, stmt: Stmt, watched: Set[str]) -> None:
        if isinstance(stmt, SAssign):
            value = self.eval_expr(stmt.value, state)
            if stmt.aug is not None:
                old = self._load_lvalue(stmt.targets[0], state)
                value = self._binop(stmt.aug, old, value)
            for target in stmt.targets:
                self._store_lvalue(target, value, state, stmt.sid, watched)
            return
        if isinstance(stmt, SExpr):
            self.eval_expr(stmt.value, state)
            from repro.lang.ir import call_mutated_names

            for var in call_mutated_names(stmt.value) & watched:
                state.state_writes.append((stmt.sid, var))
            return
        if isinstance(stmt, (SReturn, SBreak, SContinue, SPass)):
            return
        if isinstance(stmt, SDelete):
            assert stmt.target is not None
            base = self._load_name(stmt.target.base, state)
            key = self.eval_expr(stmt.target.index, state)
            if isinstance(base, SymDict):
                base.delete(key)
                if stmt.target.base in watched:
                    state.state_writes.append((stmt.sid, stmt.target.base))
                return
            if isinstance(base, dict) and is_concrete(key):
                base.pop(self._dict_key(key), None)
                return
            raise _PathError(f"unsupported delete target at sid {stmt.sid}")
        raise _PathError(f"cannot execute {type(stmt).__name__}")

    # -- l-values -----------------------------------------------------------------

    def _load_name(self, name: str, state: SymState) -> Any:
        if name not in state.env:
            raise _PathError(f"name {name!r} is not defined")
        return state.env[name]

    def _load_lvalue(self, target: LValue, state: SymState) -> Any:
        if isinstance(target, LName):
            return self._load_name(target.id, state)
        if isinstance(target, LSub):
            base = self._load_name(target.base, state)
            index = self.eval_expr(target.index, state)
            return self._subscript(base, index, state)
        if isinstance(target, LAttr):
            base = self._load_name(target.base, state)
            return self._attr_get(base, target.attr)
        raise _PathError("cannot read this assignment target")

    def _store_lvalue(
        self, target: LValue, value: Any, state: SymState, sid: int, watched: Set[str]
    ) -> None:
        if isinstance(target, LName):
            state.env[target.id] = value
            if target.id in watched:
                state.state_writes.append((sid, target.id))
            return
        if isinstance(target, LSub):
            base = self._load_name(target.base, state)
            index = self.eval_expr(target.index, state)
            if isinstance(base, SymDict):
                base.store(index, value)
            elif isinstance(base, dict):
                if not is_concrete(index):
                    raise _PathError(
                        f"symbolic key write into concrete dict {target.base!r}"
                    )
                base[self._dict_key(index)] = value
            elif isinstance(base, list):
                if not isinstance(index, int):
                    raise _PathError("symbolic index write into list")
                try:
                    base[index] = value
                except IndexError:
                    raise _PathError("list index out of range") from None
            else:
                raise _PathError(f"cannot subscript-store into {type(base).__name__}")
            if target.base in watched:
                state.state_writes.append((sid, target.base))
            return
        if isinstance(target, LAttr):
            base = self._load_name(target.base, state)
            if isinstance(base, SymPacket):
                try:
                    base.set(target.attr, value)
                except KeyError as exc:
                    raise _PathError(str(exc)) from None
            elif isinstance(base, Packet):
                if not is_concrete(value):
                    raise _PathError("symbolic write into concrete packet")
                setattr(base, target.attr, value)
            else:
                raise _PathError(f"cannot set attribute on {type(base).__name__}")
            if target.base in watched:
                state.state_writes.append((sid, target.base))
            return
        if isinstance(target, LTuple):
            items = self._unpack(value, len(target.elts))
            for sub, item in zip(target.elts, items):
                self._store_lvalue(sub, item, state, sid, watched)
            return
        raise _PathError("cannot store to this target")

    def _unpack(self, value: Any, arity: int) -> List[Any]:
        if isinstance(value, (tuple, list)):
            if len(value) != arity:
                raise _PathError(
                    f"unpack mismatch: {arity} targets, {len(value)} values"
                )
            return list(value)
        if isinstance(value, Sym):
            return [mk_app("getitem", value, i) for i in range(arity)]
        raise _PathError(f"cannot unpack {type(value).__name__}")

    # -- expression evaluation -------------------------------------------------

    def eval_expr(self, expr: Expr, state: SymState) -> Any:
        if isinstance(expr, EConst):
            return expr.value
        if isinstance(expr, EName):
            return self._load_name(expr.id, state)
        if isinstance(expr, ETuple):
            return tuple(self.eval_expr(e, state) for e in expr.elts)
        if isinstance(expr, EList):
            return [self.eval_expr(e, state) for e in expr.elts]
        if isinstance(expr, EDict):
            out: Dict[Any, Any] = {}
            for k, v in expr.items:
                key = self.eval_expr(k, state)
                if not is_concrete(key):
                    raise _PathError("symbolic key in dict literal")
                out[self._dict_key(key)] = self.eval_expr(v, state)
            return out
        if isinstance(expr, EBin):
            return self._binop(
                expr.op,
                self.eval_expr(expr.left, state),
                self.eval_expr(expr.right, state),
            )
        if isinstance(expr, EUn):
            operand = self.eval_expr(expr.operand, state)
            if expr.op == "not":
                return mk_app("not", self._truth(operand))
            if expr.op == "-":
                if is_concrete(operand):
                    return -operand
                return mk_app("-", 0, operand)
            if expr.op == "+":
                return operand
            if expr.op == "~":
                if is_concrete(operand):
                    return ~operand
                return mk_app("-", mk_app("-", 0, operand), 1)
            raise _PathError(f"unknown unary {expr.op}")
        if isinstance(expr, ECmp):
            return self._compare(
                expr.op,
                self.eval_expr(expr.left, state),
                self.eval_expr(expr.right, state),
                state,
            )
        if isinstance(expr, EBool):
            return self._boolop(expr, state)
        if isinstance(expr, ECall):
            return self._call(expr, state)
        if isinstance(expr, ESub):
            base = self.eval_expr(expr.base, state)
            index = self.eval_expr(expr.index, state)
            return self._subscript(base, index, state)
        if isinstance(expr, EAttr):
            base = self.eval_expr(expr.base, state)
            return self._attr_get(base, expr.attr)
        if isinstance(expr, ECond):
            test = self._truth(self.eval_expr(expr.test, state))
            if isinstance(test, bool):
                return self.eval_expr(expr.body if test else expr.orelse, state)
            return mk_app(
                "cond",
                test,
                self.eval_expr(expr.body, state),
                self.eval_expr(expr.orelse, state),
            )
        raise _PathError(f"cannot evaluate {type(expr).__name__}")

    # -- operator helpers ------------------------------------------------------

    def _binop(self, op: str, left: Any, right: Any) -> Any:
        if op == "+" and isinstance(left, (tuple, list)) and isinstance(right, (tuple, list)):
            if isinstance(left, tuple):
                return tuple(left) + tuple(right)
            return list(left) + list(right)
        if is_concrete(left) and is_concrete(right):
            try:
                return mk_app(op, left, right)
            except (TypeError, ZeroDivisionError, ValueError) as exc:
                raise _PathError(f"operator {op} failed: {exc}") from None
        return mk_app(op, left, right)

    def _compare(self, op: str, left: Any, right: Any, state: SymState) -> Any:
        if op in ("in", "notin"):
            result = self._membership(left, right, state)
            return mk_app("not", result) if op == "notin" else result
        if op in ("is", "isnot"):
            if is_concrete(left) and is_concrete(right):
                return (left is right) if op == "is" else (left is not right)
            raise _PathError("`is` on symbolic values")
        if op in ("==", "!="):
            eq = self._equality(left, right)
            return mk_app("not", eq) if op == "!=" else eq
        if is_concrete(left) and is_concrete(right):
            try:
                return mk_app(op, left, right)
            except TypeError as exc:
                raise _PathError(f"comparison {op} failed: {exc}") from None
        return mk_app(op, left, right)

    def _equality(self, left: Any, right: Any) -> Any:
        lt = isinstance(left, (tuple, list))
        rt = isinstance(right, (tuple, list))
        if lt and rt:
            if len(left) != len(right):
                return False
            parts = [self._equality(a, b) for a, b in zip(left, right)]
            return mk_app("and", *parts)
        if lt != rt and (is_concrete(left) and is_concrete(right)):
            return left == right
        if lt != rt:
            # structured vs opaque symbolic: compare componentwise
            seq, other = (left, right) if lt else (right, left)
            if isinstance(other, Sym):
                parts = [
                    self._equality(seq[i], mk_app("getitem", other, i))
                    for i in range(len(seq))
                ]
                return mk_app("and", *parts)
            return False
        return mk_app("==", left, right)

    def _membership(self, needle: Any, haystack: Any, state: SymState) -> Any:
        if isinstance(haystack, SymDict):
            hit = haystack.written_value(needle)
            if hit is not None:
                return True
            # The probe key may *alias* a key written on this path even
            # though the expressions differ syntactically (e.g. a frame
            # with eth_dst == eth_src probing a table just filled under
            # eth_src).  Membership is the disjunction of equality with
            # each written key and pre-state membership.
            alias_parts = [
                self._equality(needle, wk)
                for wk, _ in _newest_entries(haystack)
            ]
            key_c = canon(needle)
            if key_c in haystack.assumed:
                pre: Any = haystack.assumed[key_c]
            elif key_c in haystack.deleted or haystack.cleared:
                pre = False
            else:
                pre = SApp("member", (haystack.name, _freeze(needle)))
            if alias_parts:
                return mk_app("or", *alias_parts, pre)
            return pre
        if isinstance(haystack, dict):
            if is_concrete(needle):
                return self._dict_key(needle) in haystack
            parts = [self._equality(needle, k) for k in haystack.keys()]
            return mk_app("or", *parts) if parts else False
        if isinstance(haystack, (tuple, list)):
            if is_concrete(needle) and all(is_concrete(v) for v in haystack):
                return needle in list(haystack)
            parts = [self._equality(needle, v) for v in haystack]
            return mk_app("or", *parts) if parts else False
        raise _PathError(f"membership test on {type(haystack).__name__}")

    def _boolop(self, expr: EBool, state: SymState) -> Any:
        parts: List[Any] = []
        for sub in expr.values:
            value = self._truth(self.eval_expr(sub, state))
            if isinstance(value, bool):
                if expr.op == "and" and not value:
                    return False
                if expr.op == "or" and value:
                    return True
                continue
            parts.append(value)
        if not parts:
            return expr.op == "and"
        return mk_app(expr.op, *parts)

    def _truth(self, value: Any) -> Any:
        """Coerce a value into a boolean (symbolic if necessary)."""
        if isinstance(value, bool):
            return value
        if is_concrete(value):
            return bool(value)
        if isinstance(value, SVar) and value.boolean:
            return value
        if isinstance(value, SApp) and value.op in _BOOL_OPS:
            return value
        return mk_app("!=", value, 0)

    # -- subscripts / attributes -----------------------------------------------

    def _subscript(self, base: Any, index: Any, state: SymState) -> Any:
        if isinstance(base, SymDict):
            hit = base.written_value(index)
            if hit is not None:
                return hit[1]
            key_c = canon(index)
            fallback_ok = True
            assumed = base.assumed.get(key_c)
            if assumed is False or key_c in base.deleted or base.cleared:
                fallback_ok = False
            aliases = _newest_entries(base)
            if not aliases:
                if not fallback_ok:
                    raise _PathError(
                        f"read of key assumed absent from {base.name!r}"
                    )
                if assumed is None:
                    # Implicit assume-present: record it so later
                    # membership tests on the same key agree, and
                    # constrain the path.
                    base.assumed[key_c] = True
                    atom = SApp("member", (base.name, _freeze(index)))
                    state.constraints.append(atom)
                    self._witness_absorb(state, atom)
                return SDictVal(base.name, key_c, key=_freeze(index))
            # Written entries with syntactically different keys may alias
            # the probe: the read is a conditional chain, newest first.
            if fallback_ok:
                result: Any = SDictVal(base.name, key_c, key=_freeze(index))
            else:
                # Pre-state read is impossible; any concrete value is
                # unreachable unless one of the aliases matches.
                result = 0
            for wk, wv in reversed(aliases):  # oldest first → newest wins
                result = mk_app(
                    "cond", self._equality(index, wk), _freeze(wv), result
                )
            return result
        if isinstance(base, dict):
            if is_concrete(index):
                key = self._dict_key(index)
                if key not in base:
                    raise _PathError(f"KeyError: {key!r}")
                return base[key]
            raise _PathError("symbolic key into concrete dict")
        if isinstance(base, (tuple, list)):
            if isinstance(index, int):
                try:
                    return base[index]
                except IndexError:
                    raise _PathError("sequence index out of range") from None
            return mk_app("getitem", _freeze(tuple(base)), index)
        if isinstance(base, SDictVal):
            if isinstance(index, int):
                return SDictVal(
                    base.dict_name, base.key_canon, base.path + (index,), key=base.key
                )
            return mk_app("getitem", base, index)
        if isinstance(base, Sym):
            return mk_app("getitem", base, index)
        raise _PathError(f"cannot subscript {type(base).__name__}")

    def _attr_get(self, base: Any, attr: str) -> Any:
        if isinstance(base, SymPacket):
            try:
                return base.get(attr)
            except KeyError as exc:
                raise _PathError(str(exc)) from None
        if isinstance(base, Packet):
            try:
                return getattr(base, attr)
            except AttributeError as exc:
                raise _PathError(str(exc)) from None
        raise _PathError(f"cannot read attribute of {type(base).__name__}")

    # -- calls -------------------------------------------------------------------

    def _call(self, expr: ECall, state: SymState) -> Any:
        name = expr.func
        if expr.method:
            receiver = self.eval_expr(expr.args[0], state)
            args = [self.eval_expr(a, state) for a in expr.args[1:]]
            return self._method(name, receiver, args)

        args = [self.eval_expr(a, state) for a in expr.args]
        if name == "send_packet":
            pkt = args[0]
            port = args[1] if len(args) > 1 else None
            if isinstance(pkt, SymPacket):
                state.sent.append((pkt.snapshot(), port))
            elif isinstance(pkt, Packet):
                state.sent.append((pkt.to_dict(), port))
            else:
                raise _PathError("send_packet() argument is not a packet")
            return None
        if name == "recv_packet":
            # Fresh-variable names embed the trace length, which a
            # signature twin need not share: recordings containing this
            # call cannot be replayed.
            for frame in self._open_frames:
                frame.poisoned = True
            return SymPacket.fresh(f"pkt{len(state.executed)}")
        if name == "len":
            (arg,) = args
            if isinstance(arg, (tuple, list, dict, str)):
                return len(arg)
            if isinstance(arg, SymDict):
                if arg.cleared:
                    # Conservative lower bound: writes since the clear.
                    return len(arg.entries)
                return mk_app("+", SApp("dictlen", (arg.name,)), len(arg.entries))
            return mk_app("len", arg)
        if name == "hash":
            return mk_app("hash", _freeze(args[0]))
        if name in ("abs", "min", "max"):
            if all(is_concrete(a) for a in args):
                return {"abs": abs, "min": min, "max": max}[name](*args)
            return mk_app(name, *args)
        if name == "int":
            (arg,) = args
            if is_concrete(arg):
                return int(arg)
            return arg
        if name == "bool":
            return self._truth(args[0])
        if name == "range":
            if all(isinstance(a, int) for a in args):
                return list(range(*args))
            raise _PathError("range() over symbolic bounds")
        if name in ("tuple", "list"):
            (arg,) = args
            if isinstance(arg, (tuple, list)):
                return tuple(arg) if name == "tuple" else list(arg)
            raise _PathError(f"{name}() of non-sequence")
        if name == "sum":
            (arg,) = args
            if isinstance(arg, (tuple, list)):
                total: Any = 0
                for v in arg:
                    total = self._binop("+", total, v)
                return total
            raise _PathError("sum() of non-sequence")
        if name == "sorted":
            (arg,) = args
            if isinstance(arg, (tuple, list)) and all(is_concrete(v) for v in arg):
                return sorted(arg)
            raise _PathError("sorted() of symbolic sequence")
        raise _PathError(f"unknown function {name!r} (user calls must be inlined)")

    def _method(self, name: str, receiver: Any, args: List[Any]) -> Any:
        if name == "append":
            if isinstance(receiver, list):
                receiver.append(args[0])
                return None
            raise _PathError("append() on non-list")
        if name == "get":
            if isinstance(receiver, dict) and is_concrete(args[0]):
                return receiver.get(self._dict_key(args[0]), *args[1:])
            if isinstance(receiver, SymDict):
                raise _PathError("get() on symbolic dict (use `in` + indexing)")
            raise _PathError("get() on unsupported receiver")
        if name == "pop":
            if isinstance(receiver, list) and all(isinstance(a, int) for a in args):
                try:
                    return receiver.pop(*args)
                except IndexError:
                    raise _PathError("pop from empty list") from None
            raise _PathError("pop() on unsupported receiver")
        if name == "keys" and isinstance(receiver, dict):
            return list(receiver.keys())
        if name == "values" and isinstance(receiver, dict):
            return list(receiver.values())
        if name == "clear":
            if isinstance(receiver, SymDict):
                receiver.clear()
                return None
            if isinstance(receiver, (dict, list)):
                receiver.clear()
                return None
            raise _PathError("clear() on unsupported receiver")
        raise _PathError(f"unsupported method {name!r} in symbolic mode")

    def _dict_key(self, key: Any) -> Any:
        if isinstance(key, list):
            return tuple(key)
        return key


def _newest_entries(sym_dict: SymDict) -> List[Tuple[Any, Any]]:
    """Written (key, value) pairs, newest-wins, one per canonical key."""
    seen: Set[str] = set()
    out: List[Tuple[Any, Any]] = []
    for key, value in reversed(sym_dict.entries):
        key_c = canon(key)
        if key_c in seen:
            continue
        seen.add(key_c)
        out.append((key, value))
    return out


def _freeze(value: Any) -> Any:
    """Make a symbolic value immutable for storage inside SApp args."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, tuple):
        return tuple(_freeze(v) for v in value)
    return value
