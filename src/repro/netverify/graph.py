"""DAG service graphs of synthesized NF models.

A :class:`ServiceGraph` is the topology side of network-wide
verification: named nodes, each bound to one :class:`NFModel`, wired by
directed edges.  Branches (one node feeding several) mirror traffic
down every out-edge; joins (several feeding one) merge the incoming
header-space sets.  The graph must be acyclic — verification is a
single forward pass in topological order.

Identity is content-addressed at two grains:

* per node, :attr:`GraphNode.model_key` fingerprints the *model* the
  node runs (by default a digest of the canonical model JSON, or the
  artifact-cache model-tier key when the builder has one).  Edge
  summaries key on it, so editing one NF dirties exactly the edges
  into its node and whatever lies downstream;
* per graph, :meth:`ServiceGraph.fingerprint` covers nodes, model
  bindings and wiring — the serve tier's routing key, so repeated
  verifications of one graph land on the shard whose edge cache is
  already hot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.keys import stable_fingerprint
from repro.model.matchaction import NFModel

#: Corpus NFs used by :func:`generate_graph` (the heavyweight DPI-style
#: models are deliberately absent: topology scale is the point here,
#: per-model entry count is bench_perf_engine's).
DEFAULT_NF_POOL: Tuple[str, ...] = (
    "firewall",
    "nat",
    "loadbalancer",
    "monitor",
    "l2switch",
    "ratelimiter",
)


@dataclass(frozen=True)
class GraphNode:
    """One placement of one model in the topology."""

    name: str
    model: NFModel
    #: Content fingerprint of the bound model (see module docstring).
    model_key: str

    @property
    def ns(self) -> str:
        """State namespace: two nodes never share state, even same-NF."""
        return f"{self.name}."


class ServiceGraph:
    """A DAG of model-bound nodes (insertion order is not semantic)."""

    def __init__(self) -> None:
        self.nodes: Dict[str, GraphNode] = {}
        self.edges: List[Tuple[str, str]] = []
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}

    # -- construction -------------------------------------------------------

    def add_node(
        self, name: str, model: NFModel, model_key: Optional[str] = None
    ) -> GraphNode:
        if name in self.nodes:
            raise ValueError(f"duplicate node {name!r}")
        if model_key is None:
            from repro.model.serialize import model_to_json

            model_key = stable_fingerprint(("model-json", model_to_json(model)))
        node = GraphNode(name=name, model=model, model_key=model_key)
        self.nodes[name] = node
        self._succ.setdefault(name, [])
        self._pred.setdefault(name, [])
        return node

    def add_edge(self, src: str, dst: str) -> None:
        for end in (src, dst):
            if end not in self.nodes:
                raise ValueError(f"edge references unknown node {end!r}")
        if src == dst:
            raise ValueError(f"self-loop on {src!r}")
        if (src, dst) in self.edges:
            return
        self.edges.append((src, dst))
        self._succ[src].append(dst)
        self._pred[dst].append(src)

    def replace_model(
        self, name: str, model: NFModel, model_key: Optional[str] = None
    ) -> GraphNode:
        """Rebind one node to a new model (the "single NF edit" move).

        Wiring is untouched; the node's :attr:`~GraphNode.model_key`
        changes, so a warm re-verification recomputes exactly this
        node's edges and everything downstream of them.
        """
        if name not in self.nodes:
            raise ValueError(f"unknown node {name!r}")
        del self.nodes[name]
        saved_succ, saved_pred = self._succ[name], self._pred[name]
        node = self.add_node(name, model, model_key)
        self._succ[name], self._pred[name] = saved_succ, saved_pred
        return node

    # -- structure ----------------------------------------------------------

    def successors(self, name: str) -> List[str]:
        return sorted(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        return sorted(self._pred[name])

    def sources(self) -> List[str]:
        return sorted(n for n in self.nodes if not self._pred[n])

    def sinks(self) -> List[str]:
        return sorted(n for n in self.nodes if not self._succ[n])

    def topo_levels(self) -> List[List[str]]:
        """Kahn levels, names sorted within each level (deterministic).

        Level *k* holds the nodes whose longest path from any source has
        *k* edges, so everything a node consumes was produced in an
        earlier level — the unit of frontier-parallel exploration.
        Raises ``ValueError`` on a cycle.
        """
        indegree = {n: len(self._pred[n]) for n in self.nodes}
        level = sorted(n for n, d in indegree.items() if d == 0)
        levels: List[List[str]] = []
        seen = 0
        while level:
            levels.append(level)
            seen += len(level)
            nxt = set()
            for n in level:
                for dst in self._succ[n]:
                    indegree[dst] -= 1
                    if indegree[dst] == 0:
                        nxt.add(dst)
            level = sorted(nxt)
        if seen != len(self.nodes):
            stuck = sorted(n for n, d in indegree.items() if d > 0)
            raise ValueError(f"graph has a cycle through {stuck}")
        return levels

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def fingerprint(self) -> str:
        """Content identity of topology + model bindings (routing key)."""
        return stable_fingerprint(
            (
                "service-graph",
                tuple(
                    (name, self.nodes[name].model_key)
                    for name in sorted(self.nodes)
                ),
                tuple(sorted(self.edges)),
            )
        )

    def summary(self) -> str:
        return (
            f"ServiceGraph({self.n_nodes} nodes, {self.n_edges} edges, "
            f"{len(self.sources())} source(s), {len(self.sinks())} sink(s))"
        )


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def _synthesized(nf: str) -> Tuple[NFModel, str]:
    """(model, model-tier artifact key) for one corpus NF or source path."""
    from repro.nfactor.algorithm import (
        NFactorConfig,
        _model_key,
        synthesize_model_cached,
    )
    from repro.nfs import get_nf, nf_names

    try:
        spec = get_nf(nf)
    except KeyError:
        raise ValueError(f"unknown NF {nf!r} (corpus: {', '.join(nf_names())})")
    ms = synthesize_model_cached(spec.source, name=spec.name, entry=spec.entry)
    key = _model_key(spec.source, spec.name, spec.entry, NFactorConfig())
    return ms.model, key


def build_graph(
    nodes: Sequence[Tuple[str, str]], edges: Sequence[Tuple[str, str]]
) -> ServiceGraph:
    """A graph from ``(node_name, corpus_nf)`` pairs and name edges.

    Each distinct NF is synthesized once (through the artifact cache's
    model tier) and shared across all the nodes that run it; node
    *state* still stays distinct via the per-node namespace.
    """
    graph = ServiceGraph()
    models: Dict[str, Tuple[NFModel, str]] = {}
    for name, nf in nodes:
        if nf not in models:
            models[nf] = _synthesized(nf)
        model, key = models[nf]
        graph.add_node(name, model, model_key=key)
    for src, dst in edges:
        graph.add_edge(src, dst)
    return graph


def generate_graph(
    n_nodes: int,
    seed: int = 7,
    width: int = 5,
    pool: Sequence[str] = DEFAULT_NF_POOL,
) -> ServiceGraph:
    """A seeded layered DAG over the corpus (the benchmark topology).

    Nodes are arranged in layers of up to ``width``; every node gets
    1–2 in-edges from the previous layer (layer 0 nodes are sources),
    so the graph has genuine branches and joins but bounded depth —
    header-space growth is a function of path length, not node count.
    Deterministic for a given ``(n_nodes, seed, width, pool)``.
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if width < 1:
        raise ValueError("width must be >= 1")
    rng = random.Random(f"netverify-gen:{n_nodes}:{seed}:{width}")
    names = [f"n{i:02d}" for i in range(n_nodes)]
    assignments = [pool[rng.randrange(len(pool))] for _ in names]
    graph = build_graph(
        [(name, nf) for name, nf in zip(names, assignments)], edges=[]
    )
    layers: List[List[str]] = [
        names[i : i + width] for i in range(0, n_nodes, width)
    ]
    for prev, layer in zip(layers, layers[1:]):
        for name in layer:
            fan_in = 1 + rng.randrange(min(2, len(prev)))
            for src in rng.sample(prev, fan_in):
                graph.add_edge(src, name)
    return graph
