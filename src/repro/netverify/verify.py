"""Graph verification with a per-edge transfer-summary cache.

The unit of work (and of caching) is the **edge task**: push one input
header space through one node's model.  Its result — the symbolic
output spaces with their accumulated state predicates — depends only on

* the node's model (content-addressed by :attr:`GraphNode.model_key`),
* the node's state namespace, and
* the input space itself (fields + constraints, canonically printed),

so the summary is memoized in the artifact store under the ``edge``
kind keyed on exactly that material.  Consequences:

* **warm re-verification is pure lookup** — no solver call runs;
* **incremental re-verify is automatic** — editing one NF (or rewiring
  upstream topology) changes that node's ``model_key`` (or its input
  fingerprints), so precisely the edges downstream of the dirty node
  miss and recompute, while untouched branches keep hitting.  There is
  no explicit invalidation: stale summaries are simply unreachable;
* **cluster shards share warmth** — the ``edge`` tier rides the same
  CAS framing as every other artifact kind, so shards peer-fill each
  other's summaries (docs/internals.md §13).

Determinism (byte-identity across cache on/off/warm and sequential vs
parallel exploration) holds because summaries record *what the solver
decided*, never *how long it took*: nodes are processed in sorted
topological-level order, a node's inputs are gathered in (level, node
name) arrival order, entries are scanned in model order, and the
parallel path only relocates :func:`compute_edge_summary` calls into
worker processes — each is a pure function of its payload (the solver
draws its samples from a seed derived from the constraint set, PR 2).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import cache as artifact_cache
from repro.apps.verify import HeaderSpace, push_space
from repro.cache.keys import stable_fingerprint
from repro.netverify.graph import ServiceGraph
from repro.obs import metrics as obs_metrics
from repro.symbolic.expr import canon
from repro.symbolic.solver import Solver

#: Bump to invalidate every persisted edge summary (layout changes).
EDGE_SUMMARY_VERSION = 1


def space_fingerprint(space: HeaderSpace) -> str:
    """Canonical content identity of one header space.

    Fields are order-insensitive (sorted); constraints are **ordered**
    — the solver absorbs them in sequence and derives its witness
    samples from the ordered canon tuple, so two spaces with permuted
    constraints are distinct cache keys (identical results would not be
    guaranteed byte-for-byte).  The trace is deliberately excluded: it
    does not influence the transfer function (summaries store trace
    *deltas* and the caller re-prefixes the input trace).
    """
    return stable_fingerprint(
        (
            tuple(sorted((k, canon(v)) for k, v in space.fields.items())),
            tuple(canon(c) for c in space.constraints),
        )
    )


def edge_key(model_key: str, ns: str, space: HeaderSpace) -> str:
    """The artifact-store key of one edge task's summary."""
    return artifact_cache.artifact_key(
        "edge",
        (EDGE_SUMMARY_VERSION, model_key, ns, space_fingerprint(space)),
    )


@dataclass
class EdgeSummary:
    """Memoized outputs of one edge task.

    ``outputs`` holds ``(fields, constraints, trace_delta)`` triples —
    the full symbolic output spaces, with only the trace stored as a
    delta relative to the input (two inputs identical up to trace share
    one summary).  Everything inside is plain symbolic trees, so the
    summary pickles into the store like any other artifact.
    """

    outputs: List[Tuple[Dict[str, Any], List[Any], List[Tuple[str, int]]]]

    def apply(self, space: HeaderSpace) -> List[HeaderSpace]:
        """Materialize output spaces downstream of ``space``."""
        return [
            HeaderSpace(
                fields=dict(fields),
                constraints=list(constraints),
                trace=space.trace + [tuple(t) for t in delta],
            )
            for fields, constraints, delta in self.outputs
        ]


def compute_edge_summary(
    model: Any, ns: str, space: HeaderSpace, solver: Solver
) -> EdgeSummary:
    """Run the transfer function for one edge task (the cache filler)."""
    outputs = push_space(model, space, ns, solver)
    base = len(space.trace)
    return EdgeSummary(
        outputs=[
            (out.fields, out.constraints, [tuple(t) for t in out.trace[base:]])
            for out in outputs
        ]
    )


@dataclass
class GraphVerifyConfig:
    """Knobs of one verification run.

    Everything here is perf-only except ``max_spaces_per_node``, which
    caps the header-space fan-in a node will push (deterministic
    truncation of the arrival-ordered list; truncations are counted in
    :attr:`VerifyStats.truncated_spaces`).  The cap is applied when a
    node *gathers* its inputs, so it is not part of the edge key.
    """

    #: Consult/fill the artifact store's ``edge`` tier.
    use_cache: bool = True
    #: Worker processes for edge tasks within one topological level
    #: (1 = in-process; results are byte-identical either way).
    jobs: int = 1
    #: Per-node input-space cap (see class docstring).
    max_spaces_per_node: int = 64
    #: Concrete witness packets extracted from reaching spaces.
    max_witnesses: int = 8
    #: Thread the process-global solver constraint cache through edge
    #: computations (off = every check pays full price; benchmarks use
    #: this to keep cold/warm timings honest).
    solver_cache: bool = True


@dataclass
class VerifyStats:
    """What one run did (not part of the canonical verdict bytes)."""

    edges: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Edge tasks actually recomputed (== misses when the cache is on;
    #: every edge when it is off).
    dirty_edges: int = 0
    spaces_total: int = 0
    truncated_spaces: int = 0
    elapsed_s: float = 0.0
    #: Per-node hit/recompute counts (dirty-region introspection).
    node_hits: Dict[str, int] = field(default_factory=dict)
    node_dirty: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "edges": self.edges,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "dirty_edges": self.dirty_edges,
            "spaces_total": self.spaces_total,
            "truncated_spaces": self.truncated_spaces,
            "elapsed_s": self.elapsed_s,
        }


def _space_payload(space: HeaderSpace) -> Dict[str, Any]:
    """The canonical JSON view of one header space (verdict bytes)."""
    return {
        "fields": {k: canon(v) for k, v in sorted(space.fields.items())},
        "constraints": [canon(c) for c in space.constraints],
        "trace": [[nf, entry_id] for nf, entry_id in space.trace],
    }


@dataclass
class GraphVerdict:
    """The outcome of one graph verification.

    :meth:`to_json` is the canonical serialization the byte-identity
    guarantees are stated over: it covers the graph fingerprint, the
    reachable spaces per sink and the witnesses — and excludes
    :attr:`stats`, which legitimately varies across cache states.
    """

    graph_fingerprint: str
    can_reach: bool
    #: Reachable spaces per sink node name (sorted sink order).
    reachable: Dict[str, List[HeaderSpace]]
    #: Concrete witness assignments, one per reaching space (capped).
    witnesses: List[Dict[str, Any]]
    stats: VerifyStats = field(default_factory=VerifyStats)

    @property
    def n_spaces(self) -> int:
        return sum(len(spaces) for spaces in self.reachable.values())

    def to_json(self) -> str:
        payload = {
            "graph": self.graph_fingerprint,
            "can_reach": self.can_reach,
            "n_spaces": self.n_spaces,
            "sinks": {
                sink: [_space_payload(s) for s in spaces]
                for sink, spaces in self.reachable.items()
            },
            "witnesses": self.witnesses,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def traces(self, limit: int = 10) -> List[List[Tuple[str, int]]]:
        """The first ``limit`` end-to-end traces across all sinks."""
        out: List[List[Tuple[str, int]]] = []
        for sink in sorted(self.reachable):
            for space in self.reachable[sink]:
                out.append(list(space.trace))
                if len(out) >= limit:
                    return out
        return out

    def summary(self) -> str:
        s = self.stats
        return (
            f"graph {self.graph_fingerprint[:12]}: "
            f"{'reachable' if self.can_reach else 'BLACKHOLED'} "
            f"({self.n_spaces} space(s) across {len(self.reachable)} sink(s)); "
            f"{s.edges} edges, {s.cache_hits} cache hits, "
            f"{s.dirty_edges} recomputed, {s.elapsed_s * 1000:.1f} ms"
        )


class GraphVerifier:
    """Forward reachability over a :class:`ServiceGraph` (see module doc)."""

    def __init__(
        self,
        graph: ServiceGraph,
        solver: Optional[Solver] = None,
        config: Optional[GraphVerifyConfig] = None,
    ) -> None:
        self.graph = graph
        self.config = config or GraphVerifyConfig()
        self.solver = solver or Solver(cache=self.config.solver_cache)

    # -- internals ----------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        registry = obs_metrics.active()
        if registry.enabled:
            registry.counter(name).inc(n)

    def _lookup(self, key: str) -> Optional[EdgeSummary]:
        hit = artifact_cache.get_store().get_object("edge", key)
        if isinstance(hit, EdgeSummary) and isinstance(hit.outputs, list):
            return hit
        return None

    # -- public -------------------------------------------------------------

    def verify(self, space: Optional[HeaderSpace] = None) -> GraphVerdict:
        """Push ``space`` (default: all packets) through the whole DAG."""
        t0 = time.perf_counter()
        config = self.config
        stats = VerifyStats()
        init = space or HeaderSpace.universe()
        store = artifact_cache.get_store()
        use_cache = config.use_cache and store.enabled

        inbox: Dict[str, List[HeaderSpace]] = {
            name: [] for name in self.graph.nodes
        }
        for source in self.graph.sources():
            inbox[source].append(init)
        outputs: Dict[str, List[HeaderSpace]] = {}

        for level in self.graph.topo_levels():
            # Phase 1: gather inputs, serve cache hits, collect misses.
            pending: List[Tuple[str, int, HeaderSpace, Optional[str]]] = []
            served: Dict[Tuple[str, int], List[HeaderSpace]] = {}
            for name in level:
                node = self.graph.nodes[name]
                inputs = inbox[name]
                if len(inputs) > config.max_spaces_per_node:
                    stats.truncated_spaces += (
                        len(inputs) - config.max_spaces_per_node
                    )
                    inputs = inputs[: config.max_spaces_per_node]
                for idx, inp in enumerate(inputs):
                    stats.edges += 1
                    key: Optional[str] = None
                    if use_cache:
                        key = edge_key(node.model_key, node.ns, inp)
                        summary = self._lookup(key)
                        if summary is not None:
                            stats.cache_hits += 1
                            stats.node_hits[name] = (
                                stats.node_hits.get(name, 0) + 1
                            )
                            served[(name, idx)] = summary.apply(inp)
                            continue
                        stats.cache_misses += 1
                    stats.dirty_edges += 1
                    stats.node_dirty[name] = stats.node_dirty.get(name, 0) + 1
                    pending.append((name, idx, inp, key))

            # Phase 2: compute the misses — in worker processes when
            # asked, in-process otherwise.  Same bytes either way.
            if config.jobs > 1 and len(pending) > 1:
                from repro.parallel import compute_edge_summaries

                payloads = [
                    (
                        self.graph.nodes[name].model,
                        self.graph.nodes[name].ns,
                        inp,
                        config.solver_cache,
                    )
                    for name, _idx, inp, _key in pending
                ]
                summaries = compute_edge_summaries(payloads, config.jobs)
            else:
                summaries = [
                    compute_edge_summary(
                        self.graph.nodes[name].model, self.graph.nodes[name].ns,
                        inp, self.solver,
                    )
                    for name, _idx, inp, _key in pending
                ]
            for (name, idx, inp, key), summary in zip(pending, summaries):
                if key is not None:
                    store.put_object("edge", key, summary)
                served[(name, idx)] = summary.apply(inp)

            # Phase 3: deterministic merge + fan-out to successors.
            for name in level:
                outs: List[HeaderSpace] = []
                idx = 0
                while (name, idx) in served:
                    outs.extend(served[(name, idx)])
                    idx += 1
                outputs[name] = outs
                stats.spaces_total += len(outs)
                for dst in self.graph.successors(name):
                    inbox[dst].extend(outs)

        reachable = {sink: outputs.get(sink, []) for sink in self.graph.sinks()}
        witnesses = self._witnesses(reachable, config.max_witnesses)
        stats.elapsed_s = time.perf_counter() - t0
        self._count("verify.edges", stats.edges)
        self._count("verify.cache.hits", stats.cache_hits)
        self._count("verify.cache.misses", stats.cache_misses)
        self._count("verify.dirty_edges", stats.dirty_edges)
        return GraphVerdict(
            graph_fingerprint=self.graph.fingerprint(),
            can_reach=any(reachable.values()),
            reachable=reachable,
            witnesses=witnesses,
            stats=stats,
        )

    def _witnesses(
        self, reachable: Dict[str, List[HeaderSpace]], cap: int
    ) -> List[Dict[str, Any]]:
        """Concrete witness packets for the first ``cap`` reaching spaces.

        Witnesses are derived from the reaching spaces' constraint sets
        with a fresh solver pass, so they are identical whether the
        spaces came out of the cache or a live computation.
        """
        out: List[Dict[str, Any]] = []
        for sink in sorted(reachable):
            for space in reachable[sink]:
                if len(out) >= cap:
                    return out
                result = self.solver.check(space.constraints)
                if result.status != "sat" or result.assignment is None:
                    continue
                assignment = {
                    str(k): (bool(v) if isinstance(v, bool) else int(v))
                    for k, v in sorted(
                        result.assignment.items(), key=lambda kv: str(kv[0])
                    )
                    if isinstance(v, (bool, int))
                }
                out.append(
                    {
                        "sink": sink,
                        "trace": [[nf, e] for nf, e in space.trace],
                        "assignment": assignment,
                    }
                )
        return out
