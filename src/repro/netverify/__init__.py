"""Network-wide verification over DAG service graphs (ROADMAP item 4a).

:mod:`repro.apps.verify` pushes header spaces through a *linear* chain
from scratch on every call; this package scales that to SymNet-style
service graphs — dozens of NFs with branches and joins — and makes
re-verification incremental:

* :mod:`repro.netverify.graph` — :class:`ServiceGraph`, the DAG of
  model-bound nodes, plus builders (``build_graph`` from explicit
  node/edge lists, ``generate_graph`` for seeded layered topologies).
* :mod:`repro.netverify.verify` — :class:`GraphVerifier`, whose hot
  path is a per-edge transfer-summary cache: each
  ``(model key, input-space fingerprint)`` pair memoizes the symbolic
  output spaces of pushing that space through that model, persisted as
  the ``edge`` tier of the artifact store.  A warm re-verification
  after a single NF edit or topology rewire recomputes only the edges
  downstream of the dirty node; independent edges are explored in
  parallel worker processes with a deterministic merge, byte-identical
  to the sequential order.

See docs/internals.md §14 for the architecture and the determinism
argument.
"""

from repro.netverify.graph import ServiceGraph, build_graph, generate_graph
from repro.netverify.verify import (
    GraphVerdict,
    GraphVerifier,
    GraphVerifyConfig,
    VerifyStats,
)

__all__ = [
    "ServiceGraph",
    "build_graph",
    "generate_graph",
    "GraphVerifier",
    "GraphVerifyConfig",
    "GraphVerdict",
    "VerifyStats",
]
