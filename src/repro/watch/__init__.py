"""Always-on incremental synthesis (``repro watch``) — docs/internals.md §15.

The live loop the batch pipeline grows into: a polling watcher detects
edits to registered NF source files, function-level fingerprints decide
which synthesis targets the edit can actually reach, only those rebuild
(everything else is a pure cache hit), the old and new models are
diffed into a ``model.diff`` changelog, and the fresh artifacts are
peer-filled into serve shards *before* each shard is asked to hot-swap
via ``POST /v1/reload`` — so the flip is a registry pointer move, never
a cold synthesis in a worker's request path.
"""

from repro.watch.daemon import WatchDaemon, WatchOptions
from repro.watch.watcher import SourceChange, SourceWatcher, WatchTarget, parse_target

__all__ = [
    "SourceChange",
    "SourceWatcher",
    "WatchDaemon",
    "WatchOptions",
    "WatchTarget",
    "parse_target",
]
