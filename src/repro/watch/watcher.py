"""File watching for ``repro watch`` (stdlib polling, no new deps).

Two-stage change detection per registered file: a cheap ``stat`` pass
(mtime_ns + size) runs every poll, and only when the stat signature
moved is the file read and content-fingerprinted with BLAKE2b.  Editors
that rewrite files without changing content (touch, save-without-edit,
atomic-rename saves) therefore never trigger a rebuild, and a genuine
edit is detected within one poll interval.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class WatchTarget:
    """One synthesis target: a source file plus an optional entry."""

    path: str
    name: str
    entry: Optional[str] = None

    @property
    def label(self) -> str:
        return f"{self.path}:{self.entry}" if self.entry else self.path


def parse_target(spec: str) -> WatchTarget:
    """``PATH.py`` or ``PATH.py:entry`` → :class:`WatchTarget`.

    The target name is the file stem, suffixed with the entry when one
    is given (two entries in one file are two distinct serve targets).
    """
    path, entry = spec, None
    if ":" in spec and not spec.endswith(".py"):
        head, _, tail = spec.rpartition(":")
        if head.endswith(".py"):
            path, entry = head, tail or None
    stem = os.path.splitext(os.path.basename(path))[0]
    name = f"{stem}.{entry}" if entry else stem
    return WatchTarget(path=os.path.abspath(path), name=name, entry=entry)


@dataclass(frozen=True)
class SourceChange:
    """One detected content change."""

    path: str
    source: str
    digest: str


def _digest(source: str) -> str:
    return hashlib.blake2b(source.encode("utf-8"), digest_size=16).hexdigest()


class SourceWatcher:
    """Polls registered files; :meth:`poll` reports content changes."""

    def __init__(self) -> None:
        #: path -> ((mtime_ns, size), content digest)
        self._files: Dict[str, Tuple[Optional[Tuple[int, int]], str]] = {}

    def register(self, path: str) -> str:
        """Track ``path``; returns its current source text."""
        path = os.path.abspath(path)
        source = self._read(path)
        self._files[path] = (self._stat_sig(path), _digest(source))
        return source

    @property
    def paths(self) -> List[str]:
        return sorted(self._files)

    @staticmethod
    def _read(path: str) -> str:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read()

    @staticmethod
    def _stat_sig(path: str) -> Optional[Tuple[int, int]]:
        try:
            st = os.stat(path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def poll(self) -> List[SourceChange]:
        """Changed files since the last poll/register, in path order.

        A vanished file (mid-save rename window) is skipped this round
        and picked up on the next poll once it is back; a stat change
        with identical content just refreshes the signature.
        """
        changes: List[SourceChange] = []
        for path in sorted(self._files):
            last_sig, last_digest = self._files[path]
            sig = self._stat_sig(path)
            if sig is None or sig == last_sig:
                continue
            try:
                source = self._read(path)
            except OSError:
                continue
            digest = _digest(source)
            self._files[path] = (sig, digest)
            if digest != last_digest:
                changes.append(SourceChange(path=path, source=source, digest=digest))
        return changes
