"""The watch daemon: edit → fingerprint → rebuild → diff → hot-swap.

One :class:`WatchDaemon` owns a set of :class:`WatchTarget`\\ s (several
may share one source file — a multi-handler NF is one file, many
targets).  On a file change, each target's *function-level* frontend
key material is recomputed: targets whose reachable units are untouched
are skipped outright (the edit cannot affect their artifacts — the key
they would derive is unchanged), the rest re-synthesize through the
artifact cache, get a ``model.diff`` changelog against their previous
model, and are pushed to every configured serve shard — artifacts
peer-filled first, ``/v1/reload`` flip second, so the shard's next
request for the target is a warm cache hit on the new version.

Every rebuild/skip emits one structured event dict through the
``emit`` callback (the CLI prints them as JSON lines or human text).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro import cache as artifact_cache
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.watch.watcher import SourceChange, SourceWatcher, WatchTarget

#: Cache tiers reported per rebuild (and pushed to shards, minus the
#: in-process-only compiled memo which never leaves a worker).
TIER_KINDS = ("frontend", "prep", "slices", "model", "sim")

log = obs_log.get_logger("repro.watch")


@dataclass(frozen=True)
class WatchOptions:
    """Daemon knobs (the ``repro watch`` flags)."""

    interval_s: float = 0.5
    #: Serve shards to hot-swap, as (host, port) pairs.
    serve: Tuple[Tuple[str, int], ...] = ()
    #: Peer-fill rebuilt artifacts into shards before flipping.
    push_artifacts: bool = True


class WatchDaemon:
    """The rebuild loop; see the module docstring."""

    def __init__(
        self,
        targets: Sequence[WatchTarget],
        options: Optional[WatchOptions] = None,
        emit: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> None:
        if not targets:
            raise ValueError("repro watch needs at least one target")
        self.targets = list(targets)
        self.options = options or WatchOptions()
        self._emit = emit or (lambda event: None)
        self.watcher = SourceWatcher()
        #: target label -> {"source", "material", "model_json"}
        self._state: Dict[str, Dict[str, Any]] = {}
        self.rebuilds = 0
        self.polls = 0

    # -- lifecycle -----------------------------------------------------------

    def baseline(self) -> List[Dict[str, Any]]:
        """Initial build+push of every target (version 1 on the shards)."""
        sources: Dict[str, str] = {}
        for target in self.targets:
            if target.path not in sources:
                sources[target.path] = self.watcher.register(target.path)
        return [
            self._rebuild(target, sources[target.path], reason="baseline")
            for target in self.targets
        ]

    def poll_once(self) -> List[Dict[str, Any]]:
        """One watcher poll; returns the events it emitted."""
        self.polls += 1
        obs_metrics.counter("watch.polls").inc()
        events: List[Dict[str, Any]] = []
        for change in self.watcher.poll():
            for target in self.targets:
                if target.path == change.path:
                    events.append(self._on_change(target, change))
        return events

    def run(self, stop: Any = None) -> None:
        """Baseline, then poll until ``stop`` (a threading.Event) is set."""
        self.baseline()
        while stop is None or not stop.is_set():
            if stop is not None:
                stop.wait(self.options.interval_s)
                if stop.is_set():
                    break
            else:  # pragma: no cover - interactive loop without a stop event
                time.sleep(self.options.interval_s)
            self.poll_once()

    # -- rebuild pipeline ----------------------------------------------------

    def _on_change(
        self, target: WatchTarget, change: SourceChange
    ) -> Dict[str, Any]:
        prev = self._state.get(target.label)
        material = artifact_cache.frontend_key_material(
            change.source, target.name, target.entry
        )
        if prev is not None and prev["material"] == material:
            # The edit touched no unit this target can reach: its keys
            # are unchanged, so every tier would hit.  Skip entirely.
            event = {
                "event": "skip",
                "target": target.label,
                "name": target.name,
                "entry": target.entry,
                "changed": artifact_cache.changed_units(
                    prev["source"], change.source
                ),
            }
            self._emit(event)
            return event
        return self._rebuild(target, change.source, reason="edit")

    def _rebuild(
        self, target: WatchTarget, source: str, reason: str
    ) -> Dict[str, Any]:
        from repro.nfactor.algorithm import (
            synthesize_model_cached,
            target_artifact_keys,
        )

        prev = self._state.get(target.label)
        store = artifact_cache.get_store()
        before = dict(store.counters)
        t0 = time.perf_counter()
        ms = synthesize_model_cached(
            source, name=target.name, entry=target.entry, keep_result=True
        )
        keys = target_artifact_keys(source, target.name, target.entry)
        if ms.result is not None:
            # A fresh synthesis: also materialize the sim-tier bundle
            # locally so shards receive it in the push and their first
            # simulate of the new version is a pure hit.
            store.put_object(
                "sim",
                keys["sim"],
                (ms.result.model, ms.result.module_env, ms.result.pkt_param),
            )
        elapsed_s = time.perf_counter() - t0
        tiers = self._tier_delta(before, dict(store.counters))
        diff = None
        if prev is not None:
            from repro.model.diff import model_changelog

            diff = model_changelog(prev["model_json"], ms.model_json)
        event: Dict[str, Any] = {
            "event": "rebuild",
            "reason": reason,
            "target": target.label,
            "name": target.name,
            "entry": target.entry,
            "cached": ms.cached,
            "elapsed_s": round(elapsed_s, 4),
            "model_key": keys["model"],
            "tiers": tiers,
        }
        if prev is not None:
            event["changed"] = artifact_cache.changed_units(
                prev["source"], source
            )
        if diff is not None:
            event["diff"] = diff.to_dict()
            event["diff_summary"] = diff.summary()
        if self.options.serve:
            event["serve"] = [
                self._push_to_shard(host, port, target, source, keys)
                for host, port in self.options.serve
            ]
        self._state[target.label] = {
            "source": source,
            "material": artifact_cache.frontend_key_material(
                source, target.name, target.entry
            ),
            "model_json": ms.model_json,
        }
        self.rebuilds += 1
        obs_metrics.counter("watch.rebuilds").inc()
        self._emit(event)
        return event

    @staticmethod
    def _tier_delta(
        before: Dict[str, int], after: Dict[str, int]
    ) -> Dict[str, Dict[str, int]]:
        """Per-tier hit/miss counts this rebuild added to the store."""
        return {
            kind: {
                "hits": after.get(f"kind.{kind}.hits", 0)
                - before.get(f"kind.{kind}.hits", 0),
                "misses": after.get(f"kind.{kind}.misses", 0)
                - before.get(f"kind.{kind}.misses", 0),
            }
            for kind in TIER_KINDS
        }

    # -- serve push ----------------------------------------------------------

    def _push_to_shard(
        self,
        host: str,
        port: int,
        target: WatchTarget,
        source: str,
        keys: Dict[str, str],
    ) -> Dict[str, Any]:
        """Peer-fill ``keys`` into one shard, then flip it via reload."""
        from repro.serve.client import ServeClient, ServeError
        from repro.serve.peers import push_cas_raw

        shard = f"{host}:{port}"
        store = artifact_cache.get_store()
        pushed = 0
        if self.options.push_artifacts:
            for kind in TIER_KINDS:
                framed = store.get_raw(kind, keys[kind])
                if framed is not None and push_cas_raw(
                    host, port, kind, keys[kind], framed
                ):
                    pushed += 1
        try:
            response = ServeClient(host, port).reload(
                target.name, source, target.entry
            )
        except ServeError as exc:
            obs_metrics.counter("watch.push_errors").inc()
            return {"shard": shard, "error": str(exc), "pushed": pushed}
        result = response.result or {}
        out = {
            "shard": shard,
            "status": response.status,
            "version": result.get("version"),
            "updated": result.get("updated"),
            "pushed": pushed,
        }
        if not response.ok:
            obs_metrics.counter("watch.push_errors").inc()
            out["error"] = response.error_message
        else:
            obs_metrics.counter("watch.pushed_artifacts").inc(pushed)
        return out
