"""Applications of synthesized models (paper §4).

* :mod:`repro.apps.verify` — stateful network verification with
  model-based transfer functions ``T(h, p, s)``;
* :mod:`repro.apps.compose` — PGA-style service-chain composition;
* :mod:`repro.apps.testing` — BUZZ-style model-guided test-packet
  generation.
"""

from repro.apps.verify import HeaderSpace, NetworkVerifier, find_forwarding_witness
from repro.apps.compose import ChainAnalysis, analyze_chain, compose_chains
from repro.apps.testing import TestCase, TestSuite, generate_tests, validate_suite

__all__ = [
    "HeaderSpace",
    "NetworkVerifier",
    "find_forwarding_witness",
    "ChainAnalysis",
    "analyze_chain",
    "compose_chains",
    "TestCase",
    "TestSuite",
    "generate_tests",
    "validate_suite",
]
