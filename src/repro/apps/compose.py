"""Service-chain composition (paper §4, "Service Policy Composition").

PGA determines valid NF orders from per-NF behaviour models.  With
NFactor models the needed facts fall out directly:

* the **read set** — packet fields an NF's matches inspect;
* the **write set** — fields its forwarding actions rewrite.

An order places NF ``B`` after ``A`` safely when ``A``'s writes do not
clobber fields ``B`` matches on (otherwise ``B`` classifies rewritten
traffic, not the operator's intent).  ``compose_chains`` merges two
chain policies (preserving each chain's internal order) and ranks the
interleavings by conflict count — reproducing the paper's
``{FW, IDS} + {LB}`` → ``{FW, IDS, LB}`` example, because the LB
rewrites ``ip_dst``/``dport`` which both the firewall ACL and the IDS
rules match on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Sequence, Set, Tuple

from repro.model.matchaction import NFModel
from repro.symbolic.expr import SApp, SDictVal, SVar, sym_vars


def match_fields(model: NFModel) -> Set[str]:
    """Packet fields the model's matches (flow and state keys) read."""
    fields: Set[str] = set()
    for entry in model.all_entries():
        for c in entry.guard():
            for leaf in sym_vars(c):
                if isinstance(leaf, SVar) and leaf.name.startswith("pkt."):
                    fields.add(leaf.name.split(".", 1)[1])
                elif isinstance(leaf, SApp) and leaf.op == "member":
                    for inner in sym_vars(leaf.args[1]):
                        if isinstance(inner, SVar) and inner.name.startswith("pkt."):
                            fields.add(inner.name.split(".", 1)[1])
    return fields


def rewrite_fields(model: NFModel) -> Set[str]:
    """Packet fields some forwarding entry rewrites."""
    fields: Set[str] = set()
    for entry in model.all_entries():
        fields |= set(entry.flow_transform())
    return fields


@dataclass
class ChainAnalysis:
    """Read/write interaction analysis of an ordered chain."""

    order: Tuple[str, ...]
    conflicts: List[Tuple[str, str, Set[str]]] = field(default_factory=list)

    @property
    def n_conflicts(self) -> int:
        return len(self.conflicts)

    def summary(self) -> str:
        chain = " -> ".join(self.order)
        if not self.conflicts:
            return f"{chain}: no rewrite/match conflicts"
        parts = "; ".join(
            f"{a} rewrites {sorted(fields)} read by {b}" for a, b, fields in self.conflicts
        )
        return f"{chain}: {self.n_conflicts} conflict(s) ({parts})"


def analyze_chain(chain: Sequence[Tuple[str, NFModel]]) -> ChainAnalysis:
    """Find upstream-rewrite/downstream-match conflicts in one order."""
    analysis = ChainAnalysis(order=tuple(name for name, _ in chain))
    for i in range(len(chain)):
        for j in range(i + 1, len(chain)):
            up_name, up_model = chain[i]
            down_name, down_model = chain[j]
            clobbered = rewrite_fields(up_model) & match_fields(down_model)
            if clobbered:
                analysis.conflicts.append((up_name, down_name, clobbered))
    return analysis


def _interleavings(a: Sequence, b: Sequence) -> List[Tuple]:
    """All merges of two sequences preserving each one's internal order."""
    if not a:
        return [tuple(b)]
    if not b:
        return [tuple(a)]
    out: List[Tuple] = []
    for rest in _interleavings(a[1:], b):
        out.append((a[0],) + rest)
    for rest in _interleavings(a, b[1:]):
        out.append((b[0],) + rest)
    return out


def compose_chains(
    chain_a: Sequence[Tuple[str, NFModel]],
    chain_b: Sequence[Tuple[str, NFModel]],
) -> List[ChainAnalysis]:
    """Rank all merges of two chain policies by conflict count.

    The first element is the recommended composition (fewest
    rewrite/match conflicts; ties broken by keeping chain A earliest).
    """
    analyses = [
        analyze_chain(order) for order in _interleavings(list(chain_a), list(chain_b))
    ]
    analyses.sort(key=lambda an: an.n_conflicts)
    return analyses
