"""Stateful network verification on synthesized models (paper §4).

Two verification styles from the paper:

1. **Extending stateless verification** — each model entry is a network
   transfer function ``T(h, p, s)``: :class:`NetworkVerifier` pushes
   symbolic header spaces through a chain of models, with state
   predicates (dict-membership atoms) carried as free decision
   variables, HSA-style but stateful.

2. **Model checking speedup** — checking a property against the model
   costs one solver call per table entry, versus re-running symbolic
   execution over the whole NF program; the benchmark harness
   (bench_applications) measures that gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.model.matchaction import NFModel, TableEntry
from repro.nfactor.algorithm import SynthesisResult
from repro.symbolic.expr import SApp, SDictVal, SVar, Sym, canon, sym_vars
from repro.symbolic.solver import Solver


def subst_fields(value: Any, fields: Dict[str, Any], ns: str = "") -> Any:
    """Substitute packet-field variables in a symbolic tree.

    ``fields`` maps field name → replacement value (symbolic over the
    chain's *input* variables).  ``ns`` disambiguates state leaves of
    different chain hops by prefixing dict/state names.
    """
    if isinstance(value, SVar):
        if value.name.startswith("pkt") and "." in value.name:
            fieldname = value.name.split(".", 1)[1]
            if fieldname in fields:
                return fields[fieldname]
        if ns and value.name.startswith("st."):
            return SVar(f"st.{ns}{value.name[3:]}", value.lo, value.hi, value.boolean)
        return value
    if isinstance(value, SDictVal):
        key = subst_fields(value.key, fields, ns) if value.key is not None else None
        return SDictVal(f"{ns}{value.dict_name}", canon(key), value.path, key=key)
    if isinstance(value, SApp):
        if value.op == "member":
            dict_name, key = value.args
            new_key = subst_fields(key, fields, ns)
            return SApp("member", (f"{ns}{dict_name}", new_key))
        return SApp(
            value.op, tuple(subst_fields(a, fields, ns) for a in value.args)
        )
    if isinstance(value, tuple):
        return tuple(subst_fields(v, fields, ns) for v in value)
    if isinstance(value, list):
        return [subst_fields(v, fields, ns) for v in value]
    return value


@dataclass
class HeaderSpace:
    """A symbolic set of packets at one point in the network.

    ``fields`` gives each header field as a symbolic expression over
    the chain-input packet variables; ``constraints`` restricts the
    input space (and records state assumptions made along the way).
    ``trace`` lists the (nf, entry_id) hops taken.
    """

    fields: Dict[str, Any]
    constraints: List[Any] = field(default_factory=list)
    trace: List[Tuple[str, int]] = field(default_factory=list)

    @classmethod
    def universe(cls) -> "HeaderSpace":
        """The all-packets space: every field a free variable."""
        from repro.net.packet import FIELD_DOMAINS

        return cls(
            fields={
                name: SVar(f"pkt.{name}", lo, hi)
                for name, (lo, hi) in FIELD_DOMAINS.items()
            }
        )

    def constrained(self, *constraints: Any) -> "HeaderSpace":
        """A copy with extra input constraints."""
        return HeaderSpace(
            fields=dict(self.fields),
            constraints=list(self.constraints) + list(constraints),
            trace=list(self.trace),
        )


def push_space(
    model: NFModel, space: HeaderSpace, ns: str, solver: Solver
) -> List[HeaderSpace]:
    """All output spaces one model produces from ``space``.

    The per-edge transfer function shared by the linear
    :class:`NetworkVerifier` and the DAG :class:`repro.netverify`
    verifier (which memoizes its results per ``(model, space)`` pair):
    every entry whose guard is feasible against the input space yields
    one output space with the entry's rewrites applied and the guard
    recorded as extra input/state constraints.  ``ns`` namespaces the
    model's state leaves so the same NF at two points in the network
    keeps distinct state.
    """
    out: List[HeaderSpace] = []
    for entry in model.all_entries():
        guard = [subst_fields(c, space.fields, ns) for c in entry.guard()]
        combined = space.constraints + guard
        if not solver.check(combined).feasible:
            continue
        if entry.drops:
            continue
        rewritten = dict(space.fields)
        for name, value in entry.flow_transform().items():
            rewritten[name] = subst_fields(value, space.fields, ns)
        out.append(
            HeaderSpace(
                fields=rewritten,
                constraints=combined,
                trace=space.trace + [(model.name, entry.entry_id)],
            )
        )
    return out


class NetworkVerifier:
    """Pushes header spaces through a chain of synthesized models."""

    def __init__(self, chain: Sequence[Tuple[str, NFModel]], solver: Optional[Solver] = None) -> None:
        self.chain = list(chain)
        self.solver = solver or Solver()

    def step(
        self, model: NFModel, space: HeaderSpace, ns: str
    ) -> List[HeaderSpace]:
        """All output spaces one model produces from ``space``."""
        return push_space(model, space, ns, self.solver)

    def reachable(self, space: Optional[HeaderSpace] = None) -> List[HeaderSpace]:
        """Spaces that traverse the whole chain (none ⇒ chain blackholes)."""
        spaces = [space or HeaderSpace.universe()]
        for hop, (name, model) in enumerate(self.chain):
            nxt: List[HeaderSpace] = []
            ns = f"{name}#{hop}."
            for s in spaces:
                nxt.extend(self.step(model, s, ns))
            spaces = nxt
            if not spaces:
                break
        return spaces

    def can_reach(self, space: Optional[HeaderSpace] = None) -> bool:
        """True when at least one packet can traverse the chain."""
        return bool(self.reachable(space))


def config_constraints(result: SynthesisResult) -> List[Any]:
    """Pin every symbolic configuration variable to its deployed value.

    Verification questions are usually asked about an NF *as
    configured*; without pinning, a free ``cfg.*`` variable lets the
    solver pick a configuration in which the property fails.
    """
    out: List[Any] = []
    from repro.symbolic.expr import mk_app

    for var, sym in result.sym_env.items():
        if isinstance(sym, SVar) and sym.name == f"cfg.{var}":
            value = result.module_env.get(var)
            if isinstance(value, (bool, int)):
                out.append(mk_app("==", sym, int(value)))
    return out


def initial_state_constraints(result: SynthesisResult) -> List[Any]:
    """Pin scalar state variables (``st.*``) to their initial values.

    Useful for questions about a *freshly started* NF — e.g. test
    generation, whose sequences begin from initial state.  Dict state
    is handled separately through membership atoms.
    """
    out: List[Any] = []
    from repro.symbolic.expr import mk_app

    for var, sym in result.sym_env.items():
        if isinstance(sym, SVar) and sym.name == f"st.{var}":
            value = result.module_env.get(var)
            if isinstance(value, (bool, int)):
                out.append(mk_app("==", sym, int(value)))
    return out


def _empty_state_constraints(entry: TableEntry) -> List[Any]:
    """Negate every membership atom in the guard (state tables empty)."""
    out: List[Any] = []
    for c in entry.guard():
        for leaf in sym_vars(c):
            if isinstance(leaf, SApp) and leaf.op == "member":
                out.append(SApp("not", (leaf,)))
    return out


def find_forwarding_witness(
    model: NFModel,
    extra_constraints: Sequence[Any] = (),
    solver: Optional[Solver] = None,
    empty_state: bool = False,
) -> Optional[Tuple[TableEntry, Dict[str, Any]]]:
    """A (entry, witness) pair proving some packet is forwarded.

    ``extra_constraints`` narrows the packet/state space — e.g. assert a
    property's *negation* and a returned witness is a counterexample.
    ``empty_state`` evaluates against freshly-initialised state (every
    state-table membership atom forced false).
    """
    solver = solver or Solver()
    for entry in model.all_entries():
        if entry.drops:
            continue
        constraints = list(extra_constraints) + entry.guard()
        if empty_state:
            constraints += _empty_state_constraints(entry)
        result = solver.check(constraints)
        if result.status == "sat":
            return entry, result.assignment or {}
    return None


def check_drop_invariant(
    model: NFModel,
    forbidden: Sequence[Any],
    solver: Optional[Solver] = None,
    empty_state: bool = False,
) -> Optional[Tuple[TableEntry, Dict[str, Any]]]:
    """Verify "packets satisfying ``forbidden`` are never forwarded".

    Returns None when the invariant holds, else the violating entry and
    a concrete witness packet assignment.
    """
    return find_forwarding_witness(model, forbidden, solver, empty_state)


def model_check_entries(model: NFModel, solver: Optional[Solver] = None) -> int:
    """Feasibility-check every entry guard (the model-checking workload).

    Returns the number of satisfiable entries; used by the benchmark to
    time model-based checking against whole-program symbolic execution.
    """
    solver = solver or Solver()
    return sum(
        1 for entry in model.all_entries() if solver.check(entry.guard()).feasible
    )
