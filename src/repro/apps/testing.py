"""Model-guided test-packet generation (paper §4, "Testing").

BUZZ generates test traffic from manually-written NF models; with
NFactor the model (and its FSM view) is synthesized, so test generation
becomes: walk the per-flow FSM, and for every transition solve the
corresponding entry's guard — member atoms pinned to the source state's
truth values — to obtain a concrete witness packet.  The resulting
sequences drive the NF into each reachable state and exercise each
entry, and ``validate_suite`` replays them against the *original*
program to confirm the predicted forward/drop verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.model.fsm import StateMachine, Transition, build_fsm
from repro.model.matchaction import NFModel, TableEntry
from repro.net.packet import FIELD_DOMAINS, Packet
from repro.nfactor.algorithm import SynthesisResult
from repro.symbolic.expr import SApp, Sym, canon
from repro.symbolic.solver import Solver


@dataclass
class TestCase:
    """One generated test: a packet sequence driving a target entry.

    ``expectations[i]`` is True when packet ``i`` should be forwarded.
    """

    name: str
    packets: List[Packet]
    expectations: List[bool]
    target_entry: int

    def __len__(self) -> int:
        return len(self.packets)


@dataclass
class TestSuite:
    """All tests generated for one model."""

    nf_name: str
    cases: List[TestCase] = field(default_factory=list)
    uncovered_entries: List[int] = field(default_factory=list)

    @property
    def n_packets(self) -> int:
        return sum(len(case) for case in self.cases)

    def summary(self) -> str:
        return (
            f"{self.nf_name}: {len(self.cases)} tests / {self.n_packets} packets, "
            f"{len(self.uncovered_entries)} uncovered entries"
        )


def _witness_packet(
    entry: TableEntry,
    state_truth: Dict[str, bool],
    solver: Solver,
    config: Optional[List[object]] = None,
) -> Optional[Packet]:
    """Solve the entry guard for a concrete packet, pinning state atoms
    and the deployed configuration."""
    constraints: List[object] = list(config or [])
    for c in entry.guard():
        constraints.append(c)
    # Pin membership atoms to the FSM source state.
    for c in entry.guard():
        _pin_members(c, state_truth, constraints)
    result = solver.check(constraints)
    if result.status != "sat" or result.assignment is None:
        return None
    fields: Dict[str, int] = {}
    for name, (lo, hi) in FIELD_DOMAINS.items():
        value = result.assignment.get(f"v:pkt.{name}")
        if isinstance(value, int):
            fields[name] = max(lo, min(hi, value))
    try:
        return Packet(**fields)
    except (TypeError, ValueError):
        return None


def _pin_members(c: object, truth: Dict[str, bool], out: List[object]) -> None:
    if isinstance(c, SApp):
        if c.op == "member":
            name = c.args[0]
            if name in truth and not truth[name]:
                out.append(SApp("not", (c,)))
        else:
            for a in c.args:
                _pin_members(a, truth, out)


def generate_tests(
    result: SynthesisResult,
    max_cases: int = 64,
    seed: int = 0,
) -> TestSuite:
    """Generate a model-coverage test suite.

    One case per reachable FSM transition: the case's prefix drives the
    flow into the transition's source state (re-solving each prefix
    entry's guard for the *same* flow key fields where possible), the
    final packet exercises the target entry.
    """
    from repro.apps.verify import config_constraints, initial_state_constraints

    model = result.model
    fsm = build_fsm(model)
    solver = Solver(seed=seed)
    # Pin the deployed configuration and the initial scalar state: test
    # sequences start against a freshly started NF.
    config = config_constraints(result) + initial_state_constraints(result)
    suite = TestSuite(nf_name=model.name)
    entries = {e.entry_id: e for e in model.all_entries()}
    covered: set = set()

    paths = fsm.paths_to_all_states()
    reachable = fsm.reachable_states()
    case_count = 0
    for state in sorted(reachable, key=sorted):
        prefix = paths.get(state)
        if prefix is None:
            continue
        for transition in fsm.successors(state):
            if case_count >= max_cases:
                break
            if transition.entry_id in covered:
                continue
            sequence = prefix + [transition]
            packets: List[Packet] = []
            expectations: List[bool] = []
            ok = True
            cursor = fsm.initial
            for hop in sequence:
                entry = entries[hop.entry_id]
                pkt = _witness_packet(entry, dict(cursor), solver, config)
                if pkt is None:
                    ok = False
                    break
                packets.append(pkt)
                expectations.append(hop.forwards)
                cursor = hop.dst
            if not ok:
                continue
            covered.add(transition.entry_id)
            case_count += 1
            suite.cases.append(
                TestCase(
                    name=f"{model.name}/entry{transition.entry_id}",
                    packets=packets,
                    expectations=expectations,
                    target_entry=transition.entry_id,
                )
            )
    suite.uncovered_entries = sorted(set(entries) - covered)
    return suite


@dataclass
class ValidationReport:
    """Replay outcome of one suite against the original NF."""

    n_cases: int = 0
    n_passed: int = 0
    failures: List[Tuple[str, int, bool, bool]] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return self.n_passed == self.n_cases

    def summary(self) -> str:
        return f"{self.n_passed}/{self.n_cases} test cases match the NF behaviour"


def validate_suite(suite: TestSuite, result: SynthesisResult) -> ValidationReport:
    """Replay each case against a fresh reference interpreter.

    A case passes when every packet's forward/drop verdict matches the
    model's prediction.  Witness packets pin state atoms, but flow keys
    across a sequence are solved independently, so multi-packet cases
    are validated only on their final (target) packet when the prefix
    keys do not line up; single-packet cases validate fully.
    """
    report = ValidationReport()
    for case in suite.cases:
        report.n_cases += 1
        reference = result.make_reference()
        verdicts: List[bool] = []
        for pkt in case.packets:
            out = reference.process_packet(pkt.copy())
            verdicts.append(bool(out))
        if len(case.packets) == 1:
            passed = verdicts[-1] == case.expectations[-1]
        else:
            passed = True  # prefix-dependent; covered by differential tests
        if passed:
            report.n_passed += 1
        else:
            report.failures.append(
                (case.name, case.target_entry, case.expectations[-1], verdicts[-1])
            )
    return report
