"""A small monotone dataflow framework.

Each concrete analysis supplies lattice operations (bottom, join,
equality is plain ``==`` over frozensets) and a transfer function; the
framework runs a worklist to fixpoint in either direction.  NF-scale
CFGs are small, so set-based lattices are plenty fast.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Generic, Tuple, TypeVar

from repro.cfg.graph import CFG, ENTRY, EXIT

Fact = TypeVar("Fact")


class DataflowProblem(Generic[Fact]):
    """Specification of a forward or backward dataflow problem."""

    direction: str = "forward"  # or "backward"

    def bottom(self) -> Fact:
        """The initial fact for every node."""
        raise NotImplementedError

    def boundary(self) -> Fact:
        """The fact at the boundary node (ENTRY forward, EXIT backward)."""
        return self.bottom()

    def join(self, a: Fact, b: Fact) -> Fact:
        """Lattice join (confluence)."""
        raise NotImplementedError

    def transfer(self, node: int, fact: Fact) -> Fact:
        """Flow function of one statement."""
        raise NotImplementedError


def solve(
    cfg: CFG, problem: DataflowProblem[Fact]
) -> Tuple[Dict[int, Fact], Dict[int, Fact]]:
    """Run ``problem`` to fixpoint; return ``(in_facts, out_facts)``.

    For backward problems the roles are flipped: ``in_facts[n]`` is the
    fact at the *exit* of ``n`` and ``out_facts[n]`` at its entry, so
    callers can treat the pair uniformly as (before-transfer,
    after-transfer).
    """
    forward = problem.direction == "forward"
    boundary_node = ENTRY if forward else EXIT

    # Values never flow along virtual/pseudo edges — exclude them.
    def preds(n: int):
        return cfg.preds(n, virtual=False) if forward else cfg.succs(n, virtual=False)

    def succs(n: int):
        return cfg.succs(n, virtual=False) if forward else cfg.preds(n, virtual=False)

    in_facts: Dict[int, Fact] = {n: problem.bottom() for n in cfg.nodes}
    out_facts: Dict[int, Fact] = {n: problem.bottom() for n in cfg.nodes}
    in_facts[boundary_node] = problem.boundary()
    out_facts[boundary_node] = problem.transfer(boundary_node, in_facts[boundary_node])

    work = deque(n for n in cfg.nodes if n != boundary_node)
    in_queue = set(work)
    while work:
        node = work.popleft()
        in_queue.discard(node)
        incoming = problem.bottom()
        for p in preds(node):
            incoming = problem.join(incoming, out_facts[p])
        in_facts[node] = incoming
        new_out = problem.transfer(node, incoming)
        if new_out != out_facts[node]:
            out_facts[node] = new_out
            for s in succs(node):
                if s not in in_queue:
                    work.append(s)
                    in_queue.add(s)
    return in_facts, out_facts
