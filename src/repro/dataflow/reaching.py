"""Reaching definitions.

A *definition* is a pair ``(var, sid)``.  Element stores (``d[k] = v``)
are weak updates: they generate a definition of ``d`` but do **not**
kill earlier definitions, because only part of the value changed.
Whole-variable stores kill every earlier definition of the variable.

A synthetic definition site :data:`INITIAL` represents values flowing in
from outside the analysed block: function parameters, module globals and
anything else live-on-entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Set, Tuple

from repro.cfg.graph import CFG, ENTRY, EXIT
from repro.dataflow.framework import DataflowProblem, solve
from repro.lang.ir import (
    LName,
    LTuple,
    LValue,
    Program,
    SAssign,
    Stmt,
    call_mutated_names,
    stmt_defs,
)

#: Synthetic sid for definitions that reach from outside the block.
INITIAL = -100

Definition = Tuple[str, int]
Facts = FrozenSet[Definition]


def _strong_defs(stmt: Stmt) -> Set[str]:
    """Variables *strongly* (whole-value) defined by ``stmt``."""
    if not isinstance(stmt, SAssign):
        return set()
    out: Set[str] = set()

    def visit(target: LValue) -> None:
        if isinstance(target, LName):
            out.add(target.id)
        elif isinstance(target, LTuple):
            for t in target.elts:
                visit(t)

    for t in stmt.targets:
        visit(t)
    # An augmented assign still replaces the whole value of an LName.
    out -= call_mutated_names(stmt.value)
    return out


class ReachingDefinitions(DataflowProblem[Facts]):
    """The reaching-definitions problem for one CFG."""

    direction = "forward"

    def __init__(self, stmts: Dict[int, Stmt], entry_vars: Set[str]) -> None:
        self._stmts = stmts
        self._entry_vars = entry_vars

    def bottom(self) -> Facts:
        return frozenset()

    def boundary(self) -> Facts:
        return frozenset((v, INITIAL) for v in self._entry_vars)

    def join(self, a: Facts, b: Facts) -> Facts:
        return a | b

    def transfer(self, node: int, fact: Facts) -> Facts:
        stmt = self._stmts.get(node)
        if stmt is None:
            return fact
        defs = stmt_defs(stmt)
        if not defs:
            return fact
        strong = _strong_defs(stmt)
        surviving = frozenset(d for d in fact if d[0] not in strong)
        generated = frozenset((v, node) for v in defs)
        return surviving | generated


def reaching_definitions(
    cfg: CFG,
    stmts: Dict[int, Stmt],
    entry_vars: Set[str],
) -> Tuple[Dict[int, Facts], Dict[int, Facts]]:
    """Solve reaching definitions; returns ``(in, out)`` fact maps.

    ``entry_vars`` should contain every variable that may hold a value
    when the block starts (parameters and globals); their definitions
    appear with the synthetic sid :data:`INITIAL`.
    """
    return solve(cfg, ReachingDefinitions(stmts, entry_vars))
