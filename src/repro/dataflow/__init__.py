"""Dataflow analyses over the CFG: reaching definitions, liveness, def-use."""

from repro.dataflow.framework import DataflowProblem, solve
from repro.dataflow.reaching import ReachingDefinitions, reaching_definitions
from repro.dataflow.liveness import live_variables
from repro.dataflow.defuse import DefUseChains, def_use_chains

__all__ = [
    "DataflowProblem",
    "solve",
    "ReachingDefinitions",
    "reaching_definitions",
    "live_variables",
    "DefUseChains",
    "def_use_chains",
]
