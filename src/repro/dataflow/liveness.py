"""Live-variable analysis (backward may)."""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.cfg.graph import CFG
from repro.dataflow.framework import DataflowProblem, solve
from repro.dataflow.reaching import _strong_defs
from repro.lang.ir import Stmt, stmt_uses

Facts = FrozenSet[str]


class _Liveness(DataflowProblem[Facts]):
    direction = "backward"

    def __init__(self, stmts: Dict[int, Stmt], live_out_exit: Set[str]) -> None:
        self._stmts = stmts
        self._live_out_exit = live_out_exit

    def bottom(self) -> Facts:
        return frozenset()

    def boundary(self) -> Facts:
        return frozenset(self._live_out_exit)

    def join(self, a: Facts, b: Facts) -> Facts:
        return a | b

    def transfer(self, node: int, fact: Facts) -> Facts:
        stmt = self._stmts.get(node)
        if stmt is None:
            return fact
        # live-in = uses ∪ (live-out − strong defs); weak updates keep
        # the base live because the old value flows through.
        return frozenset(stmt_uses(stmt)) | (fact - frozenset(_strong_defs(stmt)))


def live_variables(
    cfg: CFG,
    stmts: Dict[int, Stmt],
    live_out_exit: Set[str] = frozenset(),
) -> Tuple[Dict[int, Facts], Dict[int, Facts]]:
    """Solve liveness; returns ``(live_out, live_in)`` per node.

    ``live_out_exit`` lists the variables observable after the block —
    for a packet callback, the module-level state variables.
    """
    return solve(cfg, _Liveness(stmts, set(live_out_exit)))
