"""Def-use chains: the data-dependence edges of the PDG.

For each statement ``s`` and each variable ``v`` it uses, the chain
records every definition site of ``v`` that reaches ``s``.  The paper's
dependency analysis ("the value of an RHS variable in a statement
depends on the preceding statements where that variable is on the LHS",
§2.1) is exactly this relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.cfg.graph import CFG
from repro.dataflow.reaching import INITIAL, reaching_definitions
from repro.lang.ir import Stmt, stmt_uses


@dataclass
class DefUseChains:
    """Data dependences of one analysed block.

    ``deps[sid]`` maps each used variable to the sids of reaching
    definitions (:data:`~repro.dataflow.reaching.INITIAL` marks values
    flowing in from outside the block).
    """

    deps: Dict[int, Dict[str, Set[int]]] = field(default_factory=dict)

    def def_sites(self, sid: int, var: str) -> Set[int]:
        """Definition sites of ``var`` reaching statement ``sid``."""
        return self.deps.get(sid, {}).get(var, set())

    def data_preds(self, sid: int) -> Set[int]:
        """All statements ``sid`` is data dependent on (INITIAL excluded)."""
        out: Set[int] = set()
        for sites in self.deps.get(sid, {}).values():
            out |= sites
        out.discard(INITIAL)
        return out

    def uses_of_def(self, def_sid: int) -> List[Tuple[int, str]]:
        """All ``(use_sid, var)`` pairs this definition reaches (forward view)."""
        out: List[Tuple[int, str]] = []
        for use_sid, per_var in self.deps.items():
            for var, sites in per_var.items():
                if def_sid in sites:
                    out.append((use_sid, var))
        return out


def def_use_chains(
    cfg: CFG,
    stmts: Dict[int, Stmt],
    entry_vars: Set[str],
) -> DefUseChains:
    """Compute def-use chains from reaching definitions."""
    in_facts, _ = reaching_definitions(cfg, stmts, entry_vars)
    chains = DefUseChains()
    for sid, stmt in stmts.items():
        uses = stmt_uses(stmt)
        if not uses:
            continue
        reaching = in_facts.get(sid, frozenset())
        per_var: Dict[str, Set[int]] = {}
        for var, def_sid in reaching:
            if var in uses:
                per_var.setdefault(var, set()).add(def_sid)
        for var in uses:
            per_var.setdefault(var, set())
        chains.deps[sid] = per_var
    return chains
