"""The concrete IR interpreter.

Executes NFPy programs with Python-compatible semantics (the corpus
files also run under CPython; tests cross-check).  Supports:

* whole-program use: ``run_module()`` then ``process_packet(pkt)``;
* flat-block use: ``run_block(block, env)`` for the flattened views the
  analyses operate on;
* tracing for dynamic slicing (:mod:`repro.interp.trace`).

Packet I/O is virtualised: ``recv_packet()`` pops from ``self.inputs``
and ``send_packet(pkt[, port])`` appends a *copy* to ``self.sent`` —
copying matters because NFs keep mutating the packet object they hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.interp.builtins import BUILTINS, METHODS, PKT_INPUT_FUNC, PKT_OUTPUT_FUNC
from repro.interp.trace import Trace, TraceEvent
from repro.interp.values import deep_copy, truthy
from repro.lang.ir import (
    Block,
    EAttr,
    EBin,
    EBool,
    ECall,
    ECmp,
    ECond,
    EConst,
    EDict,
    EList,
    EName,
    ESub,
    ETuple,
    EUn,
    Expr,
    Function,
    LAttr,
    LName,
    LSub,
    LTuple,
    LValue,
    Program,
    SAssign,
    SBreak,
    SContinue,
    SDelete,
    SExpr,
    SIf,
    SPass,
    SReturn,
    SWhile,
    Stmt,
    iter_block,
    stmt_defs,
    stmt_scope_names,
    stmt_uses,
)
from repro.net.packet import Packet


class NFRuntimeError(Exception):
    """Raised for runtime errors in NFPy execution (with source line)."""

    def __init__(self, message: str, line: int = 0) -> None:
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


@dataclass
class Env:
    """A name environment: optional locals over shared globals."""

    globals: Dict[str, Any] = field(default_factory=dict)
    locals: Optional[Dict[str, Any]] = None
    local_names: Set[str] = field(default_factory=set)

    def load(self, name: str, line: int = 0) -> Any:
        if self.locals is not None and name in self.locals:
            return self.locals[name]
        if name in self.globals:
            return self.globals[name]
        raise NFRuntimeError(f"name {name!r} is not defined", line)

    def store(self, name: str, value: Any) -> None:
        if self.locals is not None and name in self.local_names:
            self.locals[name] = value
        else:
            self.globals[name] = value


class Interpreter:
    """Executes IR programs and blocks.

    ``max_steps`` bounds total statement executions, turning accidental
    infinite loops into errors instead of hangs.
    """

    def __init__(
        self,
        program: Optional[Program] = None,
        trace: bool = False,
        max_steps: int = 2_000_000,
        intrinsics: Optional[Dict[str, Callable[..., Any]]] = None,
    ) -> None:
        self.program = program
        self.tracing = trace
        self.trace = Trace()
        self.max_steps = max_steps
        self.steps = 0
        self.globals: Dict[str, Any] = {}
        self.inputs: List[Packet] = []
        self.sent: List[Tuple[Packet, Optional[int]]] = []
        self.intrinsics: Dict[str, Callable[..., Any]] = dict(intrinsics or {})
        self._last_def: Dict[str, int] = {}

    # -- public API ---------------------------------------------------------

    def run_module(self) -> None:
        """Execute module-level assignments (state initialisation).

        Top-level *calls* (main-loop starters like ``LoadBalancer()``)
        are skipped: they exist so the source also runs under CPython,
        but in the analysis harness packets arrive via
        :meth:`process_packet`.
        """
        if self.program is None:
            raise ValueError("no program attached")
        env = Env(globals=self.globals)
        for stmt in self.program.module_body:
            if isinstance(stmt, SExpr) and isinstance(stmt.value, ECall):
                call = stmt.value
                if not call.method and (
                    self.program is not None and call.func in self.program.functions
                ):
                    continue
            self.exec_stmt(stmt, env, None)

    def process_packet(self, pkt: Packet) -> List[Tuple[Packet, Optional[int]]]:
        """Run the entry function on one packet; return packets sent for it."""
        if self.program is None or self.program.entry is None:
            raise ValueError("program has no entry function")
        before = len(self.sent)
        self.call(self.program.entry, [pkt])
        return self.sent[before:]

    def call(self, fname: str, args: Sequence[Any]) -> Any:
        """Call a user function by name."""
        assert self.program is not None
        fn = self.program.functions[fname]
        if len(args) != len(fn.params):
            raise NFRuntimeError(
                f"{fname}() takes {len(fn.params)} args, got {len(args)}", fn.line
            )
        local_names = set(fn.params)
        for stmt in iter_block(fn.body):
            local_names |= stmt_scope_names(stmt)
        local_names -= fn.global_names
        local_names |= set(fn.params)
        env = Env(
            globals=self.globals,
            locals=dict(zip(fn.params, args)),
            local_names=local_names,
        )
        try:
            self.exec_block(fn.body, env, None)
        except _Return as ret:
            return ret.value
        return None

    def run_block(self, block: Block, env: Optional[Env] = None) -> Env:
        """Execute a flat block (e.g. a FlatView) in a single namespace."""
        env = env or Env(globals=self.globals)
        try:
            self.exec_block(block, env, None)
        except _Return:
            pass
        return env

    # -- execution ----------------------------------------------------------

    def exec_block(self, block: Sequence[Stmt], env: Env, ctrl: Optional[int]) -> None:
        for stmt in block:
            self.exec_stmt(stmt, env, ctrl)

    def exec_stmt(self, stmt: Stmt, env: Env, ctrl: Optional[int]) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise NFRuntimeError(
                f"execution exceeded {self.max_steps} steps (infinite loop?)",
                stmt.line,
            )

        if isinstance(stmt, SAssign):
            value = self.eval_expr(stmt.value, env)
            if stmt.aug is not None:
                target = stmt.targets[0]
                old = self._load_lvalue(target, env, stmt.line)
                value = _binop(stmt.aug, old, value, stmt.line)
            self._record(stmt, env, ctrl)
            for target in stmt.targets:
                self._store_lvalue(target, value, env, stmt.line)
            return
        if isinstance(stmt, SExpr):
            self._record(stmt, env, ctrl)
            self.eval_expr(stmt.value, env)
            return
        if isinstance(stmt, SIf):
            outcome = truthy(self.eval_expr(stmt.cond, env))
            my_idx = self._record(stmt, env, ctrl, branch=outcome)
            if outcome:
                self.exec_block(stmt.then, env, my_idx)
            else:
                self.exec_block(stmt.orelse, env, my_idx)
            return
        if isinstance(stmt, SWhile):
            while True:
                outcome = truthy(self.eval_expr(stmt.cond, env))
                my_idx = self._record(stmt, env, ctrl, branch=outcome)
                if not outcome:
                    return
                try:
                    self.exec_block(stmt.body, env, my_idx)
                except _Break:
                    return
                except _Continue:
                    continue
        if isinstance(stmt, SReturn):
            self._record(stmt, env, ctrl)
            value = self.eval_expr(stmt.value, env) if stmt.value is not None else None
            raise _Return(value)
        if isinstance(stmt, SBreak):
            self._record(stmt, env, ctrl)
            raise _Break()
        if isinstance(stmt, SContinue):
            self._record(stmt, env, ctrl)
            raise _Continue()
        if isinstance(stmt, SPass):
            self._record(stmt, env, ctrl)
            return
        if isinstance(stmt, SDelete):
            assert stmt.target is not None
            self._record(stmt, env, ctrl)
            base = env.load(stmt.target.base, stmt.line)
            key = self.eval_expr(stmt.target.index, env)
            try:
                del base[key]
            except KeyError:
                raise NFRuntimeError(f"del: key {key!r} not found", stmt.line) from None
            return
        raise NFRuntimeError(f"cannot execute {type(stmt).__name__}", stmt.line)

    # -- tracing ---------------------------------------------------------------

    def _record(
        self, stmt: Stmt, env: Env, ctrl: Optional[int], branch: Optional[bool] = None
    ) -> Optional[int]:
        if not self.tracing:
            return None
        uses = stmt_uses(stmt)
        use_defs = {var: self._last_def.get(var) for var in uses}
        defs = tuple(sorted(stmt_defs(stmt)))
        index = len(self.trace.events)
        self.trace.append(
            TraceEvent(index=index, sid=stmt.sid, defs=defs, use_defs=use_defs, ctrl=ctrl, branch=branch)
        )
        for var in defs:
            self._last_def[var] = index
        return index

    # -- l-values ---------------------------------------------------------------

    def _load_lvalue(self, target: LValue, env: Env, line: int) -> Any:
        if isinstance(target, LName):
            return env.load(target.id, line)
        if isinstance(target, LSub):
            base = env.load(target.base, line)
            key = self.eval_expr(target.index, env)
            try:
                return base[key]
            except (KeyError, IndexError, TypeError) as exc:
                raise NFRuntimeError(f"subscript failed: {exc}", line) from None
        if isinstance(target, LAttr):
            base = env.load(target.base, line)
            try:
                return getattr(base, target.attr)
            except AttributeError as exc:
                raise NFRuntimeError(str(exc), line) from None
        raise NFRuntimeError("cannot read this assignment target", line)

    def _store_lvalue(self, target: LValue, value: Any, env: Env, line: int) -> None:
        if isinstance(target, LName):
            env.store(target.id, value)
            return
        if isinstance(target, LSub):
            base = env.load(target.base, line)
            key = self.eval_expr(target.index, env)
            try:
                base[key] = value
            except (IndexError, TypeError) as exc:
                raise NFRuntimeError(f"subscript store failed: {exc}", line) from None
            return
        if isinstance(target, LAttr):
            base = env.load(target.base, line)
            try:
                setattr(base, target.attr, value)
            except (AttributeError, TypeError, ValueError) as exc:
                raise NFRuntimeError(str(exc), line) from None
            return
        if isinstance(target, LTuple):
            try:
                items = list(value)
            except TypeError:
                raise NFRuntimeError("cannot unpack non-sequence", line) from None
            if len(items) != len(target.elts):
                raise NFRuntimeError(
                    f"unpack mismatch: {len(target.elts)} targets, {len(items)} values",
                    line,
                )
            for sub, item in zip(target.elts, items):
                self._store_lvalue(sub, item, env, line)
            return
        raise NFRuntimeError("cannot store to this target", line)

    # -- expressions --------------------------------------------------------------

    def eval_expr(self, expr: Expr, env: Env) -> Any:
        if isinstance(expr, EConst):
            return expr.value
        if isinstance(expr, EName):
            return env.load(expr.id)
        if isinstance(expr, ETuple):
            return tuple(self.eval_expr(e, env) for e in expr.elts)
        if isinstance(expr, EList):
            return [self.eval_expr(e, env) for e in expr.elts]
        if isinstance(expr, EDict):
            return {
                self.eval_expr(k, env): self.eval_expr(v, env) for k, v in expr.items
            }
        if isinstance(expr, EBin):
            left = self.eval_expr(expr.left, env)
            right = self.eval_expr(expr.right, env)
            return _binop(expr.op, left, right, 0)
        if isinstance(expr, EUn):
            operand = self.eval_expr(expr.operand, env)
            if expr.op == "-":
                return -operand
            if expr.op == "+":
                return +operand
            if expr.op == "not":
                return not truthy(operand)
            if expr.op == "~":
                return ~operand
            raise NFRuntimeError(f"unknown unary operator {expr.op}")
        if isinstance(expr, ECmp):
            left = self.eval_expr(expr.left, env)
            right = self.eval_expr(expr.right, env)
            return _cmpop(expr.op, left, right)
        if isinstance(expr, EBool):
            if expr.op == "and":
                result: Any = True
                for e in expr.values:
                    result = self.eval_expr(e, env)
                    if not truthy(result):
                        return result
                return result
            result = False
            for e in expr.values:
                result = self.eval_expr(e, env)
                if truthy(result):
                    return result
            return result
        if isinstance(expr, ECall):
            return self._call(expr, env)
        if isinstance(expr, ESub):
            base = self.eval_expr(expr.base, env)
            key = self.eval_expr(expr.index, env)
            try:
                return base[key]
            except (KeyError, IndexError, TypeError) as exc:
                raise NFRuntimeError(f"subscript failed: {exc!r}") from None
        if isinstance(expr, EAttr):
            base = self.eval_expr(expr.base, env)
            try:
                return getattr(base, expr.attr)
            except AttributeError as exc:
                raise NFRuntimeError(str(exc)) from None
        if isinstance(expr, ECond):
            if truthy(self.eval_expr(expr.test, env)):
                return self.eval_expr(expr.body, env)
            return self.eval_expr(expr.orelse, env)
        raise NFRuntimeError(f"cannot evaluate {type(expr).__name__}")

    def _call(self, expr: ECall, env: Env) -> Any:
        name = expr.func
        if expr.method:
            receiver = self.eval_expr(expr.args[0], env)
            args = [self.eval_expr(a, env) for a in expr.args[1:]]
            method = METHODS.get(name)
            if method is None:
                raise NFRuntimeError(f"unknown method {name!r}")
            try:
                return method(receiver, *args)
            except (KeyError, IndexError, ValueError, TypeError) as exc:
                raise NFRuntimeError(f"{name}() failed: {exc}") from None

        args = [self.eval_expr(a, env) for a in expr.args]
        if name == PKT_OUTPUT_FUNC:
            pkt = args[0]
            port = args[1] if len(args) > 1 else None
            self.sent.append((deep_copy(pkt), port))
            return None
        if name == PKT_INPUT_FUNC:
            if not self.inputs:
                raise NFRuntimeError("recv_packet(): input queue is empty")
            return self.inputs.pop(0)
        if name in self.intrinsics:
            return self.intrinsics[name](*args)
        if self.program is not None and name in self.program.functions:
            return self.call(name, args)
        builtin = BUILTINS.get(name)
        if builtin is not None:
            try:
                return builtin(*args)
            except (ValueError, TypeError) as exc:
                raise NFRuntimeError(f"{name}() failed: {exc}") from None
        raise NFRuntimeError(f"unknown function {name!r}")


def _binop(op: str, left: Any, right: Any, line: int) -> Any:
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "//":
            return left // right
        if op == "%":
            return left % right
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "**":
            return left**right
    except (TypeError, ZeroDivisionError, ValueError) as exc:
        raise NFRuntimeError(f"operator {op} failed: {exc}", line) from None
    raise NFRuntimeError(f"unknown operator {op}", line)


def _cmpop(op: str, left: Any, right: Any) -> bool:
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "in":
        return left in right
    if op == "notin":
        return left not in right
    if op == "is":
        return left is right
    if op == "isnot":
        return left is not right
    raise NFRuntimeError(f"unknown comparison {op}")
