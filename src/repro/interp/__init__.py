"""Concrete execution of the IR, with optional tracing.

The interpreter serves three roles:

* it is the *reference semantics* of NFPy — differential tests compare
  the synthesized model against it;
* its traces drive dynamic slicing (paper Fig. 1 highlights a dynamic
  slice);
* it executes the action programs of model table entries inside the
  model simulator.
"""

from repro.interp.interpreter import Interpreter, NFRuntimeError, Env
from repro.interp.trace import Trace, TraceEvent

__all__ = ["Interpreter", "NFRuntimeError", "Env", "Trace", "TraceEvent"]
