"""Execution traces for dynamic slicing.

Each executed statement becomes a :class:`TraceEvent` carrying the
*dynamic* dependences the occurrence had:

* ``use_defs`` — for every variable the statement read, the index of the
  trace event that produced the value (``None`` if it flowed in from the
  initial environment);
* ``ctrl`` — the index of the branch occurrence this statement was
  dynamically control dependent on (the nearest enclosing taken branch);
* ``defs`` — the variables the occurrence (weakly or strongly) defined.

With these links, a dynamic slice is plain backward reachability over
trace events — Agrawal & Horgan's dynamic dependence graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class TraceEvent:
    """One executed statement occurrence."""

    index: int
    sid: int
    defs: Tuple[str, ...]
    use_defs: Dict[str, Optional[int]]
    ctrl: Optional[int]
    branch: Optional[bool] = None  # outcome, for branch statements


@dataclass
class Trace:
    """A complete execution trace."""

    events: List[TraceEvent] = field(default_factory=list)

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def last_occurrence(self, sid: int) -> Optional[TraceEvent]:
        """The latest occurrence of statement ``sid`` (None if never ran)."""
        for event in reversed(self.events):
            if event.sid == sid:
                return event
        return None

    def occurrences(self, sid: int) -> List[TraceEvent]:
        """All occurrences of statement ``sid`` in execution order."""
        return [e for e in self.events if e.sid == sid]

    def executed_sids(self) -> Set[int]:
        """The set of statements that executed at least once."""
        return {e.sid for e in self.events}
