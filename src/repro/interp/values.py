"""Runtime value helpers for the interpreter."""

from __future__ import annotations

from typing import Any

from repro.net.packet import Packet


def deep_copy(value: Any) -> Any:
    """Structural copy of an NFPy runtime value.

    Handles exactly the value universe NFPy programs can build:
    immutables, tuples, lists, dicts and packets.
    """
    if isinstance(value, Packet):
        return value.copy()
    if isinstance(value, list):
        return [deep_copy(v) for v in value]
    if isinstance(value, tuple):
        return tuple(deep_copy(v) for v in value)
    if isinstance(value, dict):
        return {k: deep_copy(v) for k, v in value.items()}
    return value


def values_equal(a: Any, b: Any) -> bool:
    """Structural equality over NFPy values (packets compare by fields)."""
    return a == b


def truthy(value: Any) -> bool:
    """NFPy truthiness (same as Python's)."""
    return bool(value)
