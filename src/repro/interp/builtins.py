"""Builtin functions and method intrinsics available to NFPy programs.

``hash`` deliberately maps to :func:`repro.util.hashing.stable_hash` so
that hash-mode NFs (e.g. a hash load balancer) behave identically across
processes, in the interpreter, the model simulator and symbolic witness
evaluation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.util.hashing import stable_hash


def _nf_hash(value: Any) -> int:
    if isinstance(value, (list, dict)):
        raise TypeError("unhashable NFPy value")
    return stable_hash(_hashable(value))


def _hashable(value: Any) -> Any:
    if isinstance(value, tuple):
        return tuple(_hashable(v) for v in value)
    return value


def _nf_range(*args: int) -> List[int]:
    return list(range(*args))


#: Plain builtin functions: name → callable.
BUILTINS: Dict[str, Callable[..., Any]] = {
    "len": len,
    "hash": _nf_hash,
    "min": min,
    "max": max,
    "abs": abs,
    "int": int,
    "bool": bool,
    "range": _nf_range,
    "tuple": tuple,
    "list": list,
    "sorted": sorted,
    "sum": sum,
}


def _method_append(receiver: list, item: Any) -> None:
    receiver.append(item)


def _method_pop(receiver: Any, *args: Any) -> Any:
    return receiver.pop(*args)


def _method_get(receiver: dict, key: Any, *default: Any) -> Any:
    return receiver.get(key, *default)


def _method_keys(receiver: dict) -> List[Any]:
    return list(receiver.keys())


def _method_values(receiver: dict) -> List[Any]:
    return list(receiver.values())


def _method_clear(receiver: Any) -> None:
    receiver.clear()


def _method_insert(receiver: list, index: int, item: Any) -> None:
    receiver.insert(index, item)


def _method_remove(receiver: list, item: Any) -> None:
    receiver.remove(item)


def _method_index(receiver: Any, item: Any) -> int:
    return receiver.index(item)


def _method_count(receiver: Any, item: Any) -> int:
    return receiver.count(item)


#: Method intrinsics: name → callable taking the receiver first.
METHODS: Dict[str, Callable[..., Any]] = {
    "append": _method_append,
    "pop": _method_pop,
    "get": _method_get,
    "keys": _method_keys,
    "values": _method_values,
    "clear": _method_clear,
    "insert": _method_insert,
    "remove": _method_remove,
    "index": _method_index,
    "count": _method_count,
}

#: Packet I/O intrinsics — recognised by name across the toolchain.
PKT_INPUT_FUNC = "recv_packet"
PKT_OUTPUT_FUNC = "send_packet"
