"""Content-addressed cache keys (BLAKE2 over canonical encodings).

Every artifact in the store is addressed by a digest of *what went into
computing it*: the artifact kind, the input content (NF source text or
an upstream artifact's key), the relevant configuration fingerprint and
the cache schema version.  Two consequences:

- an unchanged input re-derives the same key, so re-synthesis of an
  unchanged NF is a pure lookup;
- *any* change — a source edit, a config knob, a schema bump — derives
  a different key, so stale entries are unreachable rather than
  invalidated.  Old entries age out by garbage collection
  (``repro cache clear``), never by being wrong.

:data:`SCHEMA_VERSION` must be bumped whenever the *meaning* of a
cached artifact changes (pipeline semantics, pickle layout of cached
types, key material).  The package version is mixed in as well, so a
release bump conservatively invalidates everything.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import Any

#: Bump on any semantic change to cached artifacts (see module docstring).
#: 2: SynthesisStats grew the engine cold-path counters (§9).
SCHEMA_VERSION = 2


def _encode(value: Any, out: bytearray) -> None:
    """Append a canonical, type-tagged encoding of ``value`` to ``out``.

    Collisions between values of different types are impossible (every
    branch emits a distinct tag) and container encodings are
    order-canonical (sets/dicts are sorted), so the digest of the
    encoding is a stable fingerprint across processes and platforms.
    """
    if value is None:
        out.append(0x00)
    elif isinstance(value, bool):
        out.append(0x01)
        out.append(1 if value else 0)
    elif isinstance(value, int):
        out.append(0x02)
        out.extend(str(value).encode("ascii"))
        out.append(0x3B)
    elif isinstance(value, float):
        out.append(0x07)
        out.extend(value.hex().encode("ascii"))
        out.append(0x3B)
    elif isinstance(value, str):
        out.append(0x03)
        encoded = value.encode("utf-8")
        out.extend(str(len(encoded)).encode("ascii"))
        out.append(0x3A)
        out.extend(encoded)
    elif isinstance(value, bytes):
        out.append(0x08)
        out.extend(str(len(value)).encode("ascii"))
        out.append(0x3A)
        out.extend(value)
    elif isinstance(value, (tuple, list)):
        out.append(0x04 if isinstance(value, tuple) else 0x09)
        for item in value:
            _encode(item, out)
        out.append(0x3B)
    elif isinstance(value, (set, frozenset)):
        out.append(0x05)
        for item in sorted(value, key=repr):
            _encode(item, out)
        out.append(0x3B)
    elif isinstance(value, dict):
        out.append(0x06)
        for key in sorted(value, key=repr):
            _encode(key, out)
            _encode(value[key], out)
        out.append(0x3B)
    elif is_dataclass(value) and not isinstance(value, type):
        out.append(0x0A)
        _encode(type(value).__name__, out)
        for f in fields(value):
            _encode(f.name, out)
            _encode(getattr(value, f.name), out)
        out.append(0x3B)
    else:
        raise TypeError(f"cache key cannot encode {type(value).__name__}")


def stable_fingerprint(value: Any) -> str:
    """A short hex digest of any canonically-encodable value."""
    h = hashlib.blake2b(digest_size=16)
    buf = bytearray()
    _encode(value, buf)
    h.update(bytes(buf))
    return h.hexdigest()


def artifact_key(kind: str, material: Any) -> str:
    """The content address of one artifact.

    ``kind`` partitions the key space (a ``frontend`` artifact can never
    collide with a ``model`` artifact of the same input); ``material``
    is the canonically-encodable description of everything the artifact
    depends on.  The schema and package versions are always mixed in.
    """
    from repro import __version__

    h = hashlib.blake2b(digest_size=16)
    buf = bytearray()
    _encode((kind, SCHEMA_VERSION, __version__, material), buf)
    h.update(bytes(buf))
    return h.hexdigest()
