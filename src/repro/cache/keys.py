"""Content-addressed cache keys (BLAKE2 over canonical encodings).

Every artifact in the store is addressed by a digest of *what went into
computing it*: the artifact kind, the input content (NF source text or
an upstream artifact's key), the relevant configuration fingerprint and
the cache schema version.  Two consequences:

- an unchanged input re-derives the same key, so re-synthesis of an
  unchanged NF is a pure lookup;
- *any* change — a source edit, a config knob, a schema bump — derives
  a different key, so stale entries are unreachable rather than
  invalidated.  Old entries age out by garbage collection
  (``repro cache clear``), never by being wrong.

:data:`SCHEMA_VERSION` must be bumped whenever the *meaning* of a
cached artifact changes (pipeline semantics, pickle layout of cached
types, key material).  The package version is mixed in as well, so a
release bump conservatively invalidates everything.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import fields, is_dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

#: Bump on any semantic change to cached artifacts (see module docstring).
#: 2: SynthesisStats grew the engine cold-path counters (§9).
#: 3: frontend keys switched to function-level source units (§15), so an
#:    edit to one handler no longer invalidates siblings in the same file.
SCHEMA_VERSION = 3


def _encode(value: Any, out: bytearray) -> None:
    """Append a canonical, type-tagged encoding of ``value`` to ``out``.

    Collisions between values of different types are impossible (every
    branch emits a distinct tag) and container encodings are
    order-canonical (sets/dicts are sorted), so the digest of the
    encoding is a stable fingerprint across processes and platforms.
    """
    if value is None:
        out.append(0x00)
    elif isinstance(value, bool):
        out.append(0x01)
        out.append(1 if value else 0)
    elif isinstance(value, int):
        out.append(0x02)
        out.extend(str(value).encode("ascii"))
        out.append(0x3B)
    elif isinstance(value, float):
        out.append(0x07)
        out.extend(value.hex().encode("ascii"))
        out.append(0x3B)
    elif isinstance(value, str):
        out.append(0x03)
        encoded = value.encode("utf-8")
        out.extend(str(len(encoded)).encode("ascii"))
        out.append(0x3A)
        out.extend(encoded)
    elif isinstance(value, bytes):
        out.append(0x08)
        out.extend(str(len(value)).encode("ascii"))
        out.append(0x3A)
        out.extend(value)
    elif isinstance(value, (tuple, list)):
        out.append(0x04 if isinstance(value, tuple) else 0x09)
        for item in value:
            _encode(item, out)
        out.append(0x3B)
    elif isinstance(value, (set, frozenset)):
        out.append(0x05)
        for item in sorted(value, key=repr):
            _encode(item, out)
        out.append(0x3B)
    elif isinstance(value, dict):
        out.append(0x06)
        for key in sorted(value, key=repr):
            _encode(key, out)
            _encode(value[key], out)
        out.append(0x3B)
    elif is_dataclass(value) and not isinstance(value, type):
        out.append(0x0A)
        _encode(type(value).__name__, out)
        for f in fields(value):
            _encode(f.name, out)
            _encode(getattr(value, f.name), out)
        out.append(0x3B)
    else:
        raise TypeError(f"cache key cannot encode {type(value).__name__}")


def stable_fingerprint(value: Any) -> str:
    """A short hex digest of any canonically-encodable value."""
    h = hashlib.blake2b(digest_size=16)
    buf = bytearray()
    _encode(value, buf)
    h.update(bytes(buf))
    return h.hexdigest()


def artifact_key(kind: str, material: Any) -> str:
    """The content address of one artifact.

    ``kind`` partitions the key space (a ``frontend`` artifact can never
    collide with a ``model`` artifact of the same input); ``material``
    is the canonically-encodable description of everything the artifact
    depends on.  The schema and package versions are always mixed in.
    """
    from repro import __version__

    h = hashlib.blake2b(digest_size=16)
    buf = bytearray()
    _encode((kind, SCHEMA_VERSION, __version__, material), buf)
    h.update(bytes(buf))
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Function-level source units (frontend key material)
# ---------------------------------------------------------------------------
#
# Keying the frontend tier on the raw source text means *any* edit to a
# multi-handler file invalidates every target synthesized from it.  The
# watch loop needs finer grain: split the source into *units* — the
# module body plus each top-level function — and key each target on only
# the units it can transitively reference.  Editing one handler then
# leaves sibling targets' keys unchanged, so they stay pure model-tier
# hits.
#
# The split is conservative by construction.  Whenever precise unit
# extraction is not possible (syntax error, duplicate defs, decorators,
# no resolvable entry), the material degrades to the whole source text —
# exactly the pre-§15 behaviour, never an over-hit.


def _is_main_guard(node: ast.stmt) -> bool:
    # Mirrors repro.lang.lower.is_main_guard: the NFPy parser skips the
    # guard entirely, so its text can never influence an artifact.
    if not isinstance(node, ast.If):
        return False
    test = node.test
    return (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == "__name__"
    )


def _segment(lines: List[str], node: ast.stmt) -> str:
    return "".join(lines[node.lineno - 1 : node.end_lineno])


def _referenced_names(node: ast.AST, candidates: Dict[str, ast.FunctionDef]) -> set:
    refs = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in candidates:
            refs.add(sub.id)
    return refs


def _detect_sniff_callback(
    tree: ast.Module, functions: Dict[str, ast.FunctionDef]
) -> Optional[str]:
    # ``sniff(IFACE, handler)`` registers ``handler`` as the entry (the
    # NFPy "callback" entry shape).  Only an unambiguous single match
    # counts; anything else falls back to all-functions material.
    found = set()
    for sub in ast.walk(tree):
        if not (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "sniff"
        ):
            continue
        for arg in sub.args:
            if isinstance(arg, ast.Name) and arg.id in functions:
                found.add(arg.id)
    return found.pop() if len(found) == 1 else None


@lru_cache(maxsize=128)
def _split_source(
    source: str,
) -> Optional[Tuple[str, Tuple[Tuple[str, str, frozenset], ...], frozenset, Optional[str]]]:
    """Parse ``source`` once, shared by every entry in the same file.

    A multi-handler file is watched as many targets; caching the split
    per *source* (not per ``(source, entry)``) keeps the N-targets poll
    path to one ast parse.  Returns ``(module_text, fn_units,
    module_refs, sniff_entry)`` where each fn unit is ``(name, text,
    referenced_function_names)``, or ``None`` when the source cannot be
    split precisely (syntax error, duplicate defs, decorators).
    """
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError):
        return None
    lines = source.splitlines(keepends=True)
    functions: Dict[str, ast.FunctionDef] = {}
    module_nodes: List[ast.stmt] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            if node.name in functions or node.decorator_list:
                return None
            functions[node.name] = node
        elif _is_main_guard(node):
            continue
        else:
            module_nodes.append(node)
    module_refs: set = set()
    for node in module_nodes:
        module_refs |= _referenced_names(node, functions)
    fn_units = tuple(
        (
            node.name,
            _segment(lines, node),
            frozenset(_referenced_names(node, functions)),
        )
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    )
    module_text = "".join(_segment(lines, node) for node in module_nodes)
    sniff = _detect_sniff_callback(tree, functions)
    return (module_text, fn_units, frozenset(module_refs), sniff)


@lru_cache(maxsize=512)
def source_units(source: str, entry: Optional[str] = None) -> Tuple[Any, ...]:
    """Split ``source`` into the units the target ``entry`` can read.

    Returns a tuple of ``("module", text)`` followed by
    ``("fn", name, text)`` units in source order, restricted to the
    module body plus functions transitively reachable from the entry
    (any by-name reference counts as an edge — NFPy has no indirect
    calls beyond passing a function by name).  When the entry cannot be
    pinned down, every function is included; when the source cannot be
    split at all, the fallback is ``(("source", text),)``.
    """
    split = _split_source(source)
    if split is None:
        return (("source", source),)
    module_text, fn_units, module_refs, sniff = split
    refs = {name: fn_refs for name, _, fn_refs in fn_units}
    root = entry if entry in refs else None
    if root is None and entry is None:
        root = sniff
    if root is None:
        # No precise target (auto-detected loop entries, unknown entry
        # name): every function is potentially live.
        reachable = set(refs)
    else:
        # Seed with the entry plus anything the module body references
        # (init-time calls, callback registrations), then close over
        # by-name references between functions.
        frontier = {root} | set(module_refs)
        reachable = set()
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            frontier |= refs[name]
    units: List[Tuple[Any, ...]] = [("module", module_text)]
    for name, text, _ in fn_units:
        if name in reachable:
            units.append(("fn", name, text))
    return tuple(units)


def frontend_key_material(
    source: str, name: str, entry: Optional[str]
) -> Tuple[Any, ...]:
    """The frontend tier's key material for one synthesis target."""
    return ("units-v1", source_units(source, entry), name, entry)


def changed_units(
    old_source: str, new_source: str, entry: Optional[str] = None
) -> List[str]:
    """Human-readable names of units that differ between two sources.

    Used by the watch daemon to report *which* handlers an edit touched
    (``["fn:lookup", "module"]``).  Compares the full unit split (no
    entry restriction unless given) so the answer is target-independent.
    """
    old = {u[:2] if u[0] == "fn" else (u[0],): u for u in source_units(old_source, entry)}
    new = {u[:2] if u[0] == "fn" else (u[0],): u for u in source_units(new_source, entry)}
    names = []
    for key in sorted(set(old) | set(new), key=repr):
        if old.get(key) != new.get(key):
            names.append(":".join(key))
    return names
