"""The two-tier artifact store: in-memory LRU over an on-disk CAS.

Layout of the disk tier (``REPRO_CACHE_DIR``, default
``~/.cache/repro``)::

    objects/<key[:2]>/<kind>-<key>     content-addressed artifacts
    <name>.blob                        named mutable blobs (solver cache)

Every file is framed as ``MAGIC + blake2b-128(payload) + payload``
with the payload zlib-compressed pickle bytes, so truncation and
corruption are detected on read and degrade to a miss (logged via the
``repro.cache`` logger), never to a wrong artifact.  Writes go through
a same-directory temp file and ``os.replace``, so concurrent writers
need no locks: a reader sees either the old complete file or the new
complete file, and two writers racing on one key write identical
content (the key *is* the content address), so last-writer-wins is
correct.

The memory tier fronts the disk with a bounded LRU of raw pickle
bytes — bytes, not objects, so every ``get`` hands out a fresh
deserialization and callers can freely mutate what they receive
without poisoning the cache.

Determinism invariant (docs/internals.md §8): the store only ever
changes *when* work happens, never *what* is computed.  Any read
failure of any kind is silently a miss and the pipeline recomputes.
"""

from __future__ import annotations

import hashlib
import itertools
import logging
import os
import pickle
import threading
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics

log = logging.getLogger("repro.cache")


def _warn(event: str, msg: str, **fields: Any) -> None:
    """One structured warning (JSON once :func:`repro.obs.log.configure`
    has run; plain-text stdlib logging otherwise)."""
    obs_log.log_event(log, logging.WARNING, event, msg, **fields)

#: File framing: magic + format version byte.
_MAGIC = b"RPAC\x01"
_DIGEST_SIZE = 16
_HEADER_SIZE = len(_MAGIC) + _DIGEST_SIZE

#: Memory-tier defaults.
DEFAULT_MEMORY_ENTRIES = 256
DEFAULT_MEMORY_BYTES = 64 << 20

#: Remote-tier default: a peer-fill must be decisively cheaper than a
#: cold synthesis or it is not worth waiting for.
DEFAULT_PEER_TIMEOUT_S = 2.0

_tmp_counter = itertools.count()


def _frame(payload: bytes) -> bytes:
    digest = hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()
    return _MAGIC + digest + payload


def _unframe(
    raw: bytes, origin: str, event: str = "cache.corrupt"
) -> Optional[bytes]:
    """Verify framing + checksum; None (with a warning) on any damage."""
    if len(raw) < _HEADER_SIZE or not raw.startswith(_MAGIC):
        _warn(
            event,
            f"cache: {origin} is truncated or not a cache file; ignoring",
            path=origin, reason="bad_frame",
        )
        return None
    digest, payload = raw[len(_MAGIC):_HEADER_SIZE], raw[_HEADER_SIZE:]
    if hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest() != digest:
        _warn(
            event,
            f"cache: {origin} failed its checksum; ignoring",
            path=origin, reason="checksum",
        )
        return None
    return payload


def parse_peers(text: Optional[str]) -> Tuple[Tuple[str, int], ...]:
    """``"host:port,host:port"`` → ((host, port), ...); junk is dropped.

    The format of ``REPRO_CACHE_PEERS`` and the serve-tier ``--join``
    flag.  Tolerant by design: a typo'd peer should degrade to "one
    fewer peer", never break the local cache.
    """
    peers = []
    for part in (text or "").split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port_text = part.rpartition(":")
        if not sep:
            continue
        try:
            port = int(port_text)
        except ValueError:
            continue
        if host and 0 < port < 65536:
            peers.append((host, port))
    return tuple(peers)


class ArtifactStore:
    """One cache instance: a memory LRU over an optional disk directory.

    A store with no directory (or ``enabled=False``) is inert: every
    ``get`` misses and every ``put`` is a no-op, so call sites need no
    enabled-checks of their own.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        *,
        enabled: bool = True,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        memory_bytes: int = DEFAULT_MEMORY_BYTES,
        peers: Tuple[Tuple[str, int], ...] = (),
        peer_timeout_s: float = DEFAULT_PEER_TIMEOUT_S,
    ) -> None:
        self.directory: Optional[Path] = Path(directory) if directory else None
        self.enabled = bool(enabled and self.directory is not None)
        self.memory_entries = memory_entries
        self.memory_bytes = memory_bytes
        #: Remote tier: shard peers whose ``GET /cas/<kind>/<key>``
        #: endpoint (docs/internals.md §13) is consulted after a local
        #: miss.  Fetched blobs are checksum-verified here (the peer
        #: serves raw file bytes without looking at them) and filled
        #: into both local tiers; any failure is a logged miss and the
        #: pipeline recomputes locally.
        self.peers = tuple(peers)
        self.peer_timeout_s = peer_timeout_s
        self._mem: "OrderedDict[str, bytes]" = OrderedDict()
        self._mem_bytes = 0
        self._lock = threading.Lock()
        #: Set on the first failed disk write (read-only or unwritable
        #: ``REPRO_CACHE_DIR``): the store degrades to memory-tier-only
        #: writes — one warning, not one per artifact.  Reads still go
        #: to disk: a read-only directory can serve a warm cache.
        self._disk_write_disabled = False
        #: Session counters, mirrored into the ambient metrics registry
        #: under ``cache.<tier>.<event>`` when one is installed.
        self.counters: Dict[str, int] = {}

    # -- counters -----------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        registry = obs_metrics.active()
        if registry.enabled:
            registry.counter(f"cache.{name}").inc(n)

    # -- paths --------------------------------------------------------------

    def _object_path(self, kind: str, key: str) -> Path:
        assert self.directory is not None
        return self.directory / "objects" / key[:2] / f"{kind}-{key}"

    def _blob_path(self, name: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{name}.blob"

    # -- memory tier --------------------------------------------------------

    def _mem_get(self, key: str) -> Optional[bytes]:
        with self._lock:
            data = self._mem.get(key)
            if data is not None:
                self._mem.move_to_end(key)
            return data

    def _mem_put(self, key: str, data: bytes) -> None:
        if len(data) > self.memory_bytes:
            return
        with self._lock:
            old = self._mem.pop(key, None)
            if old is not None:
                self._mem_bytes -= len(old)
            self._mem[key] = data
            self._mem_bytes += len(data)
            while self._mem and (
                len(self._mem) > self.memory_entries
                or self._mem_bytes > self.memory_bytes
            ):
                _, evicted = self._mem.popitem(last=False)
                self._mem_bytes -= len(evicted)

    def _mem_drop(self, key: str) -> None:
        with self._lock:
            old = self._mem.pop(key, None)
            if old is not None:
                self._mem_bytes -= len(old)

    def drop_memory(self) -> None:
        """Empty the memory tier (simulates a fresh process over a warm disk)."""
        with self._lock:
            self._mem.clear()
            self._mem_bytes = 0

    # -- disk tier ----------------------------------------------------------

    def _disk_read(self, path: Path) -> Optional[bytes]:
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        payload = _unframe(raw, str(path))
        if payload is None:
            return None
        try:
            data = zlib.decompress(payload)
        except zlib.error:
            _warn(
                "cache.corrupt",
                f"cache: {path} failed to decompress; ignoring",
                path=str(path), reason="zlib",
            )
            return None
        self._count("disk.bytes_read", len(raw))
        return data

    def _disk_write(self, path: Path, data: bytes) -> None:
        self._disk_write_framed(path, _frame(zlib.compress(data, 1)))

    def _disk_write_framed(self, path: Path, framed: bytes) -> None:
        if self._disk_write_disabled:
            self._count("disk.errors")
            return
        tmp = path.parent / f".tmp-{os.getpid()}-{next(_tmp_counter)}"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(framed)
            os.replace(tmp, path)
            self._count("disk.bytes_written", len(framed))
        except OSError as exc:
            self._count("disk.errors")
            self._disk_write_disabled = True
            _warn(
                "cache.disk_degraded",
                f"cache: could not write {path} ({exc}); disk tier is "
                "read-only or unwritable, continuing memory-only",
                path=str(path), error=str(exc),
            )
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    # -- remote tier (cache peer-fill) --------------------------------------

    def _peer_read(self, kind: str, key: str) -> Optional[bytes]:
        """Fetch one CAS blob from the first peer that has it.

        The peer serves the raw framed file bytes without inspecting
        them; **this side** verifies the checksum, so a truncated or
        bit-flipped blob from a peer is rejected (``cache.peer.corrupt``)
        exactly like local disk damage — a logged miss, then a local
        recompute.  Network errors are ``cache.peer.errors``; a peer
        that simply doesn't have the key is silent.  Returns the
        decompressed pickle bytes or None.
        """
        if not self.peers:
            return None
        from repro.serve.peers import PeerError, fetch_cas_raw

        for host, port in self.peers:
            origin = f"peer {host}:{port} {kind}-{key}"
            try:
                raw = fetch_cas_raw(
                    host, port, kind, key, timeout=self.peer_timeout_s
                )
            except PeerError as exc:
                self._count("peer.errors")
                _warn(
                    "cache.peer.unreachable",
                    f"cache: {origin} fetch failed ({exc}); trying next peer",
                    peer=f"{host}:{port}", kind=kind, key=key, error=str(exc),
                )
                continue
            if raw is None:
                continue
            payload = _unframe(raw, origin, event="cache.peer.corrupt")
            if payload is None:
                self._count("peer.corrupt")
                continue
            try:
                data = zlib.decompress(payload)
            except zlib.error:
                self._count("peer.corrupt")
                _warn(
                    "cache.peer.corrupt",
                    f"cache: {origin} failed to decompress; ignoring",
                    peer=f"{host}:{port}", kind=kind, key=key, reason="zlib",
                )
                continue
            self._count("peer.hits")
            self._count("peer.bytes_read", len(raw))
            # Fill both local tiers verbatim so the next lookup (and any
            # sibling worker sharing this disk dir) is a local hit.
            self._disk_write_framed(self._object_path(kind, key), raw)
            return data
        self._count("peer.misses")
        return None

    # -- public API ---------------------------------------------------------

    def get_object(self, kind: str, key: str) -> Optional[Any]:
        """The cached artifact for ``key``, or None (any failure = miss)."""
        if not self.enabled:
            return None
        data = self._mem_get(key)
        if data is not None:
            self._count("mem.hits")
        else:
            self._count("mem.misses")
            data = self._disk_read(self._object_path(kind, key))
            if data is None:
                self._count("disk.misses")
                data = self._peer_read(kind, key)
                if data is None:
                    self._count(f"kind.{kind}.misses")
                    return None
            else:
                self._count("disk.hits")
            self._mem_put(key, data)
        try:
            obj = pickle.loads(data)
        except Exception as exc:
            _warn(
                "cache.load_failed",
                f"cache: {kind} artifact {key} failed to load ({exc}); ignoring",
                kind=kind, key=key, error=str(exc),
            )
            self._mem_drop(key)
            self._count(f"kind.{kind}.misses")
            return None
        self._count(f"kind.{kind}.hits")
        return obj

    def put_object(self, kind: str, key: str, obj: Any) -> None:
        """Store an artifact under ``key`` (both tiers; failures are logged)."""
        if not self.enabled:
            return
        try:
            data = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            _warn(
                "cache.unpicklable",
                f"cache: {kind} artifact {key} is unpicklable ({exc}); skipping",
                kind=kind, key=key, error=str(exc),
            )
            return
        self._mem_put(key, data)
        self._disk_write(self._object_path(kind, key), data)

    # -- raw framed access (what peers exchange) ----------------------------

    def get_raw(self, kind: str, key: str) -> Optional[bytes]:
        """The framed on-disk bytes of one artifact (served to peers).

        Reads the file verbatim — no checksum pass, no decompress — so
        serving a peer-fill costs one ``read()``.  End-to-end integrity
        is the *fetching* side's checksum verification.  Falls back to
        re-framing the memory tier when the disk copy is missing (e.g.
        an unwritable-disk degrade).
        """
        if not self.enabled:
            return None
        if self.directory is not None:
            try:
                return self._object_path(kind, key).read_bytes()
            except OSError:
                pass
        data = self._mem_get(key)
        if data is None:
            return None
        return _frame(zlib.compress(data, 1))

    def put_raw(self, kind: str, key: str, framed: bytes) -> bool:
        """Store framed bytes pushed by a peer (checksum-verified first).

        The write-side mirror of :meth:`_peer_read`: used by replica
        warm-up (``PUT /cas/...``).  Returns False (and counts
        ``peer.corrupt``) without storing anything if the frame fails
        verification — a peer can never inject damage into this store.
        """
        if not self.enabled:
            return False
        payload = _unframe(
            framed, f"peer push {kind}-{key}", event="cache.peer.corrupt"
        )
        if payload is None:
            self._count("peer.corrupt")
            return False
        try:
            data = zlib.decompress(payload)
        except zlib.error:
            self._count("peer.corrupt")
            return False
        self._mem_put(key, data)
        self._disk_write_framed(self._object_path(kind, key), framed)
        return True

    def list_objects(
        self, kinds: Optional[Tuple[str, ...]] = None, limit: int = 1024
    ) -> "list[Tuple[str, str]]":
        """Up to ``limit`` ``(kind, key)`` pairs from the disk tier.

        The shard-side model registry that replica warm-up pulls
        (``GET /registry``): newest artifacts first, so a bounded warm-up
        copies the entries most likely to be hot.
        """
        if not self.enabled or self.directory is None:
            return []
        objects = self.directory / "objects"
        if not objects.is_dir():
            return []
        found: "list[Tuple[float, str, str]]" = []
        for path in objects.rglob("*"):
            if not path.is_file() or path.name.startswith(".tmp-"):
                continue
            kind, sep, key = path.name.rpartition("-")
            if not sep:
                continue
            if kinds is not None and kind not in kinds:
                continue
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            found.append((mtime, kind, key))
        found.sort(reverse=True)
        return [(kind, key) for _, kind, key in found[:limit]]

    def load_blob(self, name: str) -> Optional[Any]:
        """A named mutable blob (e.g. the solver cache), or None."""
        if not self.enabled:
            return None
        data = self._disk_read(self._blob_path(name))
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except Exception as exc:
            _warn(
                "cache.load_failed",
                f"cache: blob {name} failed to load ({exc}); ignoring",
                blob=name, error=str(exc),
            )
            return None

    def save_blob(self, name: str, obj: Any) -> None:
        if not self.enabled:
            return
        try:
            data = pickle.dumps(obj, pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            _warn(
                "cache.unpicklable",
                f"cache: blob {name} is unpicklable ({exc}); skipping",
                blob=name, error=str(exc),
            )
            return
        self._disk_write(self._blob_path(name), data)

    # -- maintenance --------------------------------------------------------

    def clear_disk(self) -> int:
        """Remove every artifact and blob; returns the number removed."""
        self.drop_memory()
        if self.directory is None:
            return 0
        removed = 0
        objects = self.directory / "objects"
        if objects.is_dir():
            for path in sorted(objects.rglob("*")):
                if path.is_file():
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
        for path in self.directory.glob("*.blob"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def disk_stats(self) -> Dict[str, Any]:
        """Entry counts and byte totals per artifact kind (plus blobs)."""
        kinds: Dict[str, Dict[str, int]] = {}
        blobs: Dict[str, int] = {}
        total = 0
        if self.directory is not None:
            objects = self.directory / "objects"
            if objects.is_dir():
                for path in objects.rglob("*"):
                    if not path.is_file() or path.name.startswith(".tmp-"):
                        continue
                    kind = path.name.rsplit("-", 1)[0]
                    entry = kinds.setdefault(kind, {"count": 0, "bytes": 0})
                    size = path.stat().st_size
                    entry["count"] += 1
                    entry["bytes"] += size
                    total += size
            for path in self.directory.glob("*.blob"):
                size = path.stat().st_size
                blobs[path.stem] = size
                total += size
        return {
            "directory": str(self.directory) if self.directory else None,
            "enabled": self.enabled,
            "disk_write_disabled": self._disk_write_disabled,
            "kinds": {k: kinds[k] for k in sorted(kinds)},
            "blobs": blobs,
            "total_bytes": total,
            "memory_entries": len(self._mem),
            "memory_bytes": self._mem_bytes,
            "session_counters": dict(sorted(self.counters.items())),
        }


# ---------------------------------------------------------------------------
# Global store (env-configured, override-able)
# ---------------------------------------------------------------------------

_UNSET = object()
_override_dir: Any = _UNSET
_override_enabled: Optional[bool] = None
_override_peers: Any = _UNSET
_store: Optional[ArtifactStore] = None
_store_key: Optional[Tuple[Optional[str], bool, Tuple]] = None
_config_lock = threading.Lock()

_FALSY = {"0", "off", "false", "no"}


def default_directory() -> str:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro")


def _resolved_config() -> Tuple[Optional[str], bool, Tuple[Tuple[str, int], ...]]:
    if _override_enabled is not None:
        enabled = _override_enabled
    else:
        enabled = os.environ.get("REPRO_CACHE", "1").strip().lower() not in _FALSY
    if _override_dir is not _UNSET:
        directory = str(_override_dir) if _override_dir else None
    else:
        directory = os.environ.get("REPRO_CACHE_DIR") or default_directory()
    if _override_peers is not _UNSET:
        peers = tuple(_override_peers or ())
    else:
        peers = parse_peers(os.environ.get("REPRO_CACHE_PEERS"))
    return directory, enabled, peers


def get_store() -> ArtifactStore:
    """The ambient artifact store, rebuilt whenever its config changes.

    Configuration is re-resolved on every call (env vars plus any
    :func:`configure` overrides), so tests and CLI flags that flip
    ``REPRO_CACHE``/``REPRO_CACHE_DIR``/``REPRO_CACHE_PEERS`` take
    effect immediately.
    """
    global _store, _store_key
    key = _resolved_config()
    with _config_lock:
        if _store is None or key != _store_key:
            _store = ArtifactStore(key[0], enabled=key[1], peers=key[2])
            _store_key = key
        return _store


def store_token() -> Optional[str]:
    """Identity of the active persistent store: its directory, or None.

    Consumers that attach their own persistence to the store (the
    solver's constraint cache) compare tokens to notice
    reconfiguration; None means "no persistence right now".
    """
    directory, enabled, _peers = _resolved_config()
    return directory if enabled else None


def configure(
    directory: Any = _UNSET,
    enabled: Optional[bool] = None,
    peers: Any = _UNSET,
) -> None:
    """Override (or reset) the ambient store configuration.

    ``configure()`` with no arguments drops all overrides, returning
    control to the environment.  ``directory=None`` disables the disk
    tier outright; ``enabled=False`` disables the store; ``peers`` is a
    sequence of ``(host, port)`` shard peers for the remote tier
    (``peers=()`` explicitly disables peer-fill).
    """
    global _override_dir, _override_enabled, _override_peers, _store, _store_key
    with _config_lock:
        if directory is _UNSET and enabled is None and peers is _UNSET:
            _override_dir = _UNSET
            _override_enabled = None
            _override_peers = _UNSET
        else:
            if directory is not _UNSET:
                _override_dir = directory
            if enabled is not None:
                _override_enabled = enabled
            if peers is not _UNSET:
                _override_peers = tuple(peers or ())
        _store = None
        _store_key = None
