"""Persistent content-addressed artifact cache (``repro.cache``).

A two-tier store — in-memory LRU over an on-disk content-addressed
directory — that makes re-synthesis of an unchanged NF near-instant
across *processes*, the way ccache makes unchanged compilation free:

- the synthesis pipeline memoizes its phases (frontend IR, PDG +
  slices, the final model) as artifacts keyed by BLAKE2 digests of
  ``(kind, input content, config fingerprint, schema version)`` —
  see :mod:`repro.nfactor.algorithm`;
- the solver's constraint cache persists through the same store
  (load-on-first-miss, write-behind flush) — see
  :mod:`repro.symbolic.solver`;
- ``repro batch`` workers share one cache directory; atomic
  rename-based writes make concurrent writers safe without locks.

Knobs: the ``REPRO_CACHE_DIR`` env var (default ``~/.cache/repro``),
``REPRO_CACHE=off`` / the CLI ``--no-cache`` flag, and programmatic
:func:`configure` / :func:`override`.

The non-negotiable invariant: cached and uncached runs produce
byte-identical serialized models, and an unreadable, corrupt or stale
entry is silently a miss.  The cache changes *when* work happens,
never *what* is computed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.cache.keys import (
    SCHEMA_VERSION,
    artifact_key,
    changed_units,
    frontend_key_material,
    source_units,
    stable_fingerprint,
)
from repro.cache.store import (
    ArtifactStore,
    configure,
    default_directory,
    get_store,
    parse_peers,
    store_token,
)
from repro.cache import store as _store_mod

__all__ = [
    "SCHEMA_VERSION",
    "ArtifactStore",
    "artifact_key",
    "changed_units",
    "configure",
    "default_directory",
    "frontend_key_material",
    "get_store",
    "is_enabled",
    "override",
    "parse_peers",
    "source_units",
    "stable_fingerprint",
    "store_token",
]


def is_enabled() -> bool:
    """Whether the ambient store currently has a live disk tier."""
    return get_store().enabled


@contextmanager
def override(
    directory: Any = _store_mod._UNSET,
    enabled: Optional[bool] = None,
    peers: Any = _store_mod._UNSET,
) -> Iterator[None]:
    """Temporarily reconfigure the ambient store (restores on exit).

    Used by the CLI ``--no-cache`` flag (``override(enabled=False)``)
    and by tests/benchmarks that pin a private cache directory.
    """
    prev_dir = _store_mod._override_dir
    prev_enabled = _store_mod._override_enabled
    prev_peers = _store_mod._override_peers
    configure(directory=directory, enabled=enabled, peers=peers)
    try:
        yield
    finally:
        with _store_mod._config_lock:
            _store_mod._override_dir = prev_dir
            _store_mod._override_enabled = prev_enabled
            _store_mod._override_peers = prev_peers
            _store_mod._store = None
            _store_mod._store_key = None
