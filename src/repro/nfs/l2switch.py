"""A MAC-learning L2 switch.

The classic stateful L2 forwarding function: learn the source MAC →
ingress-port binding from every frame, forward to the learned port of
the destination MAC, flood unknown destinations and broadcasts.  The
model exposes a different *kind* of state match than the L3/L4 corpus
NFs: the lookup key and the rewrite are both L2, and the forward action
carries an output *port* rather than a header rewrite.
"""

from __future__ import annotations

from repro.nfs.registry import NFSpec, register

BROADCAST_INT = (1 << 48) - 1

SOURCE = '''"""MAC-learning layer-2 switch (NFPy)."""

# Configurations
BROADCAST = 281474976710655
FLOOD_PORT = 255
N_PORTS = 8

# Output-impacting states
mac_table = {}

# Log states
learned_stat = 0
moved_stat = 0
flooded_stat = 0
forwarded_stat = 0
filtered_stat = 0


def switch_handler(pkt):
    global learned_stat, moved_stat, flooded_stat, forwarded_stat, filtered_stat
    # learn / refresh the source binding
    if pkt.eth_src != BROADCAST:
        if pkt.eth_src not in mac_table:
            mac_table[pkt.eth_src] = pkt.in_port
            learned_stat += 1
        elif mac_table[pkt.eth_src] != pkt.in_port:
            # station moved to another port
            mac_table[pkt.eth_src] = pkt.in_port
            moved_stat += 1
    # forward
    if pkt.eth_dst == BROADCAST:
        flooded_stat += 1
        send_packet(pkt, FLOOD_PORT)
        return
    if pkt.eth_dst in mac_table:
        out_port = mac_table[pkt.eth_dst]
        if out_port == pkt.in_port:
            # destination is on the ingress segment: filter
            filtered_stat += 1
            return
        forwarded_stat += 1
        send_packet(pkt, out_port)
        return
    flooded_stat += 1
    send_packet(pkt, FLOOD_PORT)


def Switch():
    sniff("eth0", switch_handler)


if __name__ == "__main__":
    Switch()
'''


@register("l2switch")
def build() -> NFSpec:
    """The MAC-learning switch spec."""
    return NFSpec(
        name="l2switch",
        source=SOURCE,
        description="MAC-learning L2 switch: learn, forward, flood, filter",
        interesting={
            "eth_src": [1, 2, 3, BROADCAST_INT],
            "eth_dst": [1, 2, 3, BROADCAST_INT],
            "in_port": [0, 1, 2, 3],
        },
    )
