"""A passive traffic monitor: forwards everything, counts by class.

The simplest corpus NF — its synthesized model should collapse to
"match anything → forward unchanged" with only logVar updates pruned,
which makes it a good regression anchor and the neutral element for
service-chain composition tests.
"""

from __future__ import annotations

from repro.nfs.registry import NFSpec, register

SOURCE = '''"""Passive traffic monitor (NFPy)."""

# Configurations
WEB_PORT = 80
TLS_PORT = 443

# Log states
total_pkts = 0
total_bytes = 0
web_pkts = 0
tls_pkts = 0
udp_pkts = 0
other_pkts = 0


def monitor_handler(pkt):
    global total_pkts, total_bytes, web_pkts, tls_pkts, udp_pkts, other_pkts
    total_pkts += 1
    total_bytes += pkt.length
    if pkt.proto == 6:
        if pkt.dport == WEB_PORT or pkt.sport == WEB_PORT:
            web_pkts += 1
        elif pkt.dport == TLS_PORT or pkt.sport == TLS_PORT:
            tls_pkts += 1
        else:
            other_pkts += 1
    elif pkt.proto == 17:
        udp_pkts += 1
    else:
        other_pkts += 1
    send_packet(pkt)


def Monitor():
    sniff("eth0", monitor_handler)


if __name__ == "__main__":
    Monitor()
'''


@register("monitor")
def build() -> NFSpec:
    """The passive monitor spec."""
    return NFSpec(
        name="monitor",
        source=SOURCE,
        description="Passive monitor: count and forward everything",
        interesting={"dport": [80, 443, 53], "proto": [6, 17, 1]},
    )
