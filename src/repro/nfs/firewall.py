"""A stateful TCP firewall with an ACL and connection tracking.

Policy: connections may only be *initiated* from the trusted side
(``in_port == 0``); the ACL additionally blocks listed remote prefixes
and ports.  The connection table walks an explicit TCP handshake FSM
(the same state numbering as :class:`repro.net.tcp.TcpState`), so the
synthesized model exposes per-connection state matches — the behaviour
class the paper's §3.2 "hidden states" discussion is about, here
written out in the NF source itself.
"""

from __future__ import annotations

from repro.nfs.registry import NFSpec, register

BLOCKED_NET_INT = 198 * 2**24 + 51 * 2**8 + 100 * 2**16  # unused helper

SOURCE = '''"""Stateful TCP firewall (NFPy)."""

# Constants: TCP states (subset of RFC 793)
ST_SYN_SENT = 2
ST_SYN_RCVD = 3
ST_ESTABLISHED = 4
ST_FIN_WAIT = 5

# Constants: TCP flags
F_FIN = 1
F_SYN = 2
F_RST = 4
F_ACK = 16

# Configurations
TRUSTED_PORT = 0
BLOCKED_PORTS = [23, 135, 445]
BLOCKED_NET = 3325256704
BLOCKED_MASK = 4294901760
STRICT_MODE = 1

# Output-impacting states
conns = {}

# Log states
allowed_stat = 0
blocked_acl = 0
blocked_state = 0
rst_stat = 0


def conn_key(pkt):
    # direction-independent connection key
    a = (pkt.ip_src, pkt.sport)
    b = (pkt.ip_dst, pkt.dport)
    if a <= b:
        return (a, b)
    return (b, a)


def acl_rejects(pkt):
    if (pkt.ip_dst & BLOCKED_MASK) == BLOCKED_NET:
        return 1
    if (pkt.ip_src & BLOCKED_MASK) == BLOCKED_NET:
        return 1
    if pkt.dport in BLOCKED_PORTS:
        return 1
    return 0


def fw_handler(pkt):
    global allowed_stat, blocked_acl, blocked_state, rst_stat
    if pkt.proto != 6:
        # only TCP is tracked; in strict mode everything else drops
        if STRICT_MODE == 1:
            blocked_state += 1
            return
        allowed_stat += 1
        send_packet(pkt)
        return
    if acl_rejects(pkt) == 1:
        blocked_acl += 1
        return
    key = conn_key(pkt)
    if (pkt.tcp_flags & F_RST) != 0:
        # RST tears the connection down and is forwarded if known
        if key in conns:
            del conns[key]
            rst_stat += 1
            send_packet(pkt)
            return
        blocked_state += 1
        return
    if key not in conns:
        # only the trusted side may initiate
        syn_only = (pkt.tcp_flags & F_SYN) != 0 and (pkt.tcp_flags & F_ACK) == 0
        if syn_only and pkt.in_port == TRUSTED_PORT:
            conns[key] = ST_SYN_SENT
            allowed_stat += 1
            send_packet(pkt)
            return
        blocked_state += 1
        return
    st = conns[key]
    if st == ST_SYN_SENT:
        if (pkt.tcp_flags & F_SYN) != 0 and (pkt.tcp_flags & F_ACK) != 0:
            conns[key] = ST_SYN_RCVD
            allowed_stat += 1
            send_packet(pkt)
            return
        blocked_state += 1
        return
    if st == ST_SYN_RCVD:
        if (pkt.tcp_flags & F_ACK) != 0:
            conns[key] = ST_ESTABLISHED
            allowed_stat += 1
            send_packet(pkt)
            return
        blocked_state += 1
        return
    if st == ST_ESTABLISHED:
        if (pkt.tcp_flags & F_FIN) != 0:
            conns[key] = ST_FIN_WAIT
        allowed_stat += 1
        send_packet(pkt)
        return
    if st == ST_FIN_WAIT:
        if (pkt.tcp_flags & F_ACK) != 0:
            del conns[key]
        allowed_stat += 1
        send_packet(pkt)
        return
    blocked_state += 1
    return


def Firewall():
    sniff("eth0", fw_handler)


if __name__ == "__main__":
    Firewall()
'''


@register("firewall")
def build() -> NFSpec:
    """The stateful firewall spec."""
    return NFSpec(
        name="firewall",
        source=SOURCE,
        description="Stateful TCP firewall: ACL + handshake connection tracking",
        interesting={
            "tcp_flags": [2, 18, 16, 17, 4, 0, 1],
            "in_port": [0, 1],
            "dport": [80, 23, 445, 443],
            "proto": [6, 17],
        },
    )
