"""A transparent response cache (HTTP-proxy style).

Requests to the web port are looked up by ``(server, content
fingerprint)``: on a hit, the cache answers the client directly with a
synthesized response (swapping the packet's endpoints) — the upstream
never sees the request; on a miss, the request is forwarded and the
pending-request table remembers who asked, so the eventual response can
be cached on its way back.

This NF exercises model extraction corners the rest of the corpus does
not: a *locally generated* packet (the cache hit answers with rewritten
source **and** destination) and state values flowing between two dicts
(``pending`` keys feed ``cache`` writes).
"""

from __future__ import annotations

from repro.nfs.registry import NFSpec, register

SOURCE = '''"""Transparent response cache (NFPy)."""

# Configurations
WEB_PORT = 80
CACHE_MAX = 4096

# Output-impacting states
cache = {}
pending = {}

# Log states
hit_stat = 0
miss_stat = 0
fill_stat = 0
bypass_stat = 0
evict_refused = 0


def cache_handler(pkt):
    global hit_stat, miss_stat, fill_stat, bypass_stat, evict_refused
    if pkt.proto != 6:
        bypass_stat += 1
        send_packet(pkt)
        return
    if pkt.dport == WEB_PORT:
        # client -> server request
        key = (pkt.ip_dst, pkt.payload_sig)
        if key in cache:
            # answer locally: swap endpoints, body from the cache
            hit_stat += 1
            resp_sig = cache[key]
            client_ip = pkt.ip_src
            client_port = pkt.sport
            pkt.ip_src = pkt.ip_dst
            pkt.sport = pkt.dport
            pkt.ip_dst = client_ip
            pkt.dport = client_port
            pkt.payload_sig = resp_sig
            send_packet(pkt)
            return
        miss_stat += 1
        pending[(pkt.ip_src, pkt.sport)] = key
        send_packet(pkt)
        return
    if pkt.sport == WEB_PORT:
        # server -> client response
        rkey = (pkt.ip_dst, pkt.dport)
        if rkey in pending:
            key = pending[rkey]
            if len(cache) < CACHE_MAX:
                cache[key] = pkt.payload_sig
                fill_stat += 1
            else:
                evict_refused += 1
            del pending[rkey]
        send_packet(pkt)
        return
    bypass_stat += 1
    send_packet(pkt)


def Cache():
    sniff("eth0", cache_handler)


if __name__ == "__main__":
    Cache()
'''


@register("proxycache")
def build() -> NFSpec:
    """The response-cache spec."""
    return NFSpec(
        name="proxycache",
        source=SOURCE,
        description="Transparent response cache: hit answers locally, miss fills",
        interesting={
            "dport": [80, 443, 1234],
            "sport": [80, 443, 40000],
            "payload_sig": [7, 8, 9],
            "ip_dst": [1000, 2000],
            "ip_src": [500, 600],
        },
    )
