"""The NF corpus: network functions written in NFPy, under analysis.

These play the role of the paper's study subjects (snort 1.0 and
balance 3.5, §5) plus the running example (the Fig. 1 load balancer)
and additional NFs used by the applications of §4.  Every corpus file
is genuine, runnable NF logic — the interpreter executes it as the
reference implementation in differential tests.
"""

from repro.nfs.registry import NFSpec, get_nf, all_nfs, nf_names

__all__ = ["NFSpec", "get_nf", "all_nfs", "nf_names"]
