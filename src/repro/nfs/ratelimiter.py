"""A per-source packet-budget rate limiter (windowed token bucket).

Real rate limiters meter against wall-clock time; an analyzable NF
cannot depend on a clock, so this one meters per *window of packets* —
every ``WINDOW`` processed packets the budgets reset.  That keeps the
same model structure (per-source counter state gating forwarding,
periodic reset) while staying within the paper's bounded-analysis
discipline; the window rollover is driven by a logVar-like global
counter that *is* output-impacting here, exercising an interesting
corner of the classifier.
"""

from __future__ import annotations

from repro.nfs.registry import NFSpec, register

SOURCE = '''"""Per-source rate limiter with packet-count windows (NFPy)."""

# Configurations
BUDGET = 8
WINDOW = 64
EXEMPT_NET = 167772160
EXEMPT_MASK = 4278190080

# Output-impacting states
buckets = {}
window_left = 64

# Log states
passed_stat = 0
limited_stat = 0
exempt_stat = 0
resets_stat = 0


def rl_handler(pkt):
    global window_left, passed_stat, limited_stat, exempt_stat, resets_stat
    window_left -= 1
    if window_left <= 0:
        # new metering window: all budgets refill
        buckets.clear()
        window_left = WINDOW
        resets_stat += 1
    if (pkt.ip_src & EXEMPT_MASK) == EXEMPT_NET:
        # management traffic is never limited
        exempt_stat += 1
        send_packet(pkt)
        return
    if pkt.ip_src not in buckets:
        buckets[pkt.ip_src] = 0
    used = buckets[pkt.ip_src]
    if used >= BUDGET:
        limited_stat += 1
        return
    buckets[pkt.ip_src] = used + 1
    passed_stat += 1
    send_packet(pkt)


def RateLimiter():
    sniff("eth0", rl_handler)


if __name__ == "__main__":
    RateLimiter()
'''


@register("ratelimiter")
def build() -> NFSpec:
    """The rate limiter spec."""
    return NFSpec(
        name="ratelimiter",
        source=SOURCE,
        description="Per-source rate limiter with packet-count windows",
        interesting={
            "ip_src": [167772161, 5, 6, 7],
        },
    )
