"""The paper's running example: a layer-4 load balancer (Figure 1).

A faithful NFPy port of the scapy-based LB in the paper: inbound
packets to the virtual service are NATed to a backend chosen round-robin
or by hash; reverse traffic of known connections is NATed back; reverse
traffic of unknown connections is dropped ("no initial outbound traffic
is allowed").  Variable names follow the paper so the Table-1
categorisation can be checked literally.
"""

from __future__ import annotations

from repro.nfs.registry import NFSpec, register

#: 3.3.3.3 / 1.1.1.1 / 2.2.2.2 as integers.
LB_IP_INT = 50529027
SERVER1_INT = 16843009
SERVER2_INT = 33686018

SOURCE = '''"""Layer-4 load balancer (paper Fig. 1, NFPy port)."""

# Constants
ROUND_ROBIN = 1
HASH_MODE = 2
MTU = 1500

# Configurations
mode = ROUND_ROBIN
LB_IP = 50529027
LB_PORT = 80
servers = [(16843009, 80), (33686018, 80)]

# Output-impacting states
f2b_nat = {}
b2f_nat = {}
rr_idx = 0
cur_port = 10000

# Log states
pass_stat = 0
drop_stat = 0
frag_stat = 0


def pkt_callback(pkt):
    global drop_stat, pass_stat, frag_stat, rr_idx, cur_port
    si, di = pkt.ip_src, pkt.ip_dst
    sp, dp = pkt.sport, pkt.dport
    if dp == LB_PORT:
        # pkt from client to server
        cs_ftpl = (si, sp, di, dp)
        sc_ftpl = (di, dp, si, sp)
        if cs_ftpl not in f2b_nat:
            # new connection: pick a backend
            if mode == ROUND_ROBIN:
                server = servers[rr_idx]
                rr_idx = (rr_idx + 1) % len(servers)
            else:
                # hash to a backend server
                server = servers[hash(si) % len(servers)]
            n_port = cur_port
            cur_port += 1
            cs_btpl = (LB_IP, n_port, server[0], server[1])
            sc_btpl = (server[0], server[1], LB_IP, n_port)
            f2b_nat[cs_ftpl] = cs_btpl
            b2f_nat[sc_btpl] = sc_ftpl
            nat_tpl = cs_btpl
        else:
            # existing connection
            nat_tpl = f2b_nat[cs_ftpl]
    else:
        # pkt from server to client
        sc_btpl = (si, sp, di, dp)
        if sc_btpl in b2f_nat:
            nat_tpl = b2f_nat[sc_btpl]
        else:
            # no initial outbound traffic is allowed
            drop_stat += 1
            return
    pass_stat += 1
    if pkt.length > MTU:
        frag_stat += 1
    pkt.ip_src = nat_tpl[0]
    pkt.sport = nat_tpl[1]
    pkt.ip_dst = nat_tpl[2]
    pkt.dport = nat_tpl[3]
    send_packet(pkt)


def LoadBalancer():
    sniff("eth0", pkt_callback)


if __name__ == "__main__":
    LoadBalancer()
'''


@register("loadbalancer")
def build() -> NFSpec:
    """The Fig.-1 load balancer spec."""
    return NFSpec(
        name="loadbalancer",
        source=SOURCE,
        description="Layer-4 load balancer, NFPy port of paper Fig. 1",
        interesting={
            "dport": [80, 10000, 10001, 10002, 443],
            "sport": [80, 10000, 10001, 33000],
            "ip_dst": [LB_IP_INT, SERVER1_INT, SERVER2_INT],
            "ip_src": [SERVER1_INT, SERVER2_INT, 167772161, 167772162],
        },
    )
