"""*balance* — the socket-level layer-4 load balancer of paper Fig. 3.

Unlike the Fig.-1 LB, *balance* is written against the TCP socket API:
it accepts client connections, picks a backend (round-robin or source
hash, per the paper's Fig. 6 output), forks, connects to the backend and
relays data.  All per-connection TCP state is *hidden* in the OS (§3.2)
— this program is the input to :mod:`repro.nfactor.tcp_unfold`, which
rewrites it into the explicit packet-level single loop of Fig. 5 before
NFactor analyses it.

The socket intrinsics (``tcp_listen``/``tcp_accept``/``tcp_connect``/
``sock_recv``/``sock_send``/``os_fork``) mirror the C calls in Fig. 3.
"""

from __future__ import annotations

from repro.nfs.registry import NFSpec, register

SOURCE = '''"""balance 3.5-style TCP proxy load balancer (paper Fig. 3, NFPy)."""

# Constants
ROUND_ROBIN = 1
HASH_MODE = 2

# Configurations
mode = ROUND_ROBIN
LISTEN_PORT = 8080
servers = [(16843009, 80), (33686018, 80), (50529027, 8080)]

# Output-impacting states
rr_idx = 0

# Log states
accept_stat = 0
relay_stat = 0
bytes_small = 0
bytes_large = 0
priv_clients = 0


def MainLoop():
    global rr_idx, accept_stat, relay_stat
    global bytes_small, bytes_large, priv_clients
    sockfd = tcp_listen(LISTEN_PORT)
    while True:
        clt, clt_ip, clt_port = tcp_accept(LISTEN_PORT)
        accept_stat += 1
        if clt_port < 1024:
            priv_clients += 1
        if mode == ROUND_ROBIN:
            server = servers[rr_idx]
            rr_idx = (rr_idx + 1) % len(servers)
        else:
            server = servers[hash(clt_ip) % len(servers)]
        if os_fork() == 0:
            srv = tcp_connect(server)
            while True:
                buf = sock_recv(clt)
                relay_stat += 1
                if buf > 65536:
                    bytes_large += 1
                else:
                    bytes_small += 1
                sock_send(srv, buf)


if __name__ == "__main__":
    MainLoop()
'''


@register("balance")
def build() -> NFSpec:
    """The Fig.-3 socket-level balance spec."""
    return NFSpec(
        name="balance",
        source=SOURCE,
        description="Socket-level TCP proxy LB (paper Fig. 3); needs TCP unfolding",
        socket_level=True,
        interesting={
            "dport": [8080, 80, 443],
            "sport": [8080, 31337, 40000],
            "tcp_flags": [2, 16, 18, 17, 1, 0],
            "proto": [6],
        },
    )
