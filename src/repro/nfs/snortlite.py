"""snortlite — a signature IDS/IPS in the style of snort 1.0 (paper §5).

The paper's first study subject is snort 1.0 (2,678 LoC), whose
packet/state slice is two orders of magnitude smaller than the program
because most of the code base — decoding telemetry, statistics,
logging, alert management, self-monitoring — does not influence
forwarding.  snortlite reproduces that *structure*:

* a **decoder** with many per-field anomaly checks.  Most only bump
  telemetry counters (pruned by slicing); a few hard-drop malformed
  packets (kept: they gate the output);
* **preprocessors**: a port-scan tracker that can block offenders
  (stateful, output-impacting) and a TCP stream tracker feeding
  "established-only" rules;
* a first-match **rule engine** over an active rule list (each rule is
  a single conjunctive condition, so paths grow linearly in rules —
  the bounded-branching style the paper's §3.2 prescribes);
* an extensive **telemetry/logging subsystem** — histograms, per-class
  counters, alert ring buffer, severity accounting — all logVars that
  the slice drops;
* **alert-only analytics** — an HTTP inspector, flow tagging (log N
  packets after an alert) and alert thresholding/suppression.  These
  are *stateful* (tag tables, suppression counters) yet never gate
  forwarding, so the slice removes them entirely: the paper's point
  that even deep stateful machinery is pruned when it is not
  output-impacting;
* inline **IPS actions**: alert (forward + log), drop, pass.

Rule tuple layout (all integers)::

    (action, proto, src_net, src_mask, sp_lo, sp_hi,
     dst_net, dst_mask, dp_lo, dp_hi, flags_mask, flags_val,
     content_sig, established_only, severity, rule_id)
"""

from __future__ import annotations

from repro.nfs.registry import NFSpec, register

SOURCE = '''"""snortlite: signature IDS/IPS (NFPy)."""

# ---------------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------------
ACT_ALERT = 1
ACT_DROP = 2
ACT_PASS = 3

PROTO_ANY = 0
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

F_FIN = 1
F_SYN = 2
F_RST = 4
F_PSH = 8
F_ACK = 16

SEV_LOW = 1
SEV_MED = 2
SEV_HIGH = 3

DECODE_OK = 0
DECODE_BAD_ETHERTYPE = 1
DECODE_BAD_LENGTH = 2
DECODE_BAD_PROTO = 3

# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------
HOME_NET = 167772160
HOME_MASK = 4278190080
EXT_ANY = 0
MASK_ANY = 0

PORTSCAN_THRESHOLD = 16
PORTSCAN_BLOCK = 1
MAX_ALERTS = 128
MIN_LENGTH = 20
MAX_LENGTH = 65535

# Active rule set (the shipped default enables a focused set; the full
# signature archive below is loaded but disabled, as in a stock deploy).
RULES = [
    (2, 6, 0, 0, 0, 65535, 167772160, 4278190080, 23, 23, 0, 0, 0, 0, 3, 1001),
    (2, 6, 0, 0, 0, 65535, 167772160, 4278190080, 445, 445, 0, 0, 0, 0, 3, 1002),
    (1, 6, 0, 0, 0, 65535, 167772160, 4278190080, 80, 80, 0, 0, 3405691582, 1, 2, 1003),
    (1, 6, 0, 0, 0, 65535, 0, 0, 0, 65535, 3, 3, 0, 0, 2, 1004),
    (2, 17, 0, 0, 0, 65535, 167772160, 4278190080, 161, 161, 0, 0, 0, 0, 2, 1005),
    (1, 1, 0, 0, 0, 65535, 167772160, 4278190080, 0, 65535, 0, 0, 0, 0, 1, 1006),
    (3, 6, 167772160, 4278190080, 0, 65535, 0, 0, 22, 22, 0, 0, 0, 0, 0, 1007),
]

ARCHIVED_RULES = [
    (1, 6, 0, 0, 0, 65535, 0, 0, 21, 21, 0, 0, 1397706306, 0, 2, 2001),
    (1, 6, 0, 0, 0, 65535, 0, 0, 25, 25, 0, 0, 1212501072, 0, 1, 2002),
    (1, 6, 0, 0, 0, 65535, 0, 0, 110, 110, 0, 0, 1430340419, 0, 1, 2003),
]

HTTP_PORTS = [80, 8080, 8000]
TAG_PACKETS = 8
ALERT_THRESHOLD = 3
SUPPRESS_AFTER = 10

# ---------------------------------------------------------------------------
# Output-impacting state
# ---------------------------------------------------------------------------
scan_tracker = {}
blocked_hosts = {}
streams = {}

# ---------------------------------------------------------------------------
# Alert-only analytics state (stateful but never gates forwarding)
# ---------------------------------------------------------------------------
tagged_flows = {}
alert_counts = {}
suppressed = {}

# ---------------------------------------------------------------------------
# Log / telemetry state (pruned by slicing)
# ---------------------------------------------------------------------------
total_pkts = 0
total_bytes = 0
decode_errors = 0
ethertype_errors = 0
length_errors = 0
proto_other = 0
ttl_low = 0
ttl_mid = 0
ttl_high = 0
len_tiny = 0
len_small = 0
len_medium = 0
len_large = 0
len_jumbo = 0
tcp_pkts = 0
udp_pkts = 0
icmp_pkts = 0
syn_seen = 0
fin_seen = 0
rst_seen = 0
null_scan_seen = 0
xmas_seen = 0
frag_suspect = 0
alert_count = 0
alert_drops = 0
alerts = []
sev_low_count = 0
sev_med_count = 0
sev_high_count = 0
pass_count = 0
drop_count = 0
scan_flagged = 0
stream_new = 0
stream_established = 0
stream_closed = 0
http_requests = 0
http_responses = 0
http_suspicious = 0
http_oversized_uri = 0
tagged_logged = 0
tags_started = 0
tags_expired = 0
alerts_suppressed = 0


def classify_ttl(pkt):
    global ttl_low, ttl_mid, ttl_high
    if pkt.ttl < 32:
        ttl_low += 1
    elif pkt.ttl < 128:
        ttl_mid += 1
    else:
        ttl_high += 1
    return 0


def classify_length(pkt):
    global len_tiny, len_small, len_medium, len_large, len_jumbo
    if pkt.length < 64:
        len_tiny += 1
    elif pkt.length < 256:
        len_small += 1
    elif pkt.length < 1024:
        len_medium += 1
    elif pkt.length <= 1500:
        len_large += 1
    else:
        len_jumbo += 1
    return 0


def account_flags(pkt):
    global syn_seen, fin_seen, rst_seen, null_scan_seen, xmas_seen
    if (pkt.tcp_flags & F_SYN) != 0:
        syn_seen += 1
    if (pkt.tcp_flags & F_FIN) != 0:
        fin_seen += 1
    if (pkt.tcp_flags & F_RST) != 0:
        rst_seen += 1
    if pkt.tcp_flags == 0:
        null_scan_seen += 1
    if (pkt.tcp_flags & F_FIN) != 0 and (pkt.tcp_flags & F_PSH) != 0:
        xmas_seen += 1
    return 0


def decode(pkt):
    global decode_errors, ethertype_errors, length_errors, proto_other
    global tcp_pkts, udp_pkts, icmp_pkts, frag_suspect
    if pkt.eth_type != 2048:
        ethertype_errors += 1
        decode_errors += 1
        return DECODE_BAD_ETHERTYPE
    if pkt.length < MIN_LENGTH:
        length_errors += 1
        decode_errors += 1
        return DECODE_BAD_LENGTH
    if pkt.length > MAX_LENGTH:
        length_errors += 1
        decode_errors += 1
        return DECODE_BAD_LENGTH
    if pkt.proto == PROTO_TCP:
        tcp_pkts += 1
    elif pkt.proto == PROTO_UDP:
        udp_pkts += 1
    elif pkt.proto == PROTO_ICMP:
        icmp_pkts += 1
    else:
        proto_other += 1
        return DECODE_BAD_PROTO
    if pkt.payload_len > pkt.length:
        frag_suspect += 1
    return DECODE_OK


def track_stream(pkt):
    """TCP stream tracker: 0 = none, 1 = half-open, 2 = established.

    Written in the bounded-branching style the paper prescribes for
    analyzable NFs: one stateful lookup, then a short decision ladder.
    """
    global stream_new, stream_established, stream_closed
    if pkt.proto != PROTO_TCP:
        return 0
    key = (pkt.ip_src, pkt.sport, pkt.ip_dst, pkt.dport)
    syn_only = (pkt.tcp_flags & F_SYN) != 0 and (pkt.tcp_flags & F_ACK) == 0
    if key not in streams:
        if syn_only:
            streams[key] = 1
            stream_new += 1
            return 1
        return 0
    st = streams[key]
    if (pkt.tcp_flags & F_RST) != 0:
        del streams[key]
        stream_closed += 1
        return 0
    if st == 1 and (pkt.tcp_flags & F_ACK) != 0:
        streams[key] = 2
        stream_established += 1
        return 2
    return st


def portscan_check(pkt):
    """Count SYN probes per source; block offenders over the threshold."""
    global scan_flagged
    if pkt.proto != PROTO_TCP:
        return 0
    if pkt.ip_src in blocked_hosts:
        return 1
    syn_only = (pkt.tcp_flags & F_SYN) != 0 and (pkt.tcp_flags & F_ACK) == 0
    if not syn_only:
        return 0
    if pkt.ip_src not in scan_tracker:
        scan_tracker[pkt.ip_src] = 1
        return 0
    scan_tracker[pkt.ip_src] = scan_tracker[pkt.ip_src] + 1
    if scan_tracker[pkt.ip_src] > PORTSCAN_THRESHOLD and PORTSCAN_BLOCK == 1:
        blocked_hosts[pkt.ip_src] = 1
        scan_flagged += 1
        return 1
    return 0


def rule_matches(r, pkt, stream_state):
    """One rule, one conjunctive check (bounded-branching style)."""
    ok = (
        (r[1] == PROTO_ANY or r[1] == pkt.proto)
        and (r[3] == MASK_ANY or (pkt.ip_src & r[3]) == r[2])
        and r[4] <= pkt.sport
        and pkt.sport <= r[5]
        and (r[7] == MASK_ANY or (pkt.ip_dst & r[7]) == r[6])
        and r[8] <= pkt.dport
        and pkt.dport <= r[9]
        and (r[10] == 0 or (pkt.tcp_flags & r[10]) == r[11])
        and (r[12] == 0 or r[12] == pkt.payload_sig)
        and (r[13] == 0 or stream_state == 2)
    )
    if ok:
        return 1
    return 0


def match_rules(pkt, stream_state):
    """First matching rule index, or -1."""
    matched = -1
    i = 0
    while i < len(RULES):
        r = RULES[i]
        if rule_matches(r, pkt, stream_state) == 1:
            matched = i
            break
        i += 1
    return matched


def http_inspect(pkt):
    """Alert-only HTTP analytics: never influences the verdict."""
    global http_requests, http_responses, http_suspicious, http_oversized_uri
    if pkt.proto != PROTO_TCP:
        return 0
    if pkt.dport in HTTP_PORTS:
        http_requests += 1
        if pkt.payload_len > 2048:
            http_oversized_uri += 1
        if (pkt.payload_sig & 255) == 37:
            # percent-encoded prefix heuristic
            http_suspicious += 1
        return 1
    if pkt.sport in HTTP_PORTS:
        http_responses += 1
        return 2
    return 0


def tag_flow(pkt):
    """Start logging the next TAG_PACKETS packets of this flow."""
    global tags_started
    key = (pkt.ip_src, pkt.sport, pkt.ip_dst, pkt.dport)
    tagged_flows[key] = TAG_PACKETS
    tags_started += 1
    return 0


def tag_account(pkt):
    """Decrement an active tag; drop it from the table when spent."""
    global tagged_logged, tags_expired
    key = (pkt.ip_src, pkt.sport, pkt.ip_dst, pkt.dport)
    if key not in tagged_flows:
        return 0
    left = tagged_flows[key]
    tagged_logged += 1
    if left <= 1:
        del tagged_flows[key]
        tags_expired += 1
        return 0
    tagged_flows[key] = left - 1
    return left - 1


def threshold_allows(rule_id):
    """Rate-limit noisy signatures (log-side suppression)."""
    global alerts_suppressed
    if rule_id in suppressed:
        alerts_suppressed += 1
        return 0
    if rule_id not in alert_counts:
        alert_counts[rule_id] = 0
    alert_counts[rule_id] = alert_counts[rule_id] + 1
    if alert_counts[rule_id] > SUPPRESS_AFTER:
        suppressed[rule_id] = 1
        alerts_suppressed += 1
        return 0
    return 1


def emit_alert(rule_id, severity, pkt):
    global alert_count, alert_drops, sev_low_count, sev_med_count, sev_high_count
    if threshold_allows(rule_id) == 0:
        return 0
    tag_flow(pkt)
    alert_count += 1
    if severity == SEV_LOW:
        sev_low_count += 1
    elif severity == SEV_MED:
        sev_med_count += 1
    else:
        sev_high_count += 1
    if len(alerts) >= MAX_ALERTS:
        alert_drops += 1
        return 0
    alerts.append((rule_id, severity, pkt.ip_src, pkt.ip_dst, pkt.dport))
    return 1


def snort_handler(pkt):
    global total_pkts, total_bytes, pass_count, drop_count
    total_pkts += 1
    total_bytes += pkt.length
    code = decode(pkt)
    if code != DECODE_OK:
        # malformed traffic is not forwarded
        return
    classify_ttl(pkt)
    classify_length(pkt)
    if pkt.proto == PROTO_TCP:
        account_flags(pkt)
    http_inspect(pkt)
    tag_account(pkt)
    stream_state = track_stream(pkt)
    if portscan_check(pkt) == 1:
        drop_count += 1
        return
    idx = match_rules(pkt, stream_state)
    if idx >= 0:
        r = RULES[idx]
        action = r[0]
        if action == ACT_DROP:
            emit_alert(r[15], r[14], pkt)
            drop_count += 1
            return
        if action == ACT_ALERT:
            emit_alert(r[15], r[14], pkt)
            pass_count += 1
            send_packet(pkt)
            return
        # ACT_PASS: explicitly whitelisted
        pass_count += 1
        send_packet(pkt)
        return
    pass_count += 1
    send_packet(pkt)


def Snort():
    sniff("eth0", snort_handler)


if __name__ == "__main__":
    Snort()
'''


@register("snortlite")
def build() -> NFSpec:
    """The snortlite IDS/IPS spec."""
    return NFSpec(
        name="snortlite",
        source=SOURCE,
        description="Signature IDS/IPS in the structure of snort 1.0",
        interesting={
            "dport": [23, 445, 80, 22, 161, 443, 8080],
            "proto": [6, 17, 1],
            "tcp_flags": [2, 18, 16, 3, 0, 9],
            "ip_dst": [167772161, 167772260, 3232235777],
            "ip_src": [167772161, 3232235777],
            "eth_type": [2048, 2054],
            "length": [10, 64, 300, 1500, 9000],
            "payload_sig": [3405691582, 1397706306, 7],
        },
    )
