"""A dynamic NAPT (network address & port translation) gateway.

Classic middlebox semantics: traffic from the internal prefix going out
is source-NATed to the external address with a freshly allocated port;
reply traffic to an allocated port is rewritten back; unsolicited
inbound traffic is dropped.  TTL is decremented like a router hop and
expired packets are dropped (an output-impacting *check* but a logVar
*counter*, exercising the oisVar/logVar split).
"""

from __future__ import annotations

from repro.nfs.registry import NFSpec, register

EXT_IP_INT = 203 * 2**24 + 113 * 2**8 + 1  # 203.0.113.1
INT_NET_INT = 10 * 2**24  # 10.0.0.0/8

SOURCE = '''"""Dynamic NAPT gateway (NFPy)."""

# Configurations
EXT_IP = 3405803777
INT_NET = 167772160
INT_MASK = 4278190080
NAT_PORT_BASE = 20000
NAT_PORT_MAX = 60000
TTL_MIN = 1

# Output-impacting states
out_map = {}
in_map = {}
next_port = 20000

# Log states
translated_out = 0
translated_in = 0
dropped_unsolicited = 0
dropped_ttl = 0
dropped_pool = 0


def nat_handler(pkt):
    global next_port, translated_out, translated_in
    global dropped_unsolicited, dropped_ttl, dropped_pool
    if pkt.ttl <= TTL_MIN:
        # router hop would expire the packet
        dropped_ttl += 1
        return
    src_internal = (pkt.ip_src & INT_MASK) == INT_NET
    if src_internal:
        key = (pkt.ip_src, pkt.sport, pkt.proto)
        if key not in out_map:
            if next_port >= NAT_PORT_MAX:
                # port pool exhausted
                dropped_pool += 1
                return
            ext_port = next_port
            next_port += 1
            out_map[key] = ext_port
            in_map[(ext_port, pkt.proto)] = (pkt.ip_src, pkt.sport)
            mapped = ext_port
        else:
            mapped = out_map[key]
        pkt.ip_src = EXT_IP
        pkt.sport = mapped
        pkt.ttl = pkt.ttl - 1
        translated_out += 1
        send_packet(pkt)
    else:
        rkey = (pkt.dport, pkt.proto)
        if pkt.ip_dst == EXT_IP and rkey in in_map:
            orig = in_map[rkey]
            pkt.ip_dst = orig[0]
            pkt.dport = orig[1]
            pkt.ttl = pkt.ttl - 1
            translated_in += 1
            send_packet(pkt)
        else:
            # unsolicited inbound
            dropped_unsolicited += 1
            return


def Nat():
    sniff("eth0", nat_handler)


if __name__ == "__main__":
    Nat()
'''


@register("nat")
def build() -> NFSpec:
    """The NAPT gateway spec."""
    return NFSpec(
        name="nat",
        source=SOURCE,
        description="Dynamic NAPT gateway with port allocation and reverse map",
        interesting={
            "ip_src": [INT_NET_INT + 5, INT_NET_INT + 99, EXT_IP_INT, 3232235777],
            "ip_dst": [EXT_IP_INT, INT_NET_INT + 5, 3232235777],
            "dport": [20000, 20001, 80, 443],
            "ttl": [0, 1, 2, 64],
        },
    )
