"""Registry of corpus NFs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass(frozen=True)
class NFSpec:
    """One corpus network function.

    ``interesting`` feeds the traffic generator values that actually hit
    the NF's configuration (service ports, virtual IPs, backends), so
    random workloads exercise the stateful paths.
    """

    name: str
    source: str
    description: str
    entry: Optional[str] = None
    interesting: Dict[str, Sequence[int]] = field(default_factory=dict)
    socket_level: bool = False


_REGISTRY: Dict[str, Callable[[], NFSpec]] = {}


def register(name: str):
    """Decorator: register a zero-arg NFSpec factory under ``name``."""

    def inner(factory: Callable[[], NFSpec]):
        _REGISTRY[name] = factory
        return factory

    return inner


def get_nf(name: str) -> NFSpec:
    """Fetch one NF spec by name."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise KeyError(f"unknown NF {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[name]()


def nf_names() -> List[str]:
    """All registered NF names."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def all_nfs() -> List[NFSpec]:
    """All registered NF specs."""
    return [get_nf(name) for name in nf_names()]


def _ensure_loaded() -> None:
    # Import corpus modules for their registration side effects.
    from repro.nfs import (  # noqa: F401
        balance,
        firewall,
        l2switch,
        loadbalancer,
        monitor,
        nat,
        proxycache,
        ratelimiter,
        snortlite,
    )
