"""Deterministic hashing helpers.

Python's built-in ``hash`` is salted per process for strings, which would
make analysis runs and differential tests non-reproducible.  The NFPy
``hash`` intrinsic and every internal consumer use :func:`stable_hash`
instead, a process-independent FNV-1a over a canonical encoding.
"""

from __future__ import annotations

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a(data: bytes) -> int:
    """Return the 64-bit FNV-1a hash of ``data``."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def _encode(value: object, out: bytearray) -> None:
    """Append a canonical, type-tagged encoding of ``value`` to ``out``."""
    if value is None:
        out.append(0x00)
    elif isinstance(value, bool):
        out.append(0x01)
        out.append(1 if value else 0)
    elif isinstance(value, int):
        out.append(0x02)
        out.extend(str(value).encode("ascii"))
        out.append(0x3B)
    elif isinstance(value, str):
        out.append(0x03)
        out.extend(value.encode("utf-8"))
        out.append(0x3B)
    elif isinstance(value, tuple):
        out.append(0x04)
        for item in value:
            _encode(item, out)
        out.append(0x3B)
    elif isinstance(value, frozenset):
        out.append(0x05)
        for item in sorted(value, key=repr):
            _encode(item, out)
        out.append(0x3B)
    else:
        raise TypeError(f"stable_hash cannot encode {type(value).__name__}")


def stable_hash(value: object) -> int:
    """Deterministic 64-bit hash of ``None``/bool/int/str/tuple values.

    Unlike :func:`hash` this is stable across processes and Python
    versions, so NF programs that hash flow tuples (e.g. a hash-mode load
    balancer) behave identically in the interpreter, the model simulator
    and the symbolic witness checker.
    """
    buf = bytearray()
    _encode(value, buf)
    return fnv1a(bytes(buf))
