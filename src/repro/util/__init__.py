"""Small shared utilities: deterministic hashing, stable RNG, timers."""

from repro.util.hashing import fnv1a, stable_hash
from repro.util.timer import Stopwatch

__all__ = ["fnv1a", "stable_hash", "Stopwatch"]
