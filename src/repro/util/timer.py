"""Wall-clock stopwatch used by the benchmark harness."""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """A simple context-manager stopwatch.

    >>> with Stopwatch() as sw:
    ...     _ = sum(range(10))
    >>> sw.elapsed >= 0.0
    True

    ``elapsed`` gives a live reading while the context is still open,
    and ``split()`` returns lap times (seconds since the previous split,
    or since the start for the first one):

    >>> with Stopwatch() as sw:
    ...     live = sw.elapsed
    ...     lap1 = sw.split()
    ...     lap2 = sw.split()
    >>> 0.0 <= live <= lap1
    True
    >>> lap2 >= 0.0
    True
    >>> sw.elapsed >= lap1 + lap2
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed = 0.0
        self._last_split: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self._last_split = self._start
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self._elapsed = time.perf_counter() - self._start
        self._start = None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds: live while running, final after exit."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

    def split(self) -> float:
        """Lap time: seconds since the previous ``split()`` (or start).

        Only meaningful while the stopwatch is running.
        """
        if self._start is None or self._last_split is None:
            raise RuntimeError("split() on a stopwatch that is not running")
        now = time.perf_counter()
        lap = now - self._last_split
        self._last_split = now
        return lap

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed * 1000.0
