"""Wall-clock stopwatch used by the benchmark harness."""

from __future__ import annotations

import time


class Stopwatch:
    """A simple context-manager stopwatch.

    >>> with Stopwatch() as sw:
    ...     _ = sum(range(10))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed * 1000.0
