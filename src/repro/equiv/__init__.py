"""Model/program equivalence checking (paper §5, "Accuracy")."""

from repro.equiv.differential import DifferentialReport, differential_test
from repro.equiv.paths import PathSetReport, compare_path_sets

__all__ = [
    "DifferentialReport",
    "differential_test",
    "PathSetReport",
    "compare_path_sets",
]
