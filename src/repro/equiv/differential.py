"""Random differential testing: model vs. original program.

Paper §5: "we generate random inputs (i.e., packets) to both NFactor
model and the original program, and test whether they output the same
result.  We repeat the experiments for 1000 times for the 2 NFs
respectively, and the outputs in each experiment are the same."

Both sides run *stateful* and in lockstep over the same packet
sequence, so divergence in state handling shows up as an output
mismatch on some later packet even if the immediate outputs agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.net.generator import TrafficGenerator, WorkloadSpec
from repro.net.packet import Packet
from repro.nfactor.algorithm import SynthesisResult


@dataclass
class Mismatch:
    """One diverging packet."""

    index: int
    packet: Packet
    reference: List[Tuple[Packet, Optional[int]]]
    model: List[Tuple[Packet, Optional[int]]]


@dataclass
class DifferentialReport:
    """Outcome of one differential-testing run."""

    nf_name: str
    n_packets: int = 0
    n_forwarded_ref: int = 0
    n_forwarded_model: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """True when every packet produced identical outputs."""
        return not self.mismatches

    def summary(self) -> str:
        status = "IDENTICAL" if self.identical else f"{len(self.mismatches)} MISMATCHES"
        return (
            f"{self.nf_name}: {self.n_packets} packets, "
            f"ref fwd {self.n_forwarded_ref} / model fwd {self.n_forwarded_model} "
            f"-> {status}"
        )


def differential_test(
    result: SynthesisResult,
    n_packets: int = 1000,
    seed: int = 7,
    spec: Optional[WorkloadSpec] = None,
    interesting: Optional[dict] = None,
    max_mismatches: int = 16,
    compiled: bool = False,
) -> DifferentialReport:
    """Run the paper's random-input accuracy experiment.

    ``result`` is a completed synthesis; the reference interpreter and
    the model simulator are created fresh (each with the NF's initial
    state) and fed the same generated workload.  ``compiled=True``
    runs the model side through :mod:`repro.model.compile` instead of
    the interpreted simulator.
    """
    workload = spec or WorkloadSpec(
        n_packets=n_packets, seed=seed, interesting=interesting or {}
    )
    generator = TrafficGenerator(workload)
    reference = result.make_reference()
    simulator = (
        result.make_compiled_simulator() if compiled else result.make_simulator()
    )

    report = DifferentialReport(nf_name=result.model.name)
    for index, pkt in enumerate(generator.packets()):
        ref_out = reference.process_packet(pkt.copy())
        model_out = simulator.process(pkt.copy())
        report.n_packets += 1
        report.n_forwarded_ref += len(ref_out)
        report.n_forwarded_model += len(model_out)
        if ref_out != model_out and len(report.mismatches) < max_mismatches:
            report.mismatches.append(
                Mismatch(index=index, packet=pkt, reference=ref_out, model=model_out)
            )
    return report
