"""Path-set equivalence: original program vs. sliced program.

Paper §5: "To test whether NFactor outputs a logically equivalent
forwarding model with the original program, we use symbolic execution
to exercise all possible execution paths on both sides.  We have
compared and confirmed that the two sets of paths are the same."

The original program's paths are strictly finer than the slice's: every
log-counter branch splits a path without changing forwarding.  The
comparison therefore *projects* each original path condition onto the
constraint universe of the sliced run — keeping exactly the constraints
whose canonical form appears in some sliced path (branch conditions of
sliced statements are syntactically identical on both sides, so
canonical matching is exact) — merges original paths with identical
projected signature, and then demands a bijection between merged
signatures and sliced-path signatures: same condition, same forwarding
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.symbolic.expr import canon
from repro.symbolic.state import PathResult

Signature = Tuple[FrozenSet[str], Tuple[str, ...]]


@dataclass
class PathSetReport:
    """Outcome of one path-set comparison."""

    n_original: int = 0
    n_sliced: int = 0
    n_merged: int = 0
    only_in_original: List[Signature] = field(default_factory=list)
    only_in_sliced: List[Signature] = field(default_factory=list)
    behaviour_conflicts: List[Signature] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        """True when both sides induce the same behaviour partition."""
        return (
            not self.only_in_original
            and not self.only_in_sliced
            and not self.behaviour_conflicts
        )

    def summary(self) -> str:
        status = "EQUAL" if self.equivalent else "DIFFERENT"
        return (
            f"paths: original {self.n_original} -> merged {self.n_merged}, "
            f"sliced {self.n_sliced} -> {status}"
        )


def _behaviour(path: PathResult) -> Tuple[str, ...]:
    """Canonical forwarding behaviour of a path (drop = empty tuple)."""
    out: List[str] = []
    for fields, port in path.sent:
        rendered = ",".join(
            f"{name}={canon(value)}" for name, value in sorted(fields.items())
        )
        out.append(f"send({rendered})@{port}")
    return tuple(out)


def _projected_condition(
    path: PathResult, universe: Set[str]
) -> FrozenSet[str]:
    """Keep the constraints whose canonical form the slice also uses."""
    kept: Set[str] = set()
    for c in path.constraints:
        key = canon(c)
        if key in universe:
            kept.add(key)
    return frozenset(kept)


def compare_path_sets(
    original: Sequence[PathResult],
    sliced: Sequence[PathResult],
) -> PathSetReport:
    """Compare the path sets of the original and the sliced program."""
    report = PathSetReport(
        n_original=sum(1 for p in original if p.status == "done"),
        n_sliced=sum(1 for p in sliced if p.status == "done"),
    )

    universe: Set[str] = set()
    for path in sliced:
        if path.status != "done":
            continue
        for c in path.constraints:
            universe.add(canon(c))

    sliced_sigs: Dict[FrozenSet[str], Tuple[str, ...]] = {}
    for path in sliced:
        if path.status != "done":
            continue
        sliced_sigs[frozenset(canon(c) for c in path.constraints)] = _behaviour(path)

    merged: Dict[FrozenSet[str], Set[Tuple[str, ...]]] = {}
    for path in original:
        if path.status != "done":
            continue
        cond = _projected_condition(path, universe)
        merged.setdefault(cond, set()).add(_behaviour(path))
    report.n_merged = len(merged)

    for cond, behaviours in merged.items():
        if len(behaviours) > 1:
            report.behaviour_conflicts.append((cond, tuple(sorted(b for bs in behaviours for b in bs))))
            continue
        behaviour = next(iter(behaviours))
        if cond not in sliced_sigs:
            report.only_in_original.append((cond, behaviour))
        elif sliced_sigs[cond] != behaviour:
            report.behaviour_conflicts.append((cond, behaviour))
    for cond, behaviour in sliced_sigs.items():
        if cond not in merged:
            report.only_in_sliced.append((cond, behaviour))
    return report
