"""IPv4 and MAC address conversions.

Packets carry addresses as plain integers so that the symbolic executor
can reason about them with integer constraints; these helpers convert to
and from the familiar dotted/colon notations at the API boundary.
"""

from __future__ import annotations

MAX_IPV4 = (1 << 32) - 1
MAX_MAC = (1 << 48) - 1
MAX_PORT = (1 << 16) - 1


def ip_to_int(dotted: str) -> int:
    """Convert ``"1.2.3.4"`` to its 32-bit integer value.

    >>> ip_to_int("0.0.0.1")
    1
    >>> ip_to_int("255.255.255.255") == MAX_IPV4
    True
    """
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad notation.

    >>> int_to_ip(ip_to_int("10.0.42.7"))
    '10.0.42.7'
    """
    if not 0 <= value <= MAX_IPV4:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_int(colon: str) -> int:
    """Convert ``"aa:bb:cc:dd:ee:ff"`` to its 48-bit integer value."""
    parts = colon.split(":")
    if len(parts) != 6:
        raise ValueError(f"malformed MAC address: {colon!r}")
    value = 0
    for part in parts:
        byte = int(part, 16)
        if not 0 <= byte <= 255:
            raise ValueError(f"byte out of range in {colon!r}")
        value = (value << 8) | byte
    return value


def int_to_mac(value: int) -> str:
    """Convert a 48-bit integer to colon-hex notation."""
    if not 0 <= value <= MAX_MAC:
        raise ValueError(f"MAC integer out of range: {value}")
    return ":".join(f"{(value >> shift) & 0xFF:02x}" for shift in (40, 32, 24, 16, 8, 0))


def valid_port(value: int) -> bool:
    """Return True if ``value`` is a legal L4 port number."""
    return 0 <= value <= MAX_PORT
