"""Concrete service-chain execution.

The composition application (:mod:`repro.apps.compose`) reasons about
NF orders *statically* from models; this module provides the concrete
counterpart: wire NF instances — reference interpreters or model
simulators, freely mixed — into a pipeline and push packets through,
observing what each hop does.  It closes the loop on composition
decisions: the order the analyzer recommends can be *executed* and
compared against the rejected orders on real workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.net.packet import Packet


class PacketProcessor(Protocol):
    """Anything that maps a packet to zero or more output packets."""

    def __call__(self, pkt: Packet) -> List[Tuple[Packet, Optional[int]]]: ...


@dataclass
class HopRecord:
    """What one NF did to the packets that reached it.

    A hop downstream of a flooding NF receives several packets;
    ``packets_in`` records them all.  ``packet_in`` stays as an alias
    for the first (the common single-packet case).
    """

    nf: str
    packets_in: List[Packet]
    packets_out: List[Packet]

    @property
    def packet_in(self) -> Optional[Packet]:
        return self.packets_in[0] if self.packets_in else None

    @property
    def dropped(self) -> bool:
        return not self.packets_out


@dataclass
class ChainTrace:
    """The journey of one input packet through the chain."""

    hops: List[HopRecord] = field(default_factory=list)

    @property
    def delivered(self) -> List[Packet]:
        """Packets that made it out of the last hop."""
        return self.hops[-1].packets_out if self.hops else []

    @property
    def dropped_at(self) -> Optional[str]:
        """Name of the NF that dropped the packet (None if delivered)."""
        for hop in self.hops:
            if hop.dropped:
                return hop.nf
        return None


class ServiceChain:
    """An ordered pipeline of packet processors."""

    def __init__(self, hops: Sequence[Tuple[str, PacketProcessor]]) -> None:
        self.hops = list(hops)
        self.stats: Dict[str, int] = {name: 0 for name, _ in self.hops}

    @classmethod
    def of_references(cls, results: Sequence) -> "ServiceChain":
        """A chain of reference interpreters from synthesis results."""
        hops = []
        for result in results:
            interp = result.make_reference()
            hops.append((result.model.name, interp.process_packet))
        return cls(hops)

    @classmethod
    def of_simulators(
        cls, results: Sequence, compiled: bool = False
    ) -> "ServiceChain":
        """A chain of model simulators from synthesis results.

        ``compiled=True`` runs every hop through the model compiler
        (:mod:`repro.model.compile`) instead of the interpreted
        simulator — identical outcomes, faster packets.
        """
        hops = []
        for result in results:
            sim = (
                result.make_compiled_simulator()
                if compiled
                else result.make_simulator()
            )
            hops.append((result.model.name, sim.process))
        return cls(hops)

    def process(self, pkt: Packet) -> ChainTrace:
        """Push one packet through the chain, recording every hop.

        An NF may emit several packets (flooding); each is fed to the
        next hop and the hop record aggregates the outputs.
        """
        trace = ChainTrace()
        current: List[Packet] = [pkt]
        for name, processor in self.hops:
            emitted: List[Packet] = []
            for p in current:
                for out_pkt, _port in processor(p.copy()):
                    emitted.append(out_pkt)
            trace.hops.append(
                HopRecord(nf=name, packets_in=list(current),
                          packets_out=list(emitted))
            )
            if emitted:
                self.stats[name] = self.stats.get(name, 0) + 1
            current = emitted
            if not current:
                break
        return trace

    def run(self, packets: Sequence[Packet]) -> List[ChainTrace]:
        """Process a workload; returns one trace per input packet."""
        return [self.process(pkt) for pkt in packets]

    def delivery_rate(self, packets: Sequence[Packet]) -> float:
        """Fraction of the workload delivered end to end."""
        traces = self.run(packets)
        if not traces:
            return 0.0
        return sum(1 for t in traces if t.delivered) / len(traces)
