"""Network substrate: addresses, packets, flows, TCP state and workloads.

This package replaces the wire-level machinery the paper's testbed used
(scapy sniffing, kernel sockets, real NICs) with an in-memory equivalent
that preserves everything the analysis cares about: header fields, flow
identity and TCP endpoint state.
"""

from repro.net.addresses import ip_to_int, int_to_ip, mac_to_int, int_to_mac
from repro.net.packet import Packet, PACKET_FIELDS, FIELD_DOMAINS
from repro.net.flow import FiveTuple, FlowKey, flow_of
from repro.net.tcp import TcpState, TcpEndpoint, TcpConnectionTable
from repro.net.generator import TrafficGenerator, WorkloadSpec

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "mac_to_int",
    "int_to_mac",
    "Packet",
    "PACKET_FIELDS",
    "FIELD_DOMAINS",
    "FiveTuple",
    "FlowKey",
    "flow_of",
    "TcpState",
    "TcpEndpoint",
    "TcpConnectionTable",
    "TrafficGenerator",
    "WorkloadSpec",
]
