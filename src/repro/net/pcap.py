"""pcap import/export for generated workloads.

Serialises :class:`~repro.net.packet.Packet` objects to the classic
libpcap file format (Ethernet link type) so generated workloads and
model-guided test suites can be inspected with standard tools, and
reads them back for replay.  Only the fields the corpus NFs use are
encoded (Ethernet, IPv4, TCP/UDP headers and a payload-fingerprint
trailer); everything round-trips exactly.

Timestamps are synthetic (one packet per microsecond) — the analysis
is untimed, and deterministic output beats wall-clock fidelity here.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Union

from repro.net.packet import Packet, PROTO_TCP, PROTO_UDP

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1

_GLOBAL_HDR = struct.Struct("<IHHiIII")
_RECORD_HDR = struct.Struct("<IIII")
_ETH = struct.Struct("!6s6sH")
_IPV4 = struct.Struct("!BBHHHBBH4s4s")
_L4_PORTS = struct.Struct("!HH")
_TCP_REST = struct.Struct("!IIBBHHH")
#: Proprietary trailer carrying the payload fingerprint + length, so
#: that to_bytes/from_bytes round-trips the analysis-relevant fields.
_TRAILER = struct.Struct("!4sIH")
_TRAILER_MAGIC = b"NFPL"


def _mac_bytes(value: int) -> bytes:
    return value.to_bytes(6, "big")


def _ip_bytes(value: int) -> bytes:
    return value.to_bytes(4, "big")


def packet_to_bytes(pkt: Packet) -> bytes:
    """Encode one packet as an Ethernet frame."""
    eth = _ETH.pack(_mac_bytes(pkt.eth_dst), _mac_bytes(pkt.eth_src), pkt.eth_type)

    if pkt.proto == PROTO_TCP:
        l4 = _L4_PORTS.pack(pkt.sport, pkt.dport) + _TCP_REST.pack(
            pkt.tcp_seq, pkt.tcp_ack, 5 << 4, pkt.tcp_flags, 65535, 0, 0
        )
    elif pkt.proto == PROTO_UDP:
        l4 = _L4_PORTS.pack(pkt.sport, pkt.dport) + struct.pack("!HH", 8, 0)
    else:
        l4 = b""

    trailer = _TRAILER.pack(_TRAILER_MAGIC, pkt.payload_sig, pkt.payload_len)
    total_len = 20 + len(l4) + len(trailer)
    ip = _IPV4.pack(
        (4 << 4) | 5,          # version + IHL
        0,                     # DSCP/ECN
        total_len & 0xFFFF,
        0,                     # identification
        0,                     # flags/fragment
        pkt.ttl,
        pkt.proto,
        0,                     # checksum (not computed; analysis-only)
        _ip_bytes(pkt.ip_src),
        _ip_bytes(pkt.ip_dst),
    )
    return eth + ip + l4 + trailer


def packet_from_bytes(frame: bytes) -> Packet:
    """Decode one Ethernet frame back into a Packet."""
    if len(frame) < _ETH.size + _IPV4.size:
        raise ValueError("frame too short for Ethernet+IPv4")
    eth_dst, eth_src, eth_type = _ETH.unpack_from(frame, 0)
    off = _ETH.size
    (
        _vihl,
        _tos,
        _total,
        _ident,
        _frag,
        ttl,
        proto,
        _csum,
        ip_src,
        ip_dst,
    ) = _IPV4.unpack_from(frame, off)
    off += _IPV4.size

    pkt = Packet(
        eth_dst=int.from_bytes(eth_dst, "big"),
        eth_src=int.from_bytes(eth_src, "big"),
        eth_type=eth_type,
        ttl=ttl,
        proto=proto,
        ip_src=int.from_bytes(ip_src, "big"),
        ip_dst=int.from_bytes(ip_dst, "big"),
    )
    if proto == PROTO_TCP and len(frame) >= off + _L4_PORTS.size + _TCP_REST.size:
        pkt.sport, pkt.dport = _L4_PORTS.unpack_from(frame, off)
        off += _L4_PORTS.size
        seq, ack, _doff, flags, _win, _csum2, _urg = _TCP_REST.unpack_from(frame, off)
        pkt.tcp_seq, pkt.tcp_ack, pkt.tcp_flags = seq, ack, flags & 31
        off += _TCP_REST.size
    elif proto == PROTO_UDP and len(frame) >= off + _L4_PORTS.size + 4:
        pkt.sport, pkt.dport = _L4_PORTS.unpack_from(frame, off)
        off += _L4_PORTS.size + 4

    if len(frame) >= off + _TRAILER.size:
        magic, sig, plen = _TRAILER.unpack_from(frame, len(frame) - _TRAILER.size)
        if magic == _TRAILER_MAGIC:
            pkt.payload_sig = sig
            pkt.payload_len = plen
    return pkt


def write_pcap(path: Union[str, Path], packets: Iterable[Packet]) -> int:
    """Write packets to a pcap file; returns the packet count."""
    count = 0
    with open(path, "wb") as fh:
        fh.write(
            _GLOBAL_HDR.pack(
                PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1], 0, 0, 65535,
                LINKTYPE_ETHERNET,
            )
        )
        for i, pkt in enumerate(packets):
            frame = packet_to_bytes(pkt)
            fh.write(_RECORD_HDR.pack(i // 1_000_000, i % 1_000_000, len(frame), len(frame)))
            fh.write(frame)
            count += 1
    return count


def read_pcap(path: Union[str, Path]) -> List[Packet]:
    """Read every packet from a pcap file written by :func:`write_pcap`."""
    packets: List[Packet] = []
    with open(path, "rb") as fh:
        header = fh.read(_GLOBAL_HDR.size)
        if len(header) < _GLOBAL_HDR.size:
            raise ValueError("truncated pcap global header")
        magic = _GLOBAL_HDR.unpack(header)[0]
        if magic != PCAP_MAGIC:
            raise ValueError(f"not a (little-endian) pcap file: magic={magic:#x}")
        while True:
            rec = fh.read(_RECORD_HDR.size)
            if not rec:
                break
            if len(rec) < _RECORD_HDR.size:
                raise ValueError("truncated pcap record header")
            _ts_s, _ts_us, incl_len, _orig_len = _RECORD_HDR.unpack(rec)
            frame = fh.read(incl_len)
            if len(frame) < incl_len:
                raise ValueError("truncated pcap record body")
            packets.append(packet_from_bytes(frame))
    return packets
