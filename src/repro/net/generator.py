"""Workload generation for differential testing and benchmarks.

The paper's accuracy experiment feeds 1000 random packets to both the
original NF and the synthesized model (§5).  Purely uniform random
packets would almost never hit interesting code paths (e.g. the load
balancer's virtual port), so the generator mixes three regimes:

- **uniform**: fields drawn uniformly from their domains;
- **biased**: fields drawn from a small pool of "interesting" values
  (the NF's configured addresses/ports, flag combinations, boundary
  values) so that stateful paths are exercised;
- **flows**: coherent TCP flows with handshakes, data and teardown, so
  state tables actually populate.

All randomness is seeded, so every experiment is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.net.packet import (
    FIELD_DOMAINS,
    Packet,
    PROTO_TCP,
    PROTO_UDP,
    TCP_ACK,
    TCP_FIN,
    TCP_SYN,
)


@dataclass
class WorkloadSpec:
    """Parameters of a generated workload.

    ``interesting`` maps a field name to the pool of values biased draws
    pick from — typically the NF's own configuration (VIP, listen port,
    backend addresses) so that generated traffic actually matches the
    NF's tables.
    """

    n_packets: int = 1000
    seed: int = 7
    bias: float = 0.7
    flow_fraction: float = 0.5
    #: 3 handshake packets + data + FIN; ≥5 so flows carry data segments.
    packets_per_flow: int = 6
    interesting: Dict[str, Sequence[int]] = field(default_factory=dict)


_DEFAULT_INTERESTING: Dict[str, Sequence[int]] = {
    "proto": (PROTO_TCP, PROTO_TCP, PROTO_TCP, PROTO_UDP, 1),
    "tcp_flags": (TCP_SYN, TCP_SYN | TCP_ACK, TCP_ACK, TCP_FIN | TCP_ACK, 0),
    "ttl": (0, 1, 64, 255),
    "sport": (80, 443, 1234, 10000, 54321),
    "dport": (80, 443, 1234, 10000, 54321),
}


class TrafficGenerator:
    """Deterministic packet/workload generator.

    >>> gen = TrafficGenerator(WorkloadSpec(n_packets=3, seed=1))
    >>> pkts = list(gen.packets())
    >>> len(pkts)
    3
    >>> pkts == list(TrafficGenerator(WorkloadSpec(n_packets=3, seed=1)).packets())
    True
    """

    def __init__(self, spec: Optional[WorkloadSpec] = None) -> None:
        self.spec = spec or WorkloadSpec()
        self._rng = random.Random(self.spec.seed)
        self._pools: Dict[str, List[int]] = {}
        for name, values in _DEFAULT_INTERESTING.items():
            self._pools[name] = list(values)
        for name, values in self.spec.interesting.items():
            self._pools.setdefault(name, [])
            self._pools[name] = list(values) + self._pools[name]

    def random_packet(self) -> Packet:
        """Draw one packet (biased per-field with probability ``bias``)."""
        fields: Dict[str, int] = {}
        for name, (lo, hi) in FIELD_DOMAINS.items():
            pool = self._pools.get(name)
            if pool and self._rng.random() < self.spec.bias:
                fields[name] = self._rng.choice(pool)
            else:
                fields[name] = self._rng.randint(lo, hi)
        return Packet(**fields)

    def flow_packets(self, n: int) -> List[Packet]:
        """Generate a coherent TCP flow of ``n`` packets (handshake first).

        The forward direction uses a biased destination (so it can hit
        the NF's service port) and the reverse direction swaps the
        tuple, as server replies would.
        """
        src = self._draw("ip_src")
        dst = self._draw("ip_dst")
        sport = self._draw("sport")
        dport = self._draw("dport")
        pkts: List[Packet] = []
        stages = [TCP_SYN, TCP_SYN | TCP_ACK, TCP_ACK]
        for i in range(n):
            flags = stages[i] if i < len(stages) else (TCP_ACK if i < n - 1 else TCP_FIN | TCP_ACK)
            reverse = i % 2 == 1 and i < len(stages)
            if reverse:
                pkt = Packet(
                    ip_src=dst, ip_dst=src, sport=dport, dport=sport,
                    proto=PROTO_TCP, tcp_flags=flags,
                )
            else:
                pkt = Packet(
                    ip_src=src, ip_dst=dst, sport=sport, dport=dport,
                    proto=PROTO_TCP, tcp_flags=flags,
                )
            pkt.payload_len = self._rng.randint(0, 1400)
            pkt.payload_sig = self._rng.randint(0, (1 << 32) - 1)
            pkts.append(pkt)
        return pkts

    def packets(self) -> Iterator[Packet]:
        """Yield the full workload: a mix of flows and single packets."""
        remaining = self.spec.n_packets
        while remaining > 0:
            if self._rng.random() < self.spec.flow_fraction:
                n = min(self.spec.packets_per_flow, remaining)
                yield from self.flow_packets(n)
                remaining -= n
            else:
                yield self.random_packet()
                remaining -= 1

    def _draw(self, name: str) -> int:
        pool = self._pools.get(name)
        lo, hi = FIELD_DOMAINS[name]
        if pool and self._rng.random() < self.spec.bias:
            return self._rng.choice(pool)
        return self._rng.randint(lo, hi)
