"""TCP endpoint state machine.

Section 3.2 of the paper ("Hidden States") observes that socket-level NFs
(e.g. *balance*) rely on connection state kept inside the OS, invisible in
the NF source.  NFactor handles this by *unfolding* socket calls into
packet-level operations plus an explicit TCP state transition.  This
module provides that explicit state machine: a per-connection tracker the
unfolded programs and the stateful-firewall corpus NF consult.

The machine follows RFC 793's segment-arrival transitions, restricted to
the flag-level granularity the forwarding model needs (SYN / SYN+ACK /
ACK / FIN / RST — sequence-number arithmetic is irrelevant to the
match/action abstraction and is omitted, as in the paper's model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.net.flow import FiveTuple, bidirectional_key, flow_of
from repro.net.packet import Packet, TCP_ACK, TCP_FIN, TCP_RST, TCP_SYN


class TcpState(enum.IntEnum):
    """Connection states, numbered so NFPy programs can store them as ints."""

    CLOSED = 0
    LISTEN = 1
    SYN_SENT = 2
    SYN_RCVD = 3
    ESTABLISHED = 4
    FIN_WAIT_1 = 5
    FIN_WAIT_2 = 6
    CLOSE_WAIT = 7
    LAST_ACK = 8
    CLOSING = 9
    TIME_WAIT = 10


#: Direction of a segment relative to the connection initiator.
CLIENT_TO_SERVER = 0
SERVER_TO_CLIENT = 1


@dataclass
class TcpEndpoint:
    """Tracks one bidirectional TCP connection at flag granularity."""

    state: TcpState = TcpState.CLOSED
    initiator: Optional[FiveTuple] = None

    def segment(self, direction: int, flags: int) -> TcpState:
        """Advance the connection state for a segment and return it.

        ``direction`` is :data:`CLIENT_TO_SERVER` or
        :data:`SERVER_TO_CLIENT`; ``flags`` is the TCP flag bitmask.
        Segments that are invalid in the current state leave it unchanged
        (a real stack would drop or RST them; the caller decides).
        """
        if flags & TCP_RST:
            self.state = TcpState.CLOSED
            return self.state
        self.state = _advance(self.state, direction, flags)
        return self.state

    @property
    def established(self) -> bool:
        """True once the three-way handshake has completed."""
        return self.state == TcpState.ESTABLISHED


def _advance(state: TcpState, direction: int, flags: int) -> TcpState:
    syn = bool(flags & TCP_SYN)
    ack = bool(flags & TCP_ACK)
    fin = bool(flags & TCP_FIN)

    if state in (TcpState.CLOSED, TcpState.LISTEN):
        if syn and not ack and direction == CLIENT_TO_SERVER:
            return TcpState.SYN_RCVD
        return state
    if state == TcpState.SYN_RCVD:
        if syn and ack and direction == SERVER_TO_CLIENT:
            return TcpState.SYN_SENT  # SYN+ACK in flight; awaiting final ACK
        if syn and direction == CLIENT_TO_SERVER:
            return state  # SYN retransmission
        return state
    if state == TcpState.SYN_SENT:
        if ack and not syn and direction == CLIENT_TO_SERVER:
            return TcpState.ESTABLISHED
        return state
    if state == TcpState.ESTABLISHED:
        if fin and direction == CLIENT_TO_SERVER:
            return TcpState.FIN_WAIT_1
        if fin and direction == SERVER_TO_CLIENT:
            return TcpState.CLOSE_WAIT
        return state
    if state == TcpState.FIN_WAIT_1:
        if fin and direction == SERVER_TO_CLIENT:
            return TcpState.CLOSING
        if ack and direction == SERVER_TO_CLIENT:
            return TcpState.FIN_WAIT_2
        return state
    if state == TcpState.FIN_WAIT_2:
        if fin and direction == SERVER_TO_CLIENT:
            return TcpState.TIME_WAIT
        return state
    if state == TcpState.CLOSE_WAIT:
        if fin and direction == CLIENT_TO_SERVER:
            return TcpState.LAST_ACK
        return state
    if state == TcpState.LAST_ACK:
        if ack and direction == SERVER_TO_CLIENT:
            return TcpState.CLOSED
        return state
    if state == TcpState.CLOSING:
        if ack:
            return TcpState.TIME_WAIT
        return state
    if state == TcpState.TIME_WAIT:
        return state
    return state


@dataclass
class TcpConnectionTable:
    """Per-flow TCP state, keyed by the direction-independent 5-tuple.

    This is the "hidden state" the unfolding transform makes explicit:
    the unfolded *balance* program asks :meth:`observe` for the connection
    state before deciding whether a data segment may be relayed.
    """

    connections: Dict[FiveTuple, TcpEndpoint] = field(default_factory=dict)

    def observe(self, pkt: Packet) -> Tuple[TcpState, TcpState]:
        """Account for ``pkt`` and return ``(state_before, state_after)``."""
        key = bidirectional_key(pkt)
        endpoint = self.connections.get(key)
        if endpoint is None:
            endpoint = TcpEndpoint(initiator=flow_of(pkt))
            self.connections[key] = endpoint
        before = endpoint.state
        direction = (
            CLIENT_TO_SERVER
            if endpoint.initiator == flow_of(pkt)
            else SERVER_TO_CLIENT
        )
        after = endpoint.segment(direction, pkt.tcp_flags)
        if after == TcpState.CLOSED and before != TcpState.CLOSED:
            del self.connections[key]
        return before, after

    def state_of(self, pkt: Packet) -> TcpState:
        """Return the current state of ``pkt``'s connection (CLOSED if new)."""
        endpoint = self.connections.get(bidirectional_key(pkt))
        return endpoint.state if endpoint is not None else TcpState.CLOSED

    def established(self, pkt: Packet) -> bool:
        """True if ``pkt`` belongs to an established connection."""
        return self.state_of(pkt) == TcpState.ESTABLISHED

    def __len__(self) -> int:
        return len(self.connections)
