"""Flow identity: the 4- and 5-tuples the corpus NFs key their state on."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.net.packet import Packet


@dataclass(frozen=True, order=True)
class FiveTuple:
    """A canonical transport 5-tuple."""

    ip_src: int
    sport: int
    ip_dst: int
    dport: int
    proto: int

    def reversed(self) -> "FiveTuple":
        """Return the 5-tuple of the reverse direction."""
        return FiveTuple(self.ip_dst, self.dport, self.ip_src, self.sport, self.proto)

    def four_tuple(self) -> Tuple[int, int, int, int]:
        """Drop the protocol, matching the paper's (si, sp, di, dp) keys."""
        return (self.ip_src, self.sport, self.ip_dst, self.dport)


#: Directionless flow key: the smaller of the two directed 5-tuples, so
#: both directions of a connection map to the same key.
FlowKey = FiveTuple


def flow_of(pkt: Packet) -> FiveTuple:
    """Extract the directed 5-tuple of a packet."""
    return FiveTuple(pkt.ip_src, pkt.sport, pkt.ip_dst, pkt.dport, pkt.proto)


def bidirectional_key(pkt: Packet) -> FiveTuple:
    """Extract a direction-independent flow key for a packet."""
    fwd = flow_of(pkt)
    rev = fwd.reversed()
    return fwd if fwd <= rev else rev
