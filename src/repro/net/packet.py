"""The packet representation shared by every layer of the system.

Packets are flat records of integer header fields.  Flattening (rather
than nesting Ether/IP/TCP objects) keeps the NFPy frontend, the symbolic
executor and the constraint solver simple: a packet field is just a named
bounded integer, exactly the granularity at which the paper's
match/action model operates.

The field set covers what the corpus NFs inspect: L2 addresses and
ethertype, the IP 5-tuple, TTL/length, TCP flags/seq/ack, and a payload
summary (``payload_len`` plus ``payload_sig``, a content fingerprint the
IDS rules match on — standing in for byte-level content matching, which
needs only equality tests at the model level).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.net.addresses import MAX_IPV4, MAX_MAC, MAX_PORT

# TCP flag bits (same encoding as the wire format's low flag byte).
TCP_FIN = 1
TCP_SYN = 2
TCP_RST = 4
TCP_PSH = 8
TCP_ACK = 16

# Ethertypes and IP protocol numbers used by the corpus.
ETH_IPV4 = 0x0800
ETH_ARP = 0x0806
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

#: Every packet field, with its inclusive integer domain.  The symbolic
#: solver uses these bounds both for interval propagation and for witness
#: generation, so the list is authoritative.
FIELD_DOMAINS: Dict[str, Tuple[int, int]] = {
    "in_port": (0, 255),
    "eth_src": (0, MAX_MAC),
    "eth_dst": (0, MAX_MAC),
    "eth_type": (0, 0xFFFF),
    "ip_src": (0, MAX_IPV4),
    "ip_dst": (0, MAX_IPV4),
    "proto": (0, 255),
    "ttl": (0, 255),
    "length": (0, 65535),
    "sport": (0, MAX_PORT),
    "dport": (0, MAX_PORT),
    "tcp_flags": (0, 31),
    "tcp_seq": (0, (1 << 32) - 1),
    "tcp_ack": (0, (1 << 32) - 1),
    "payload_len": (0, 65535),
    "payload_sig": (0, (1 << 32) - 1),
}

PACKET_FIELDS: Tuple[str, ...] = tuple(FIELD_DOMAINS)

_DEFAULTS: Dict[str, int] = {
    "in_port": 0,
    "eth_src": 0,
    "eth_dst": 0,
    "eth_type": ETH_IPV4,
    "ip_src": 0,
    "ip_dst": 0,
    "proto": PROTO_TCP,
    "ttl": 64,
    "length": 64,
    "sport": 0,
    "dport": 0,
    "tcp_flags": 0,
    "tcp_seq": 0,
    "tcp_ack": 0,
    "payload_len": 0,
    "payload_sig": 0,
}


class Packet:
    """A mutable network packet with flat integer header fields.

    >>> p = Packet(ip_src=1, ip_dst=2, sport=1234, dport=80)
    >>> p.dport
    80
    >>> q = p.copy()
    >>> q.dport = 443
    >>> p.dport
    80
    """

    __slots__ = tuple(PACKET_FIELDS)

    def __init__(self, **fields: int) -> None:
        for name, default in _DEFAULTS.items():
            object.__setattr__(self, name, default)
        for name, value in fields.items():
            setattr(self, name, value)

    def __setattr__(self, name: str, value: int) -> None:
        if name not in FIELD_DOMAINS:
            raise AttributeError(f"unknown packet field: {name!r}")
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"packet field {name!r} must be an int, got {value!r}")
        lo, hi = FIELD_DOMAINS[name]
        if not lo <= value <= hi:
            raise ValueError(f"packet field {name!r} out of range: {value}")
        object.__setattr__(self, name, value)

    def copy(self) -> "Packet":
        """Return an independent copy of this packet."""
        clone = Packet()
        for name in PACKET_FIELDS:
            object.__setattr__(clone, name, getattr(self, name))
        return clone

    def to_dict(self) -> Dict[str, int]:
        """Return all fields as a plain dict (for traces and witnesses)."""
        return {name: getattr(self, name) for name in PACKET_FIELDS}

    @classmethod
    def from_dict(cls, fields: Dict[str, int]) -> "Packet":
        """Build a packet from a field dict (unknown keys rejected)."""
        return cls(**fields)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate over ``(field, value)`` pairs in canonical order."""
        for name in PACKET_FIELDS:
            yield name, getattr(self, name)

    def has_flag(self, bit: int) -> bool:
        """Return True if the TCP flag ``bit`` is set."""
        return bool(self.tcp_flags & bit)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f) for f in PACKET_FIELDS)

    def __hash__(self) -> int:
        return hash(tuple(getattr(self, f) for f in PACKET_FIELDS))

    def __repr__(self) -> str:
        interesting = {
            name: value
            for name, value in self.items()
            if value != _DEFAULTS[name]
        }
        inner = ", ".join(f"{k}={v}" for k, v in interesting.items())
        return f"Packet({inner})"


def tcp_packet(
    ip_src: int,
    sport: int,
    ip_dst: int,
    dport: int,
    flags: int = 0,
    **extra: int,
) -> Packet:
    """Convenience constructor for a TCP packet with the given 4-tuple."""
    return Packet(
        ip_src=ip_src,
        sport=sport,
        ip_dst=ip_dst,
        dport=dport,
        proto=PROTO_TCP,
        tcp_flags=flags,
        **extra,
    )
