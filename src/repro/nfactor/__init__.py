"""NFactor: the model-synthesis algorithm and its code transforms."""

from repro.nfactor.algorithm import NFactor, NFactorConfig, SynthesisResult, synthesize_model
from repro.nfactor.transforms import normalize_structure
from repro.nfactor.tcp_unfold import unfold_tcp, has_socket_calls

__all__ = [
    "NFactor",
    "NFactorConfig",
    "SynthesisResult",
    "synthesize_model",
    "normalize_structure",
    "unfold_tcp",
    "has_socket_calls",
]
