"""NFactor end-to-end (paper Algorithm 1 plus §3.2 preprocessing).

Pipeline::

    source ──parse──▶ Program
           ──(socket NF? unfold_tcp)──▶ packet-level Program
           ──normalize_structure──▶ entry function located
           ──flatten──▶ flat block (module init + inlined entry)
           ──PDG──▶ dependences
           1. packet slice     = ∪ BackwardSlice(send_packet stmts)
           2. StateAlyzer      = pktVar / cfgVar / oisVar / logVar
           3. state slice      = ∪ BackwardSlice(oisVar assignments)
           4. executable slice = pkt ∪ state (+ control-jump closure)
           5. symbolic exec    = execution paths of the sliced entry
           6. refactor         = match/action tables (NFModel)

Use :class:`NFactor` for full control, or the one-call
:func:`synthesize_model` convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import cache as artifact_cache
from repro.interp.interpreter import Env, Interpreter
from repro.interp.values import deep_copy
from repro.lang.ir import (
    Block,
    ECall,
    Program,
    Stmt,
    iter_block,
    stmt_calls,
    stmt_defs,
    stmt_uses,
    SIf,
    SWhile,
)
from repro.lang.parser import parse_program
from repro.model.matchaction import NFModel
from repro.model.serialize import model_to_json
from repro.model.simulator import ModelSimulator
from repro.nfactor.refactor import build_model, executable_slice
from repro.nfactor.tcp_unfold import has_socket_calls, unfold_tcp
from repro.nfactor.transforms import NormalizeReport, normalize_structure
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.pdg.flatten import FlatView, flatten_program
from repro.pdg.pdg import PDG, build_pdg
from repro.slicing.criteria import SliceCriterion
from repro.slicing.static import StaticSlicer
from repro.statealyzer.classify import VarCategories, classify_variables
from repro.symbolic.engine import EngineConfig, SymbolicEngine
from repro.symbolic.expr import SVar, SymDict, SymPacket
from repro.symbolic.solver import global_cache as _global_constraint_cache
from repro.symbolic.state import PathResult
from repro.util.timer import Stopwatch

PKT_OUTPUT_FUNC = "send_packet"


@dataclass
class NFactorConfig:
    """Synthesis tunables."""

    engine: EngineConfig = field(default_factory=EngineConfig)
    #: Config variables to treat symbolically (None = auto: scalar
    #: cfgVars referenced by branch conditions of the entry code).
    symbolic_configs: Optional[Set[str]] = None
    #: Config variables to force-keep concrete even under auto.
    concrete_configs: Set[str] = field(default_factory=set)
    #: Also explore the *unsliced* program (for the Table-2 comparison).
    keep_module_concrete: bool = True
    #: Memoize pipeline phases through the persistent artifact store
    #: (:mod:`repro.cache`).  Purely a when-work-happens knob: cached
    #: and uncached runs produce byte-identical models.  Also gated by
    #: the store's own enablement (``REPRO_CACHE=off`` / ``--no-cache``).
    artifact_cache: bool = True


@dataclass
class SynthesisStats:
    """Timings and sizes reported per synthesis (paper Table 2 columns).

    ``phase_timings`` maps pipeline phase name → wall seconds and is
    always populated (its collection is a pair of monotonic-clock reads
    per phase); ``metrics`` is the ambient metrics-registry snapshot,
    populated when the synthesis ran under an installed registry (see
    :mod:`repro.obs`) and empty otherwise.
    """

    source_loc: int = 0
    ir_loc: int = 0
    slice_loc: int = 0
    slice_ir_loc: int = 0
    path_loc_max: int = 0
    path_loc_avg: float = 0.0
    slicing_time_s: float = 0.0
    se_time_s: float = 0.0
    n_paths: int = 0
    n_entries: int = 0
    solver_checks: int = 0
    solver_cache_hits: int = 0
    solver_cache_misses: int = 0
    # Engine cold-path counters (docs/internals.md §9); frontier runs
    # fold the worker processes' counts in.
    states_explored: int = 0
    pruned_subsumed: int = 0
    witness_hits: int = 0
    intern_hits: int = 0
    intern_misses: int = 0
    phase_timings: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SynthesisResult:
    """Everything the synthesis produced."""

    model: NFModel
    program: Program
    flat: FlatView
    pdg: PDG
    pkt_slice: Set[int]
    state_slice: Set[int]
    union_slice: Set[int]
    sliced_entry: Block
    categories: VarCategories
    paths: List[PathResult]
    module_env: Dict[str, Any]
    sym_env: Dict[str, Any]
    stats: SynthesisStats
    normalize_report: NormalizeReport
    unfolded: bool = False

    @property
    def pkt_param(self) -> str:
        return self.flat.entry_params[0] if self.flat.entry_params else "pkt"

    def make_simulator(self) -> ModelSimulator:
        """A fresh model simulator seeded with the program's initial state."""
        return ModelSimulator(
            self.model, deep_copy(self.module_env), pkt_param=self.pkt_param
        )

    def make_compiled_simulator(self, dispatch: bool = True):
        """A fresh compiled simulator (see :mod:`repro.model.compile`).

        The :class:`~repro.model.compile.CompiledModel` is memoized on
        the result, so repeated calls pay the lowering cost once.
        """
        from repro.model.compile import compile_model

        compiled = getattr(self, "_compiled_model", None)
        if compiled is None or compiled.dispatch != dispatch:
            compiled = compile_model(
                self.model,
                self.module_env,
                pkt_param=self.pkt_param,
                dispatch=dispatch,
            )
            self._compiled_model = compiled
        return compiled.simulator(deep_copy(self.module_env))

    def make_reference(self) -> Interpreter:
        """A fresh concrete interpreter of the original program."""
        interp = Interpreter(program=self.program)
        interp.run_module()
        return interp

    def slice_source_lines(self) -> Set[int]:
        """Source lines of the union slice (Fig. 1 presentation)."""
        return self.flat.source_lines(self.union_slice)


@dataclass
class _Prep:
    """Intermediate products of the shared pipeline front half."""

    flat: FlatView
    module_part: Block
    entry_part: Block
    pkt_param: str
    loop_sid: int
    pdg: PDG
    slicer: StaticSlicer
    pkt_slice: Set[int]
    categories: VarCategories
    module_env: Dict[str, Any]
    sym_env: Dict[str, Any]


def _canon_value(value: Any) -> Any:
    """Sets → sorted tuples so config values encode order-independently."""
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(value))
    return value


def _prep_config_fingerprint(config: NFactorConfig) -> Tuple:
    """Fingerprint of the config fields the pipeline front half reads."""
    return (
        ("symbolic_configs", _canon_value(config.symbolic_configs)),
        ("concrete_configs", _canon_value(config.concrete_configs)),
        ("keep_module_concrete", config.keep_module_concrete),
    )


#: EngineConfig fields that change *when/how fast* work happens, never
#: what is computed (behaviour-preserving by construction, see
#: docs/internals.md §9) — excluded from fingerprints so toggling them
#: shares cache entries.
_PERF_ONLY_ENGINE_FIELDS = frozenset(
    {
        "solver_cache",
        "intern_exprs",
        "witness_shortcut",
        "subsumption",
        "parallel_paths",
    }
)


def _full_config_fingerprint(config: NFactorConfig) -> Tuple:
    """Fingerprint of every output-affecting config field.

    Iterates the dataclasses so a future field is included (and so
    invalidates old entries) by default; only the cache toggles and the
    perf-only engine toggles are excluded — they change *when* work
    happens, never what is computed, so cached/uncached runs may share
    keys.  The parallel "frontier" strategy is byte-identical to
    sequential dfs (canonical path ordering), so it normalizes to "dfs"
    in the key.
    """

    def engine_value(name: str) -> Any:
        value = getattr(config.engine, name)
        if name == "strategy" and value == "frontier":
            return "dfs"
        return _canon_value(value)

    engine = tuple(
        (f.name, engine_value(f.name))
        for f in fields(EngineConfig)
        if f.name not in _PERF_ONLY_ENGINE_FIELDS
    )
    outer = tuple(
        (f.name, _canon_value(getattr(config, f.name)))
        for f in fields(NFactorConfig)
        if f.name not in ("engine", "artifact_cache")
    )
    return engine + outer


class NFactor:
    """The NFactor synthesis tool.

    When constructed from source text, the pipeline memoizes its phases
    through the persistent artifact store (:mod:`repro.cache`): the
    frontend (parse/unfold/normalize), the prepared analysis state
    (flatten/PDG/packet slice/classification/environments) and the
    state/executable slices each load from the cache when the source
    and relevant configuration are unchanged.  Cache hits are
    byte-for-byte equivalent to recomputation (docs/internals.md §8).
    """

    def __init__(
        self,
        program: Program | str,
        name: str = "<nf>",
        entry: Optional[str] = None,
        config: Optional[NFactorConfig] = None,
    ) -> None:
        self._phase_timings: Dict[str, float] = {}
        self.config = config or NFactorConfig()
        self._frontend_key: Optional[str] = None
        if isinstance(program, str) and self.config.artifact_cache:
            # Keyed on function-level source units, not the raw text: an
            # edit to a handler this target never reaches derives the
            # same key (docs/internals.md §15).
            self._frontend_key = artifact_cache.artifact_key(
                "frontend",
                artifact_cache.frontend_key_material(program, name, entry),
            )
            cached = artifact_cache.get_store().get_object(
                "frontend", self._frontend_key
            )
            if cached is not None:
                self.program, self.normalize_report, self.unfolded = cached
                return
        if isinstance(program, str):
            with obs_trace.phase("parse", self._phase_timings):
                program = parse_program(program, name=name, entry=entry)
        elif entry is not None:
            program.entry = entry
        self.unfolded = False
        if has_socket_calls(program):
            with obs_trace.phase("unfold", self._phase_timings):
                program = unfold_tcp(program)
            self.unfolded = True
        with obs_trace.phase("normalize", self._phase_timings):
            self.program, self.normalize_report = normalize_structure(program)
        if self._frontend_key is not None:
            artifact_cache.get_store().put_object(
                "frontend",
                self._frontend_key,
                (self.program, self.normalize_report, self.unfolded),
            )

    # -- pieces (exposed for benchmarks/ablations) ---------------------------

    def flatten(self) -> Tuple[FlatView, Block, Block]:
        """Flatten; returns (view, module part, entry part)."""
        flat = flatten_program(self.program)
        k = 0
        for stmt in flat.block:
            if stmt.sid in flat.module_sids:
                k += 1
            else:
                break
        return flat, flat.block[:k], flat.block[k:]

    def looped_view(
        self, flat: FlatView, module_part: Block, entry_part: Block
    ) -> Tuple[Block, int]:
        """The analysis view: entry body wrapped in the packet loop.

        NF state persists *across* packet invocations — the store into a
        NAT table happens while processing one packet, the read while
        processing a later one.  Dependence analysis therefore runs on
        ``module init; while True: <entry body>`` so that reaching
        definitions flow around the loop back edge (StateAlyzer's
        packet-processing-loop assumption, §2.1).  Returns the looped
        block and the synthetic loop header's sid (to be discarded from
        slices).
        """
        from repro.lang.ir import EConst, SContinue, SWhile

        loop_sid = max((s.sid for s in iter_block(flat.block)), default=0) + 1
        # Per-packet `return` means "done with this packet, take the
        # next" — inside the analysis loop that is `continue`, so the
        # back edge carries state written on early-return paths too.
        body = _loopify(list(entry_part))
        header = SWhile(sid=loop_sid, line=0, cond=EConst(True), body=body)
        return list(module_part) + [header], loop_sid

    def output_criteria(self, flat: FlatView) -> List[SliceCriterion]:
        """Slicing criteria: one per packet-output call (Alg. 1 lines 1–4)."""
        out: List[SliceCriterion] = []
        for stmt in iter_block(flat.block):
            if any(
                not c.method and c.func == PKT_OUTPUT_FUNC for c in stmt_calls(stmt)
            ):
                out.append(SliceCriterion(stmt.sid, None))
        return out

    def state_criteria(
        self, flat: FlatView, ois_vars: Set[str], entry_part: Block
    ) -> List[SliceCriterion]:
        """Criteria at every oisVar assignment (Alg. 1 lines 6–9)."""
        out: List[SliceCriterion] = []
        for stmt in iter_block(entry_part):
            if stmt_defs(stmt) & ois_vars:
                out.append(SliceCriterion(stmt.sid, None))
        return out

    def build_symbolic_env(
        self,
        module_env: Dict[str, Any],
        categories: VarCategories,
        entry_part: Block,
        pkt_param: str,
    ) -> Dict[str, Any]:
        """Seed the symbolic environment (Algorithm 1's setup).

        Packet fields become free variables; scalar configuration used
        in branch conditions becomes ``cfg.*`` variables (so the model
        splits into per-config tables); output-impacting state becomes
        ``st.*`` variables / lazy symbolic dicts; everything else
        (structured config like server lists, log counters) stays at
        its concrete initial value.
        """
        env: Dict[str, Any] = {k: deep_copy(v) for k, v in module_env.items()}

        cond_vars: Set[str] = set()
        for stmt in iter_block(entry_part):
            if isinstance(stmt, (SIf, SWhile)):
                cond_vars |= stmt_uses(stmt)

        symbolic_cfg = self.config.symbolic_configs
        for var in sorted(categories.cfg_vars):
            if var in self.config.concrete_configs:
                continue
            value = env.get(var)
            auto = var in cond_vars and isinstance(value, (int, bool))
            wanted = (symbolic_cfg is not None and var in symbolic_cfg) or (
                symbolic_cfg is None and auto
            )
            if not wanted:
                continue
            if isinstance(value, bool):
                env[var] = SVar(f"cfg.{var}", 0, 1, boolean=True)
            elif isinstance(value, int):
                env[var] = SVar(f"cfg.{var}", 0, (1 << 32) - 1)

        for var in sorted(categories.ois_vars):
            value = env.get(var)
            if isinstance(value, dict):
                env[var] = SymDict(var)
            elif isinstance(value, bool):
                env[var] = SVar(f"st.{var}", 0, 1, boolean=True)
            elif isinstance(value, int):
                env[var] = SVar(f"st.{var}", 0, (1 << 32) - 1)
            # lists/tuples/strings stay concrete: symbolic containers of
            # unknown length would reintroduce the path explosion the
            # paper's loop-bounding discipline exists to avoid.

        env[pkt_param] = SymPacket.fresh("pkt")
        return env

    # -- the full pipeline -----------------------------------------------------

    def _prep_key(self) -> Optional[str]:
        """The cache key of the prepared analysis state (None = uncacheable)."""
        if self._frontend_key is None or not self.config.artifact_cache:
            return None
        return artifact_cache.artifact_key(
            "prep", (self._frontend_key, _prep_config_fingerprint(self.config))
        )

    def _prepare(self, timings: Dict[str, float]) -> "_Prep":
        """The shared pipeline front half (both entry points run this).

        Flatten, build the looped analysis view and its PDG, compute the
        packet slice, classify variables and seed the concrete/symbolic
        environments.  ``synthesize`` continues with the state slice and
        the sliced exploration; ``explore_original`` explores the
        unsliced entry directly.  The whole product is one cacheable
        artifact: a hit skips every phase in this method.
        """
        prep_key = self._prep_key()
        if prep_key is not None:
            cached = artifact_cache.get_store().get_object("prep", prep_key)
            if cached is not None:
                obs_metrics.gauge("pdg.nodes").set(len(cached.pdg.stmts))
                obs_metrics.gauge("pdg.edges").set(cached.pdg.edge_count())
                return cached
        with obs_trace.phase("flatten", timings):
            flat, module_part, entry_part = self.flatten()
        pkt_param = flat.entry_params[0] if flat.entry_params else "pkt"

        with obs_trace.phase("pdg", timings):
            looped, loop_sid = self.looped_view(flat, module_part, entry_part)
            pdg = build_pdg(looped, flat.entry_vars())
            obs_metrics.gauge("pdg.nodes").set(len(pdg.stmts))
            obs_metrics.gauge("pdg.edges").set(pdg.edge_count())
        slicer = StaticSlicer(pdg)

        with obs_trace.phase("slice", timings):
            pkt_slice = slicer.backward_many(self.output_criteria(flat))
            pkt_slice.discard(loop_sid)
        with obs_trace.phase("classify", timings):
            categories = classify_variables(flat, pkt_slice)

        # Concrete initial state (module init runs unsliced: state must
        # start exactly as the original program starts it), then the
        # symbolic environment over it.
        with obs_trace.phase("env", timings):
            interp = Interpreter()
            module_env = interp.run_block(list(module_part)).globals
            module_env.pop(pkt_param, None)
            sym_env = self.build_symbolic_env(
                module_env, categories, entry_part, pkt_param
            )

        prep = _Prep(
            flat=flat,
            module_part=module_part,
            entry_part=entry_part,
            pkt_param=pkt_param,
            loop_sid=loop_sid,
            pdg=pdg,
            slicer=slicer,
            pkt_slice=pkt_slice,
            categories=categories,
            module_env=module_env,
            sym_env=sym_env,
        )
        if prep_key is not None:
            artifact_cache.get_store().put_object("prep", prep_key, prep)
        return prep

    def synthesize(self) -> SynthesisResult:
        """Run the whole pipeline and return the synthesis result."""
        stats = SynthesisStats()
        timings = dict(self._phase_timings)  # parse/unfold/normalize

        with obs_trace.span("synthesize", nf=self.program.name):
            prep = self._prepare(timings)
            flat, entry_part = prep.flat, prep.entry_part
            categories, pkt_slice = prep.categories, prep.pkt_slice

            prep_key = self._prep_key()
            slices_key = (
                artifact_cache.artifact_key("slices", prep_key)
                if prep_key is not None
                else None
            )
            cached_slices = (
                artifact_cache.get_store().get_object("slices", slices_key)
                if slices_key is not None
                else None
            )
            if cached_slices is not None:
                state_slice, kept, sliced_block = cached_slices
            else:
                with obs_trace.phase("slice", timings):
                    state_slice = prep.slicer.backward_many(
                        self.state_criteria(flat, categories.ois_vars, entry_part)
                    )
                    state_slice.discard(prep.loop_sid)
                    union = pkt_slice | state_slice
                    # Jump augmentation needs the loop header "present" so jumps
                    # directly under it qualify; filtering drops it again.
                    sliced_block, kept = executable_slice(
                        flat.block, union | {prep.loop_sid}, prep.pdg
                    )
                    kept.discard(prep.loop_sid)
                if slices_key is not None:
                    artifact_cache.get_store().put_object(
                        "slices", slices_key, (state_slice, kept, sliced_block)
                    )
            stats.slicing_time_s = (
                timings.get("pdg", 0.0)
                + timings.get("slice", 0.0)
                + timings.get("classify", 0.0)
            )

            module_sids = flat.module_sids
            sliced_entry = [s for s in sliced_block if s.sid not in module_sids]

            engine = SymbolicEngine(self.config.engine)
            with obs_trace.phase("symbolic", timings):
                with Stopwatch() as se_sw:
                    paths = engine.explore(
                        sliced_entry, prep.sym_env, watched=categories.ois_vars
                    )
            stats.se_time_s = se_sw.elapsed
            # Via engine.stats (not engine.solver): frontier runs fold
            # the worker processes' solver and engine counters in there.
            stats.solver_checks = engine.stats.solver_checks
            stats.solver_cache_hits = engine.stats.solver_cache_hits
            stats.solver_cache_misses = engine.stats.solver_cache_misses
            stats.states_explored = engine.stats.states_explored
            stats.pruned_subsumed = engine.stats.pruned_subsumed
            stats.witness_hits = engine.stats.witness_hits
            stats.intern_hits = engine.stats.intern_hits
            stats.intern_misses = engine.stats.intern_misses

            stmts = flat.stmts()
            with obs_trace.phase("refactor", timings):
                model = build_model(
                    self.program.name,
                    paths,
                    stmts,
                    pkt_slice,
                    state_slice,
                    ois_vars=categories.ois_vars,
                )
            model.cfg_vars = set(categories.cfg_vars)
            model.pkt_vars = set(categories.pkt_vars)
            model.log_vars = set(categories.log_vars)

        stats.source_loc = count_source_loc(self.program.source)
        stats.ir_loc = len(list(iter_block(flat.block)))
        stats.slice_ir_loc = len(kept)
        stats.slice_loc = len(flat.source_lines(kept))
        path_lens = [
            len({stmts[sid].line for sid in p.executed if sid in stmts})
            for p in paths
            if p.status == "done"
        ]
        stats.path_loc_max = max(path_lens, default=0)
        stats.path_loc_avg = sum(path_lens) / len(path_lens) if path_lens else 0.0
        stats.n_paths = sum(1 for p in paths if p.status == "done")
        stats.n_entries = model.n_entries
        stats.phase_timings = timings
        registry = obs_metrics.active()
        if registry.enabled:
            stats.metrics = registry.snapshot()

        # Write-behind: persist freshly-solved constraint answers so the
        # next process starts warm (no-op unless persistence is active).
        _global_constraint_cache().flush()

        return SynthesisResult(
            model=model,
            program=self.program,
            flat=flat,
            pdg=prep.pdg,
            pkt_slice=pkt_slice,
            state_slice=state_slice,
            union_slice=kept,
            sliced_entry=sliced_entry,
            categories=categories,
            paths=paths,
            module_env=prep.module_env,
            sym_env=prep.sym_env,
            stats=stats,
            normalize_report=self.normalize_report,
            unfolded=self.unfolded,
        )

    def explore_original(
        self, engine_config: Optional[EngineConfig] = None
    ) -> Tuple[List[PathResult], "SymbolicEngine"]:
        """Symbolic execution of the *unsliced* entry code.

        The Table-2 baseline: same symbolic environment, no slicing.
        """
        prep = self._prepare({})
        engine = SymbolicEngine(engine_config or self.config.engine)
        paths = engine.explore(
            list(prep.entry_part), prep.sym_env, watched=prep.categories.ois_vars
        )
        return paths, engine


def _loopify(block: Block) -> Block:
    """Clone a block for the looped analysis view (sids preserved).

    Top-level ``return`` becomes ``continue``; loops introduced by
    inlining keep their jumps (their breaks/returns were already
    rewritten by the flattener).
    """
    from repro.lang.ir import SContinue, SIf, SReturn, SWhile

    out: Block = []
    for stmt in block:
        if isinstance(stmt, SReturn):
            out.append(SContinue(sid=stmt.sid, line=stmt.line))
        elif isinstance(stmt, SIf):
            out.append(
                SIf(
                    sid=stmt.sid,
                    line=stmt.line,
                    cond=stmt.cond,
                    then=_loopify(stmt.then),
                    orelse=_loopify(stmt.orelse),
                )
            )
        elif isinstance(stmt, SWhile):
            # Returns inside nested (inlined-wrapper) loops do not occur:
            # the flattener rewrote them.  Keep the loop as is.
            out.append(stmt)
        else:
            out.append(stmt)
    return out


def count_source_loc(source: str) -> int:
    """Non-empty, non-comment source lines (Table 2's LoC definition)."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


def synthesize_model(
    source: str | Program,
    name: str = "<nf>",
    entry: Optional[str] = None,
    config: Optional[NFactorConfig] = None,
) -> SynthesisResult:
    """One-call synthesis: source/program in, :class:`SynthesisResult` out."""
    return NFactor(source, name=name, entry=entry, config=config).synthesize()


@dataclass
class CachedModel:
    """A synthesized model with cache provenance (the model-tier view).

    ``cached`` is True when the model was served whole from the
    artifact store's model tier — no parsing, slicing or symbolic
    execution ran, and ``result`` is None.  ``model_json`` is the
    canonical serialized form; on a hit it is byte-identical to what a
    fresh synthesis would serialize (asserted by the perf-cache bench
    and ``tests/test_cache.py``).  ``stats`` carries the originating
    run's numbers either way (path/entry counts are properties of the
    model, timings are the original run's).
    """

    name: str
    model: NFModel
    model_json: str
    stats: SynthesisStats
    cached: bool = False
    result: Optional[SynthesisResult] = None


def _model_key(
    source: str, name: str, entry: Optional[str], config: NFactorConfig
) -> str:
    frontend = artifact_cache.artifact_key(
        "frontend", artifact_cache.frontend_key_material(source, name, entry)
    )
    return artifact_cache.artifact_key(
        "model", (frontend, _full_config_fingerprint(config))
    )


def target_artifact_keys(
    source: str,
    name: str = "<nf>",
    entry: Optional[str] = None,
    config: Optional[NFactorConfig] = None,
) -> Dict[str, str]:
    """Every cache-tier key one synthesis target derives, by kind.

    The watch daemon uses this to know exactly which artifacts to push
    to serve shards before asking them to flip versions; the sim key
    matches :func:`repro.serve.jobs._sim_bundle`'s derivation.
    """
    config = config or NFactorConfig()
    frontend = artifact_cache.artifact_key(
        "frontend", artifact_cache.frontend_key_material(source, name, entry)
    )
    prep = artifact_cache.artifact_key(
        "prep", (frontend, _prep_config_fingerprint(config))
    )
    model = artifact_cache.artifact_key(
        "model", (frontend, _full_config_fingerprint(config))
    )
    return {
        "frontend": frontend,
        "prep": prep,
        "slices": artifact_cache.artifact_key("slices", prep),
        "model": model,
        "sim": artifact_cache.artifact_key("sim", (model,)),
    }


def synthesize_model_cached(
    source: str,
    name: str = "<nf>",
    entry: Optional[str] = None,
    config: Optional[NFactorConfig] = None,
    keep_result: bool = False,
) -> CachedModel:
    """Model-tier synthesis: the whole serialized model is one artifact.

    The fast path for consumers that only need the model and its stats
    (the ``synthesize`` CLI, ``repro batch``, benchmarks): when the NF
    source and configuration are unchanged, the synthesis is a single
    cache lookup.  On a miss the full pipeline runs (itself memoized
    per phase) and the result is stored for next time.  Callers that
    need the full :class:`SynthesisResult` on misses pass
    ``keep_result=True``; those that always need it should use
    :class:`NFactor` directly.
    """
    config = config or NFactorConfig()
    key: Optional[str] = None
    if config.artifact_cache:
        key = _model_key(source, name, entry, config)
        hit = artifact_cache.get_store().get_object("model", key)
        if hit is not None:
            model, model_json, stats = hit
            return CachedModel(
                name=name, model=model, model_json=model_json,
                stats=stats, cached=True,
            )
    result = NFactor(source, name=name, entry=entry, config=config).synthesize()
    model_json = model_to_json(result.model)
    if key is not None:
        artifact_cache.get_store().put_object(
            "model", key, (result.model, model_json, result.stats)
        )
    return CachedModel(
        name=name,
        model=result.model,
        model_json=model_json,
        stats=result.stats,
        cached=False,
        result=result if keep_result else None,
    )
