"""TCP unfolding: making hidden OS state explicit (paper §3.2, Fig. 3→5).

Socket-level NFs such as *balance* never mention per-connection TCP
state in their source — it lives in the kernel.  Analysing the program
alone would therefore miss behaviours like "data packets without a
3-way handshake are dropped".  The paper's fix: *unfold* the wrapped
socket functions into packet-level operations together with the TCP
state transition, turning the nested accept/relay loops (Fig. 4d) into
one per-packet loop (Fig. 5).

This module implements that unfolding for the canonical proxy shape:

.. code-block:: python

    def MainLoop():
        while True:
            clt = tcp_accept(LISTEN_PORT)
            ... backend selection ...            # e.g. round robin
            if os_fork() == 0:
                srv = tcp_connect(server)
                while True:
                    buf = sock_recv(clt)
                    ... payload processing ...
                    sock_send(srv, buf)

The unfolded program materialises two state tables —
``__tcp_conns`` (per-connection handshake state, the hidden state) and
``__backend`` (the accept-time backend choice) — and handles SYN /
handshake-ACK / data / FIN packets explicitly.  Backend selection and
payload processing statements are carried over verbatim, so the
synthesized model still exposes e.g. the round-robin index state
(paper Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.lang.errors import NFPyError
from repro.lang.ir import (
    Block,
    ECall,
    ECmp,
    EName,
    Expr,
    LName,
    Program,
    SAssign,
    SExpr,
    SIf,
    SWhile,
    Stmt,
    iter_block,
    stmt_calls,
)
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_expr, pretty_stmt

#: Socket intrinsics whose presence marks a program as socket-level.
SOCKET_CALLS = frozenset(
    {"tcp_listen", "tcp_accept", "tcp_connect", "sock_recv", "sock_send", "os_fork"}
)

CONNS_VAR = "__tcp_conns"
BACKEND_VAR = "__backend"


def has_socket_calls(program: Program) -> bool:
    """True if the program uses the socket-level intrinsics."""
    for stmt in program.all_stmts():
        for call in stmt_calls(stmt):
            if not call.method and call.func in SOCKET_CALLS:
                return True
    return False


@dataclass
class _ProxyShape:
    """The pieces extracted from the nested-loop proxy pattern."""

    listen_port: Expr
    selection: List[Stmt]
    backend_var: str
    recv_var: str
    processing: List[Stmt]
    fn_globals: List[str]
    #: tcp_accept() unpack targets: (conn[, client_ip[, client_port]]).
    accept_targets: Tuple[str, ...] = ()


def unfold_tcp(program: Program, entry_hint: Optional[str] = None) -> Program:
    """Unfold a socket-level NF into a packet-level program.

    Returns a *new* :class:`Program` whose entry is a synthesized
    per-packet function; raises :class:`NFPyError` when the program does
    not match the supported accept/fork/relay shape.
    """
    shape = _match_proxy(program, entry_hint)
    source = _generate_source(program, shape)
    unfolded = parse_program(source, name=f"{program.name}~unfolded", entry="__per_packet")
    return unfolded


# ---------------------------------------------------------------------------
# Pattern matching
# ---------------------------------------------------------------------------


def _match_proxy(program: Program, entry_hint: Optional[str]) -> _ProxyShape:
    names = [entry_hint] if entry_hint else list(program.functions)
    for name in names:
        fn = program.functions.get(name)
        if fn is None:
            continue
        for stmt in fn.body:
            if not isinstance(stmt, SWhile):
                continue
            shape = _match_accept_loop(stmt.body, sorted(fn.global_names))
            if shape is not None:
                return shape
    raise NFPyError(
        "TCP unfolding: no accept/fork/relay loop found "
        "(expected `clt = tcp_accept(port)` ... `if os_fork() == 0:` "
        "with an inner sock_recv/sock_send loop)"
    )


def _match_accept_loop(body: Block, fn_globals: List[str]) -> Optional[_ProxyShape]:
    if not body:
        return None
    accept = body[0]
    if not (
        isinstance(accept, SAssign)
        and isinstance(accept.value, ECall)
        and not accept.value.method
        and accept.value.func == "tcp_accept"
        and accept.value.args
    ):
        return None
    listen_port = accept.value.args[0]
    accept_targets: Tuple[str, ...] = ()
    target = accept.targets[0]
    if isinstance(target, LName):
        accept_targets = (target.id,)
    else:
        from repro.lang.ir import LTuple

        if isinstance(target, LTuple):
            names = []
            for sub in target.elts:
                if isinstance(sub, LName):
                    names.append(sub.id)
            accept_targets = tuple(names)

    fork_if: Optional[SIf] = None
    selection: List[Stmt] = []
    for stmt in body[1:]:
        if isinstance(stmt, SIf) and _is_fork_cond(stmt.cond):
            fork_if = stmt
            break
        selection.append(stmt)
    if fork_if is None:
        return None

    backend_var: Optional[str] = None
    relay: Optional[SWhile] = None
    for stmt in fork_if.then:
        if (
            isinstance(stmt, SAssign)
            and isinstance(stmt.value, ECall)
            and not stmt.value.method
            and stmt.value.func == "tcp_connect"
            and stmt.value.args
            and isinstance(stmt.value.args[0], EName)
        ):
            backend_var = stmt.value.args[0].id
        if isinstance(stmt, SWhile):
            relay = stmt
    if backend_var is None or relay is None:
        return None

    recv_var: Optional[str] = None
    processing: List[Stmt] = []
    for stmt in relay.body:
        if (
            isinstance(stmt, SAssign)
            and isinstance(stmt.value, ECall)
            and not stmt.value.method
            and stmt.value.func == "sock_recv"
        ):
            target = stmt.targets[0]
            if isinstance(target, LName):
                recv_var = target.id
            continue
        if isinstance(stmt, SExpr) and isinstance(stmt.value, ECall) and stmt.value.func == "sock_send":
            continue
        processing.append(stmt)
    if recv_var is None:
        recv_var = "buf"
    return _ProxyShape(
        listen_port=listen_port,
        selection=selection,
        backend_var=backend_var,
        recv_var=recv_var,
        processing=processing,
        fn_globals=fn_globals,
        accept_targets=accept_targets,
    )


def _is_fork_cond(cond: Expr) -> bool:
    if isinstance(cond, ECmp) and cond.op == "==":
        left, right = cond.left, cond.right
        for a, b in ((left, right), (right, left)):
            if (
                isinstance(a, ECall)
                and not a.method
                and a.func == "os_fork"
            ):
                return True
    if isinstance(cond, ECall) and not cond.method and cond.func == "os_fork":
        return True
    return False


# ---------------------------------------------------------------------------
# Source generation (Fig. 5 shape)
# ---------------------------------------------------------------------------


def _generate_source(program: Program, shape: _ProxyShape) -> str:
    """Emit the unfolded program as NFPy source (then re-parsed)."""
    lines: List[str] = [
        '"""Packet-level unfolding (generated by repro.nfactor.tcp_unfold)."""',
        "",
    ]
    # Original module state/config, minus socket-only leftovers.
    for stmt in program.module_body:
        if isinstance(stmt, SExpr):
            calls = stmt_calls(stmt)
            if any(c.func in SOCKET_CALLS or c.func in program.functions for c in calls):
                continue
        lines.append(pretty_stmt(stmt))
    lines.append("")
    lines.append("# Hidden OS state, made explicit by the unfolding (paper 3.2):")
    lines.append("# per-connection handshake progress and the backend binding.")
    lines.append(f"{CONNS_VAR} = {{}}")
    lines.append(f"{BACKEND_VAR} = {{}}")
    lines.append("")

    globals_needed = sorted(
        set(shape.fn_globals) | {CONNS_VAR, BACKEND_VAR} | _assigned_globals(shape.selection)
    )
    body: List[str] = []
    body.append(f"def __per_packet(pkt):")
    if globals_needed:
        body.append(f"    global {', '.join(globals_needed)}")
    body.append("    if pkt.proto != 6:")
    body.append("        return")
    body.append(f"    if pkt.dport == {pretty_expr(shape.listen_port)}:")
    body.append("        key = (pkt.ip_src, pkt.sport)")
    body.append(f"        if key not in {CONNS_VAR}:")
    body.append("            if (pkt.tcp_flags & 2) != 0 and (pkt.tcp_flags & 16) == 0:")
    # The accept() call bound the client identity; at packet level those
    # names come from the SYN's headers.
    if len(shape.accept_targets) > 1:
        body.append(f"                {shape.accept_targets[1]} = pkt.ip_src")
    if len(shape.accept_targets) > 2:
        body.append(f"                {shape.accept_targets[2]} = pkt.sport")
    for stmt in shape.selection:
        _emit(stmt, "                ", body)
    body.append(f"                {CONNS_VAR}[key] = 3")
    body.append(f"                {BACKEND_VAR}[key] = {shape.backend_var}")
    body.append("            return")
    body.append(f"        st = {CONNS_VAR}[key]")
    body.append("        if st == 3:")
    body.append("            if (pkt.tcp_flags & 16) != 0:")
    body.append(f"                {CONNS_VAR}[key] = 4")
    body.append("            return")
    body.append("        if st == 4:")
    body.append("            if (pkt.tcp_flags & 1) != 0:")
    body.append(f"                del {CONNS_VAR}[key]")
    body.append(f"                del {BACKEND_VAR}[key]")
    body.append("                return")
    body.append(f"            {shape.backend_var} = {BACKEND_VAR}[key]")
    body.append(f"            {shape.recv_var} = pkt.payload_sig")
    for stmt in shape.processing:
        _emit(stmt, "            ", body)
    body.append(f"            pkt.payload_sig = {shape.recv_var}")
    body.append(f"            pkt.ip_dst = {shape.backend_var}[0]")
    body.append(f"            pkt.dport = {shape.backend_var}[1]")
    body.append("            send_packet(pkt)")
    body.append("            return")
    body.append("        return")
    body.append("    return")

    lines.extend(body)
    lines.append("")
    return "\n".join(lines)


def _emit(stmt: Stmt, prefix: str, body: List[str]) -> None:
    """Append a (possibly multi-line) pretty-printed statement."""
    for line in pretty_stmt(stmt).splitlines():
        body.append(prefix + line)


def _assigned_globals(stmts: List[Stmt]) -> set:
    """Names the selection statements assign (must be declared global)."""
    from repro.lang.ir import stmt_defs

    out: set = set()
    for stmt in stmts:
        for inner in iter_block([stmt]):
            out |= stmt_defs(inner)
    return out
