"""Refining execution paths into model entries (Algorithm 1, lines 11–16)
and building executable slice programs.

``executable_slice`` turns a dependence-closed sid set into a runnable
block: it filters the structured IR to the sliced statements and keeps
the jump statements (``return``/``break``/``continue``) whose guarding
branches survive — dropping an unsliced ``return`` would otherwise let
control fall through into code the original program skipped (the
Ball–Horwitz jump problem; the pseudo-edges in the CFG give jumps the
right control dependences, and this pass enforces executability).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lang.ir import (
    Block,
    SAssign,
    SBreak,
    SContinue,
    SDelete,
    SExpr,
    SIf,
    SPass,
    SReturn,
    SWhile,
    Stmt,
    iter_block,
)
from repro.model.matchaction import NFModel, TableEntry, split_constraints
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.pdg.pdg import PDG
from repro.symbolic.state import PathResult

_JUMPS = (SReturn, SBreak, SContinue)
_STRAIGHT = (SAssign, SExpr, SDelete)


def augment_with_jumps(block: Block, sids: Set[int], pdg: PDG) -> Set[int]:
    """Add jump statements whose control context is fully in the slice."""
    out = set(sids)
    changed = True
    while changed:
        changed = False
        for stmt in iter_block(block):
            if stmt.sid in out or not isinstance(stmt, _JUMPS):
                continue
            ctrl = pdg.control_preds.get(stmt.sid, set())
            if ctrl and ctrl <= out:
                out.add(stmt.sid)
                changed = True
    return out


def filter_block(block: Sequence[Stmt], keep: Set[int]) -> Block:
    """Project a structured block onto the kept sids."""
    out: Block = []
    for stmt in block:
        if stmt.sid not in keep:
            continue
        if isinstance(stmt, SIf):
            out.append(
                SIf(
                    sid=stmt.sid,
                    line=stmt.line,
                    cond=stmt.cond,
                    then=filter_block(stmt.then, keep),
                    orelse=filter_block(stmt.orelse, keep),
                )
            )
        elif isinstance(stmt, SWhile):
            out.append(
                SWhile(
                    sid=stmt.sid,
                    line=stmt.line,
                    cond=stmt.cond,
                    body=filter_block(stmt.body, keep),
                )
            )
        else:
            out.append(stmt)
    return out


def executable_slice(block: Block, sids: Set[int], pdg: PDG) -> Tuple[Block, Set[int]]:
    """An executable projection of ``block`` onto slice ``sids``.

    Returns ``(sliced_block, kept_sids)`` where ``kept_sids`` is the
    input slice plus the jump statements required for control fidelity.
    """
    kept = augment_with_jumps(block, sids, pdg)
    return filter_block(block, kept), kept


# ---------------------------------------------------------------------------
# Paths → model
# ---------------------------------------------------------------------------


def build_model(
    name: str,
    paths: Sequence[PathResult],
    stmts: Dict[int, Stmt],
    pkt_slice: Set[int],
    state_slice: Set[int],
    ois_vars: Optional[Set[str]] = None,
) -> NFModel:
    """Assemble the match/action model from finished execution paths.

    Per Algorithm 1: for each path, the condition conjunction splits
    into config / flow match / state match; the action is the path's
    executed statements intersected with the packet slice (packet
    action) and the state slice (state transition).  The replayable
    ``action_stmts`` keep the whole union so data dependences between
    the two halves survive; ``state_action_stmts`` is narrowed to the
    statements that actually write output-impacting state, which is
    what the FSM view and the Figure-6 rendering want.
    """
    from repro.lang.ir import stmt_defs

    span = obs_trace.span("refactor.build_model", nf=name, paths=len(paths))
    with span:
        model = _build_model(
            name, paths, stmts, pkt_slice, state_slice, ois_vars, stmt_defs
        )
        span.set(entries=model.n_entries)
    obs_metrics.counter("model.entries").inc(model.n_entries)
    return model


def _build_model(
    name: str,
    paths: Sequence[PathResult],
    stmts: Dict[int, Stmt],
    pkt_slice: Set[int],
    state_slice: Set[int],
    ois_vars: Optional[Set[str]],
    stmt_defs,
) -> NFModel:
    model = NFModel(name=name)
    model.ois_vars = set(ois_vars or set())
    union = pkt_slice | state_slice
    entry_id = 0
    for path in paths:
        if path.status != "done":
            continue
        entry_id += 1
        config, flow, state = split_constraints(path.constraints)
        action: List[Stmt] = []
        pkt_action: List[Stmt] = []
        state_action: List[Stmt] = []
        for sid in path.executed:
            stmt = stmts.get(sid)
            if stmt is None or not isinstance(stmt, _STRAIGHT):
                continue
            if sid not in union:
                continue
            action.append(stmt)
            if sid in pkt_slice:
                pkt_action.append(stmt)
            if sid in state_slice and (
                ois_vars is None or (stmt_defs(stmt) & ois_vars)
            ):
                state_action.append(stmt)
        model.add_entry(
            TableEntry(
                entry_id=entry_id,
                config=config,
                match_flow=flow,
                match_state=state,
                action_stmts=action,
                pkt_action_stmts=pkt_action,
                state_action_stmts=state_action,
                sent=list(path.sent),
                path_id=path.path_id,
                priority=entry_id,
            )
        )
    return model
