"""Code-structure normalisation (paper §3.2, Figure 4).

NF programs come in four typical shapes; NFactor analyses the
per-packet function, so the first three are rewritten into callback
form here (the fourth — nested loops over sockets — is handled by
:mod:`repro.nfactor.tcp_unfold`):

a. **one processing loop** — ``while True: pkt = recv_packet(); ...``
   → the loop body becomes a synthesized per-packet function;
b. **callback** — ``sniff(IFACE, cb)`` → the callback *is* the entry;
c. **consumer–producer** — a read loop feeding a queue and a process
   loop draining it → the process-loop body becomes the entry (the
   queue hop preserves per-packet semantics, as the paper observes
   these are "easy to transform" into shape (a)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.lang.errors import NFPyError
from repro.lang.ir import (
    Block,
    ECall,
    EConst,
    EName,
    Expr,
    Function,
    LName,
    Program,
    SAssign,
    SBreak,
    SContinue,
    SDelete,
    SExpr,
    SIf,
    SPass,
    SReturn,
    SWhile,
    Stmt,
    assign_sids,
    iter_block,
    stmt_calls,
)

SYNTH_ENTRY = "__per_packet"


@dataclass
class NormalizeReport:
    """What the normaliser did (for logs and tests)."""

    shape: str = "unknown"  # callback | main-loop | consumer-producer | explicit
    entry: str = ""
    synthesized: bool = False


def normalize_structure(program: Program) -> Tuple[Program, NormalizeReport]:
    """Locate (or synthesize) the per-packet entry function.

    Idempotent: a program whose ``entry`` is already set is returned
    unchanged.
    """
    if program.entry is not None:
        return program, NormalizeReport(shape="explicit", entry=program.entry)

    callback = _detect_callback(program)
    if callback is not None:
        program.entry = callback
        return program, NormalizeReport(shape="callback", entry=callback)

    synthesized = _detect_main_loop(program)
    if synthesized is not None:
        fn, shape = synthesized
        program.functions[fn.name] = fn
        program.entry = fn.name
        assign_sids(program)
        return program, NormalizeReport(shape=shape, entry=fn.name, synthesized=True)

    raise NFPyError(
        "cannot locate the packet-processing entry: no explicit entry, "
        "no sniff() callback registration, no recv_packet() main loop "
        "and no consumer-producer queue pair"
    )


# ---------------------------------------------------------------------------
# Shape (b): callback registration
# ---------------------------------------------------------------------------


def _detect_callback(program: Program) -> Optional[str]:
    """Find ``sniff(iface, cb)`` and return the callback function name."""
    blocks: List[Block] = [program.module_body]
    blocks.extend(fn.body for fn in program.functions.values())
    for block in blocks:
        for stmt in iter_block(block):
            for call in stmt_calls(stmt):
                if call.method or call.func != "sniff":
                    continue
                for arg in call.args:
                    if isinstance(arg, EName) and arg.id in program.functions:
                        return arg.id
    return None


# ---------------------------------------------------------------------------
# Shapes (a) and (c): loop bodies become the entry
# ---------------------------------------------------------------------------


def _detect_main_loop(program: Program) -> Optional[Tuple[Function, str]]:
    """Find a packet main loop (or the process loop of a queue pair).

    A recv loop whose body merely enqueues the packet is the *producer*
    half of a consumer-producer pair — the processing lives in the loop
    that pops the queue, which becomes the entry instead.
    """
    fallback: Optional[Tuple[Function, str]] = None
    for fn in program.functions.values():
        for stmt in fn.body:
            if not isinstance(stmt, SWhile) or not stmt.body:
                continue
            head = stmt.body[0]
            bind = _packet_binding(head)
            if bind is None:
                continue
            var, kind = bind
            if kind == "recv":
                if _is_pure_producer(stmt.body[1:]):
                    continue
                fallback = fallback or (_synthesize_entry(fn, stmt, var), "main-loop")
            elif kind == "queue" and _queue_is_fed(program, head):
                return _synthesize_entry(fn, stmt, var), "consumer-producer"
    return fallback


def _is_pure_producer(rest: Block) -> bool:
    """True when the loop remainder only appends to a queue."""
    if not rest:
        return False
    for stmt in rest:
        if not (
            isinstance(stmt, SExpr)
            and isinstance(stmt.value, ECall)
            and stmt.value.method
            and stmt.value.func == "append"
        ):
            return False
    return True


def _packet_binding(stmt: Stmt) -> Optional[Tuple[str, str]]:
    """Does ``stmt`` bind a packet variable?  Returns (var, kind)."""
    if not isinstance(stmt, SAssign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not isinstance(target, LName):
        return None
    value = stmt.value
    if isinstance(value, ECall) and not value.method and value.func == "recv_packet":
        return target.id, "recv"
    if isinstance(value, ECall) and value.method and value.func == "pop":
        return target.id, "queue"
    return None


def _queue_is_fed(program: Program, pop_stmt: Stmt) -> bool:
    """Check some other loop appends to the queue the entry pops from."""
    assert isinstance(pop_stmt, SAssign)
    value = pop_stmt.value
    assert isinstance(value, ECall)
    receiver = value.args[0]
    if not isinstance(receiver, EName):
        return False
    queue = receiver.id
    for fn in program.functions.values():
        for stmt in iter_block(fn.body):
            for call in stmt_calls(stmt):
                if (
                    call.method
                    and call.func == "append"
                    and call.args
                    and isinstance(call.args[0], EName)
                    and call.args[0].id == queue
                ):
                    return True
    return False


def _synthesize_entry(fn: Function, loop: SWhile, pkt_var: str) -> Function:
    """Build the per-packet function from a main-loop body.

    The loop body minus the packet binding becomes the function body;
    ``continue``/``break`` at the loop's own level become ``return``
    (the per-packet iteration is over), while jumps inside nested loops
    are kept.
    """
    body = _rewrite_loop_jumps(loop.body[1:], depth=0)
    return Function(
        name=SYNTH_ENTRY,
        params=(pkt_var,),
        body=body,
        global_names=set(fn.global_names),
        line=loop.line,
    )


def _rewrite_loop_jumps(block: Block, depth: int) -> Block:
    out: Block = []
    for stmt in block:
        out.append(_rewrite_stmt(stmt, depth))
    return out


def _rewrite_stmt(stmt: Stmt, depth: int) -> Stmt:
    if isinstance(stmt, (SContinue, SBreak)) and depth == 0:
        return SReturn(line=stmt.line, value=None)
    if isinstance(stmt, SIf):
        return SIf(
            line=stmt.line,
            cond=stmt.cond,
            then=_rewrite_loop_jumps(stmt.then, depth),
            orelse=_rewrite_loop_jumps(stmt.orelse, depth),
        )
    if isinstance(stmt, SWhile):
        return SWhile(
            line=stmt.line,
            cond=stmt.cond,
            body=_rewrite_loop_jumps(stmt.body, depth + 1),
        )
    if isinstance(stmt, SAssign):
        return SAssign(line=stmt.line, targets=stmt.targets, value=stmt.value, aug=stmt.aug)
    if isinstance(stmt, SExpr):
        return SExpr(line=stmt.line, value=stmt.value)
    if isinstance(stmt, SReturn):
        return SReturn(line=stmt.line, value=stmt.value)
    if isinstance(stmt, SDelete):
        return SDelete(line=stmt.line, target=stmt.target)
    if isinstance(stmt, SPass):
        return SPass(line=stmt.line)
    if isinstance(stmt, (SBreak, SContinue)):
        return type(stmt)(line=stmt.line)
    raise NFPyError(f"cannot normalise statement {type(stmt).__name__}", stmt.line)
