#!/usr/bin/env python3
"""Concrete service chains and vendor-model diffing.

Two capabilities layered on synthesized models beyond the paper's §4:

1. **Concrete chain execution** — wire NF instances into a pipeline
   (reference implementations or model simulators, freely mixed) and
   push a workload through.  The order the composition analysis
   recommends can then be *executed* and compared with a rejected
   order: with the LB first, the IDS no longer sees the original
   headers, so the telnet-blocking policy is no longer enforced by the
   IDS — the probe's fate is decided by whatever the LB happens to do.
2. **Model diffing** — the paper's motivation mentions that different
   vendors implement the "same" NF differently; with a synthesized
   model per implementation the differences become checkable.  Here:
   the Fig.-1 load balancer vs. *balance*.

Run:  python examples/chain_execution.py
"""

from repro.model.diff import diff_models
from repro.net.chain import ServiceChain
from repro.net.packet import Packet, TCP_SYN
from repro.nfactor.algorithm import synthesize_model
from repro.nfs import get_nf


def main() -> None:
    print("synthesizing models ...")
    ids = synthesize_model(get_nf("snortlite").source, name="snortlite")
    lb = synthesize_model(get_nf("loadbalancer").source, name="loadbalancer")
    balance = synthesize_model(get_nf("balance").source, name="balance")
    print("done\n")

    print("=" * 72)
    print("1. Executing both composition orders on the same packet")
    print("=" * 72)
    # A telnet connection to the LB's virtual service.  Policy intent:
    # the IDS must block telnet into the server pool (rule 1001 matches
    # dport 23 towards HOME_NET after the LB maps it to a backend —
    # but only if the IDS still sees a telnet port).
    telnet = Packet(
        tcp_flags=TCP_SYN, proto=6,
        ip_src=3232235777, sport=40000,
        ip_dst=50529027, dport=80,  # vip:80, mapped to backend:80
    )
    blocked_probe = Packet(
        tcp_flags=TCP_SYN, proto=6,
        ip_src=3232235777, sport=40001,
        ip_dst=167772161, dport=23,  # telnet into HOME_NET
    )

    for order_name, results in [
        ("IDS -> LB (recommended)", [ids, lb]),
        ("LB -> IDS (rejected)", [lb, ids]),
    ]:
        chain = ServiceChain.of_references(results)
        t1 = chain.process(blocked_probe.copy())
        verdict = (
            f"dropped at {t1.dropped_at}" if t1.dropped_at else "DELIVERED(!)"
        )
        enforced = "IDS policy enforced" if t1.dropped_at == "snortlite" else (
            "IDS policy NOT enforced (masked by the upstream rewrite)"
        )
        print(f"   {order_name:26s}: telnet probe -> {verdict}  [{enforced}]")

    print()
    print("=" * 72)
    print("2. Model simulators compose like the real NFs")
    print("=" * 72)
    ref_chain = ServiceChain.of_references([ids, lb])
    sim_chain = ServiceChain.of_simulators([ids, lb])
    ref_out = ref_chain.process(telnet.copy()).delivered
    sim_out = sim_chain.process(telnet.copy()).delivered
    agree = "agree" if ref_out == sim_out else "DISAGREE"
    print(f"   web flow through IDS->LB: programs vs models {agree}")
    if ref_out:
        print(f"   delivered to backend: {ref_out[0]}")

    print()
    print("=" * 72)
    print("3. Diffing two load-balancer implementations")
    print("=" * 72)
    diff = diff_models(lb, balance, n_packets=300)
    print(f"   {diff.summary()}")
    print(f"   state only in {diff.name_a}: {sorted(diff.state_tables_only_a)}")
    print(f"   state only in {diff.name_b}: {sorted(diff.state_tables_only_b)}")
    print(f"   fields only {diff.name_a} rewrites: "
          f"{sorted(diff.rewrite_fields_only_a)}")
    print("   -> the Fig.-1 LB is a full NAT (rewrites the source too);")
    print("      balance terminates TCP and only re-targets the backend.")


if __name__ == "__main__":
    main()
