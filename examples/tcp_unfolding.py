#!/usr/bin/env python3
"""Paper §3.2 + Figures 3/5: unfolding a socket-level NF.

*balance* is written against the TCP socket API (accept / fork /
connect / relay), so its per-connection TCP state is hidden inside the
OS.  This example shows:

1. the socket-level source (Fig. 3 shape);
2. the generated packet-level single-loop program (Fig. 5 shape) with
   the hidden state made explicit;
3. the hidden-state behaviour at work (data before the handshake is
   dropped) in both the unfolded program and the synthesized model.

Run:  python examples/tcp_unfolding.py
"""

from repro.interp import Interpreter
from repro.lang.parser import parse_program
from repro.model.serialize import render_model
from repro.net.packet import Packet, TCP_ACK, TCP_SYN
from repro.nfactor.algorithm import synthesize_model
from repro.nfactor.tcp_unfold import unfold_tcp
from repro.nfs import get_nf


def main() -> None:
    spec = get_nf("balance")

    print("=" * 72)
    print("1. Socket-level source (paper Fig. 3 shape)")
    print("=" * 72)
    print(spec.source)

    print("=" * 72)
    print("2. After TCP unfolding (paper Fig. 5 shape)")
    print("=" * 72)
    unfolded = unfold_tcp(parse_program(spec.source, name="balance"))
    print(unfolded.source)

    print("=" * 72)
    print("3. Hidden TCP state at work")
    print("=" * 72)
    interp = Interpreter(program=unfolded)
    interp.run_module()
    flow = dict(ip_src=167772161, sport=40000, ip_dst=9, dport=8080)

    steps = [
        ("data before any handshake", Packet(tcp_flags=TCP_ACK, **flow)),
        ("SYN (handshake begins)", Packet(tcp_flags=TCP_SYN, **flow)),
        ("ACK (handshake completes)", Packet(tcp_flags=TCP_ACK, **flow)),
        ("data on the established connection", Packet(tcp_flags=TCP_ACK, **flow)),
    ]
    for label, pkt in steps:
        out = interp.process_packet(pkt)
        verdict = f"relayed to backend {out[0][0].ip_dst}" if out else "not forwarded"
        print(f"   {label:38s} -> {verdict}")

    print()
    print("=" * 72)
    print("4. The synthesized model exposes the TCP state (paper Fig. 6)")
    print("=" * 72)
    result = synthesize_model(spec.source, name="balance")
    print(render_model(result.model))


if __name__ == "__main__":
    main()
