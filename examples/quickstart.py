#!/usr/bin/env python3
"""Quickstart: synthesize an NF model from source and validate it.

This walks the NFactor pipeline end to end on the paper's running
example (the Fig.-1 load balancer):

1. parse the NF source and synthesize the match/action model;
2. inspect the StateAlyzer variable categories (paper Table 1);
3. render the model (paper Fig. 2a / Fig. 6 style);
4. run the model simulator against the original program on random
   traffic (the paper's §5 accuracy experiment).

Run:  python examples/quickstart.py
"""

from repro.equiv.differential import differential_test
from repro.model.serialize import render_model
from repro.net.packet import Packet
from repro.nfactor.algorithm import synthesize_model
from repro.nfs import get_nf


def main() -> None:
    spec = get_nf("loadbalancer")

    print("=" * 72)
    print("1. Synthesizing a model from the load balancer source")
    print("=" * 72)
    result = synthesize_model(spec.source, name="loadbalancer")
    stats = result.stats
    print(f"   source: {stats.source_loc} LoC")
    print(f"   packet+state slice: {stats.slice_loc} LoC "
          f"({stats.slicing_time_s * 1000:.1f} ms)")
    print(f"   execution paths: {stats.n_paths} "
          f"({stats.se_time_s * 1000:.1f} ms symbolic execution)")

    print()
    print("=" * 72)
    print("2. Variable categories (paper Table 1)")
    print("=" * 72)
    for category, variables in result.categories.as_table().items():
        print(f"   {category:8s}: {', '.join(sorted(variables)) or '-'}")

    print()
    print("=" * 72)
    print("3. The synthesized stateful match/action model")
    print("=" * 72)
    print(render_model(result.model))

    print("=" * 72)
    print("4. Model vs. original program — one flow, then 1000 random packets")
    print("=" * 72)
    simulator = result.make_simulator()
    reference = result.make_reference()
    flow = dict(dport=80, ip_src=167772161, sport=5555, ip_dst=50529027)
    for label, pkt in [("first packet", Packet(**flow)), ("second packet", Packet(**flow))]:
        model_out = simulator.process(pkt.copy())
        ref_out = reference.process_packet(pkt.copy())
        agree = "agree" if model_out == ref_out else "DISAGREE"
        shown = model_out[0][0] if model_out else "drop"
        print(f"   {label}: {shown}  [{agree}]")

    report = differential_test(result, n_packets=1000, interesting=spec.interesting)
    print(f"   {report.summary()}")
    assert report.identical


if __name__ == "__main__":
    main()
