#!/usr/bin/env python3
"""Paper §4 "Testing": BUZZ-style test packets from a synthesized model.

Builds the per-flow FSM of the stateful firewall's model, generates a
packet for every reachable model entry (solving its match constraints
for concrete header values), and replays the suite against the original
NF to confirm the predicted forward/drop verdicts.

Run:  python examples/test_generation.py
"""

from repro.apps.testing import generate_tests, validate_suite
from repro.model.fsm import build_fsm
from repro.nfactor.algorithm import synthesize_model
from repro.nfs import get_nf


def main() -> None:
    spec = get_nf("firewall")
    result = synthesize_model(spec.source, name="firewall")
    model = result.model
    print(f"model: {model.summary()}\n")

    fsm = build_fsm(model)
    print("per-flow FSM extracted from the model (paper §2.4):")
    print(f"   state predicates: {', '.join(fsm.atoms)}")
    reachable = fsm.reachable_states()
    print(f"   reachable states: "
          f"{', '.join(fsm.render_state(s) for s in sorted(reachable, key=sorted))}")
    print(f"   transitions: {len(fsm.transitions)}\n")

    suite = generate_tests(result)
    print(f"generated suite: {suite.summary()}\n")
    for case in suite.cases[:8]:
        pkt = case.packets[-1]
        expect = "forward" if case.expectations[-1] else "drop"
        print(f"   {case.name:22s} flags={pkt.tcp_flags:2d} in_port={pkt.in_port} "
              f"dport={pkt.dport:5d} -> expect {expect}")
    if len(suite.cases) > 8:
        print(f"   ... and {len(suite.cases) - 8} more cases")

    report = validate_suite(suite, result)
    print(f"\nreplayed against the original NF: {report.summary()}")
    assert report.all_passed


if __name__ == "__main__":
    main()
